//! Offline stand-in for the subset of the `criterion 0.5` API this
//! workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `criterion` to this in-tree crate (see `[patch.crates-io]`
//! in the root `Cargo.toml`). It is a plain wall-clock timing harness:
//! no statistical analysis, outlier detection, plots, or baselines —
//! each benchmark is warmed up, then timed for `sample_size` samples,
//! and the per-iteration mean / min / max plus any configured
//! throughput are printed to stdout.
//!
//! Supported surface: `Criterion::benchmark_group`, group knobs
//! (`sample_size`, `warm_up_time`, `measurement_time`, `throughput`),
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput::{Elements, Bytes}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//! Benchmarks may be filtered by passing a substring argument, as with
//! `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How expensive each batch setup is; the real criterion uses this to
/// size batches. Here every variant times one routine call per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times the body of one benchmark.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Per-iteration wall-clock times, one entry per sample.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly; each sample runs enough iterations
    /// to amortize timer overhead for fast routines.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Size the per-sample iteration count from a calibration run so
        // one sample is neither a single timer tick nor the whole
        // measurement budget.
        let calib = Instant::now();
        std::hint::black_box(routine());
        let once = calib.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.measurement_time.as_secs_f64() / self.samples as f64;
        let iters = ((per_sample / once.as_secs_f64()).floor() as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.sample_ns
                .push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.sample_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run each benchmark before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total time spent timing each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            sample_ns: Vec::with_capacity(self.sample_size),
        };
        // Warm-up: run the body untimed until the warm-up budget is spent.
        let warm_end = Instant::now() + self.warm_up_time;
        let mut warm = Bencher {
            samples: 1,
            measurement_time: Duration::from_millis(1),
            sample_ns: Vec::new(),
        };
        while Instant::now() < warm_end {
            warm.sample_ns.clear();
            f(&mut warm);
        }
        f(&mut b);
        report(&full, &b.sample_ns, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(name: &str, sample_ns: &[f64], throughput: Option<Throughput>) {
    if sample_ns.is_empty() {
        println!("{name:<40} no samples recorded");
        return;
    }
    let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
    let min = sample_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = sample_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 * 1e9 / mean),
        None => String::new(),
    };
    println!(
        "{name:<40} mean {:>12} [{} .. {}]{rate}",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads the benchmark filter from the command line, skipping the
    /// flags cargo passes to bench binaries (`--bench`, `--profile-time
    /// <secs>`, etc.).
    fn default() -> Self {
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--profile-time" || a == "--save-baseline" || a == "--baseline" {
                let _ = args.next();
            } else if !a.starts_with('-') {
                filter = Some(a);
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        };
        g.bench_function(id, f);
        self
    }

    /// No-op: this harness has no persisted reports to flush.
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            measurement_time: Duration::from_millis(10),
            sample_ns: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.sample_ns.len(), 5);
        assert!(b.sample_ns.iter().all(|&ns| ns >= 0.0));
    }

    #[test]
    fn iter_batched_times_routine_not_setup() {
        let mut b = Bencher {
            samples: 3,
            measurement_time: Duration::from_millis(10),
            sample_ns: Vec::new(),
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.sample_ns.len(), 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
        assert_eq!(
            BenchmarkId::new("plan", "greedy").to_string(),
            "plan/greedy"
        );
    }

    #[test]
    fn filter_matches_substring() {
        let c = Criterion {
            filter: Some("end_to_end".into()),
        };
        assert!(c.matches("end_to_end/realtime"));
        assert!(!c.matches("auction/run"));
        let all = Criterion { filter: None };
        assert!(all.matches("anything"));
    }
}
