//! Per-test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Controls how many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps suite runtime low
        // while still exercising the generators broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg` as its explanation.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias matching the real proptest constructor name.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG for one case of one named test.
///
/// The seed mixes an FNV-1a hash of the test name with the case index so
/// every `(test, case)` pair sees an independent stream, and reruns of
/// the suite regenerate exactly the same inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn case_rng_is_deterministic_and_distinct() {
        let a1 = case_rng("alpha", 0).next_u64();
        let a2 = case_rng("alpha", 0).next_u64();
        assert_eq!(a1, a2);
        assert_ne!(
            case_rng("alpha", 0).next_u64(),
            case_rng("alpha", 1).next_u64()
        );
        assert_ne!(
            case_rng("alpha", 0).next_u64(),
            case_rng("beta", 0).next_u64()
        );
    }
}
