//! Collection strategies.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Vec<T>` with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// is drawn uniformly from `len` (half-open, like proptest's size
/// ranges).
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_and_elements_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = vec(0u64..100, 2..10);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn nested_tuple_elements_work() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = vec((0u8..3, 0u64..20), 1..50);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&(a, b)| a < 3 && b < 20));
    }
}
