//! Offline stand-in for the subset of the `proptest 1.x` API this
//! workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `proptest` to this in-tree crate (see `[patch.crates-io]` in
//! the root `Cargo.toml`). It supports the forms the workspace's property
//! tests actually use:
//!
//! - `proptest! { ... }` blocks, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - strategies: numeric ranges (`0u64..100`, `0.0f64..1.0`),
//!   `any::<T>()`, tuples of strategies, `prop::collection::vec`,
//!   `Just`, and `.prop_map`;
//! - assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`.
//!
//! Compared to the real proptest there is **no shrinking** and no
//! persisted failure seeds: each case is generated from a deterministic
//! per-case seed, so failures reproduce by rerunning the test, and the
//! failing case's generated inputs are printed via the panic message.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategy modules namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each function runs `config.cases` times with
/// inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($body:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($body)* }
    };
    ($($body:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($body)*
        }
    };
}

/// Internal expansion of the test functions inside a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::case_rng(stringify!($name), case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    // Render the inputs before the body runs: the body may
                    // consume them by value.
                    let __inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}  ")),+),
                        $(&$arg),+
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}\ninputs: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            e,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case (counted as passing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
