//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of `Self::Value` from a seeded generator.
///
/// Unlike the real proptest there is no shrinking tree: a strategy is
/// just a deterministic function of the per-case RNG state.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = (5u32..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (1u64..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b, c) = (1u32..5, 0.0f64..1.0, 10i64..20).generate(&mut rng);
        assert!((1..5).contains(&a));
        assert!((0.0..1.0).contains(&b));
        assert!((10..20).contains(&c));
    }
}
