//! `any::<T>()` — whole-domain strategies per type.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats over a wide range (no NaN/inf: the workspace's
    /// properties all assume finite inputs).
    fn arbitrary(rng: &mut StdRng) -> Self {
        let magnitude: f64 = rng.gen_range(-300.0..300.0);
        let sign = if rng.next_u64() & 1 == 1 { 1.0 } else { -1.0 };
        sign * 10f64.powf(magnitude / 10.0)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u64_spans_orders_of_magnitude() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<u64> = (0..64).map(|_| any::<u64>().generate(&mut rng)).collect();
        assert!(vals.iter().any(|&v| v > u64::MAX / 4));
        assert!(vals.iter().any(|&v| v < u64::MAX / 4));
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
