//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256++ with
/// SplitMix64 seed expansion.
///
/// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12); the
/// workspace only relies on seeded determinism, which holds: the same
/// seed yields the same sequence on every platform and build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// One step of the SplitMix64 sequence, used to expand seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, public domain reference).
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = StdRng::seed_from_u64(77);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
