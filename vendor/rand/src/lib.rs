//! Offline stand-in for the subset of the `rand 0.8` API this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `rand` to this in-tree crate (see `[patch.crates-io]` in the
//! root `Cargo.toml`). It provides [`rngs::StdRng`], [`SeedableRng`], and
//! the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool` —
//! everything the simulator's call sites need, nothing more.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. It is **not**
//! bit-compatible with upstream `rand`'s ChaCha-based `StdRng`; the
//! workspace never relies on upstream's exact streams, only on seeded
//! determinism, which this crate preserves: the same seed always yields
//! the same sequence, on every platform.

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let c = rng.gen_range(0u8..8);
            assert!(c < 8);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
