#!/usr/bin/env sh
# Local CI gate: build, test, and formatting check. Run from the repo root.
#
# `./ci.sh quick` runs only the perf gates: the fixed-seed smoke workload
# is replayed and its merged report hash compared to the committed golden
# below (any divergence means a change altered simulated outcomes —
# intentional behavior changes must update the golden alongside the code;
# silent drift from perf work is caught for free), then the thread-scaling
# check runs the quick workload at --threads 1 and 4 and fails below a
# 1.5x events/s ratio (generous, to avoid flaky CI). On single-CPU hosts
# the scaling check skips itself with exit 0: scaling is unobservable
# there, and determinism is still covered by the smoke hash.
set -eux

SMOKE_GOLDEN="smoke-hash: ba08fcf9274d6de0"

perf_smoke() {
    test "$(./target/release/baseline --smoke)" = "$SMOKE_GOLDEN"
}

perf_scaling() {
    ./target/release/baseline --scaling-check
}

if [ "${1:-}" = "quick" ]; then
    cargo build --release -p adpf-bench
    perf_smoke
    perf_scaling
    exit 0
fi

cargo build --release --workspace
cargo test -q --workspace --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
perf_smoke
perf_scaling
