#!/usr/bin/env sh
# Local CI gate: build, test, and formatting check. Run from the repo root.
#
# `./ci.sh quick` runs only the perf gates: the fixed-seed smoke workload
# is replayed and its merged report hash compared to the committed golden
# below (any divergence means a change altered simulated outcomes —
# intentional behavior changes must update the golden alongside the code;
# silent drift from perf work is caught for free), then the thread-scaling
# check runs the quick workload at --threads 1 and 4 and fails below a
# 1.5x events/s ratio (generous, to avoid flaky CI). On single-CPU hosts
# the scaling check skips itself with exit 0: scaling is unobservable
# there, and determinism is still covered by the smoke hash.
#
# The observability gate (`--obs-check`) replays the smoke workload with
# metric collection on and off: the two reports must hash to the same
# golden (metrics are a pure spectator), the exported JSON lines must
# pass the schema validator, and collection overhead must stay under 3%.
#
# The throughput gate (`--perf-check`) replays the smoke workload
# single-threaded and fails if its best-of-N events/s falls more than 10%
# below the committed `batched-hotpath` smoke row in BENCH_baseline.json.
# It skips itself with exit 0 when the host's 1-minute load average shows
# outside contention — wall-clock throughput means nothing on a busy box.
#
# The memory gate (`--mem-check`) streams a mid-size workload through the
# bounded-memory pipeline and fails if peak RSS exceeds the ceiling
# committed in the baseline binary — catching any change that quietly
# re-materializes the full trace before sharding. Skips with exit 0 on
# hosts without a readable /proc.
#
# The scenario gate (`--scenario-check`) guards the scenario layer's two
# contracts: scenario-off runs must keep reproducing the committed smoke
# golden at 1/2/8 threads (the layer pays nothing when off), and a quick
# mixed-population run must hash identically across thread counts and
# through the streaming pipeline with its user-cost counters populated.
#
# The serving gate replays the smoke trace's event stream over stdin into
# the online `serve` binary: the final report hash must equal the same
# committed golden (the server is the batch engine behind a socket), and
# the decision-latency percentiles must have been recorded.
#
# The full run also greps library crates for stray stdout/stderr printing:
# all human-facing output belongs to the bench binaries, libraries speak
# through return values and the metric registry.
set -eux

SMOKE_GOLDEN="smoke-hash: ba08fcf9274d6de0"
SERVE_GOLDEN="report-hash: ba08fcf9274d6de0"

perf_smoke() {
    # The baseline binary runs with the marketplace off (the default), so
    # this golden doubles as the marketplace-off bit-identity gate: the
    # reactive-marketplace layer must be invisible until enabled.
    test "$(./target/release/baseline --smoke)" = "$SMOKE_GOLDEN"
}

marketplace_gates() {
    # The reactive-marketplace suites: adversarial exchange properties,
    # pacing convergence to the analytic optimum, and the library-level
    # assertion that a marketplace-off run reproduces $SMOKE_GOLDEN.
    cargo test -q --release -p adpf-auction \
        --test prop_marketplace --test convergence
    cargo test -q --release --test determinism marketplace_
}

perf_scaling() {
    ./target/release/baseline --scaling-check
}

perf_check() {
    ./target/release/baseline --perf-check
}

perf_mem() {
    ./target/release/baseline --mem-check
}

perf_obs() {
    # --obs-check prints the smoke hash as its first line, in --smoke
    # format, so metrics-on runs are held to the same golden. No pipe:
    # the binary's exit code must reach `set -e`.
    ./target/release/baseline --obs-check --metrics-out target/obs_smoke_metrics.jsonl \
        > target/obs_check.out
    cat target/obs_check.out
    test "$(head -n 1 target/obs_check.out)" = "$SMOKE_GOLDEN"
}

perf_scenario() {
    # --scenario-check prints the scenario-off smoke hash as its first
    # line, in --smoke format, so the off path is held to the golden.
    ./target/release/baseline --scenario-check > target/scenario_check.out
    cat target/scenario_check.out
    test "$(head -n 1 target/scenario_check.out)" = "$SMOKE_GOLDEN"
    grep -q '^scenario-check: mixed hash' target/scenario_check.out
}

perf_serve() {
    # Closed loop over stdin: generate the smoke event stream, serve it,
    # and hold the served report to the shared golden. The latency line
    # must carry a recorded p99 (every request lands in the histogram).
    ./target/release/tracegen --preset small --seed 777 --events \
        | ./target/release/serve --seed 5 --threads 2 > target/serve_smoke.out
    cat target/serve_smoke.out
    test "$(grep '^report-hash:' target/serve_smoke.out)" = "$SERVE_GOLDEN"
    grep -q '^serve: latency_us p50=[0-9]* p95=[0-9]* p99=[0-9]*$' target/serve_smoke.out
    grep -q '^serve: .*ingest_errors=0' target/serve_smoke.out
}

no_library_prints() {
    # Library crates must not print; the only print!/println!/eprintln!
    # call sites allowed are the bench and serve binaries
    # (crates/{bench,serve}/src/bin/).
    if grep -rnE '(^|[^a-zA-Z_])(e?println!|print!)\(' crates/*/src \
        --include='*.rs' \
        | grep -v '^crates/bench/src/bin/' \
        | grep -v '^crates/serve/src/bin/'; then
        echo "library crates must not print; route output through adpf-obs" >&2
        exit 1
    fi
}

if [ "${1:-}" = "quick" ]; then
    cargo build --release -p adpf-bench -p adpf-serve
    perf_smoke
    perf_obs
    perf_scaling
    perf_check
    perf_mem
    perf_scenario
    perf_serve
    marketplace_gates
    exit 0
fi

cargo build --release --workspace
cargo test -q --workspace --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
no_library_prints
perf_smoke
perf_obs
perf_scaling
perf_check
perf_mem
perf_scenario
perf_serve
