#!/usr/bin/env sh
# Local CI gate: build, test, and formatting check. Run from the repo root.
set -eux

cargo build --release --workspace
cargo test -q --workspace --release
cargo fmt --check
