#!/usr/bin/env sh
# Local CI gate: build, test, and formatting check. Run from the repo root.
#
# `./ci.sh quick` runs only the perf smoke: the fixed-seed smoke workload
# is replayed and its merged report hash compared to the committed golden
# below. Any divergence means a change altered simulated outcomes —
# intentional behavior changes must update the golden alongside the code;
# silent drift from perf work is caught for free.
set -eux

SMOKE_GOLDEN="smoke-hash: ba08fcf9274d6de0"

perf_smoke() {
    test "$(./target/release/baseline --smoke)" = "$SMOKE_GOLDEN"
}

if [ "${1:-}" = "quick" ]; then
    cargo build --release -p adpf-bench
    perf_smoke
    exit 0
fi

cargo build --release --workspace
cargo test -q --workspace --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
perf_smoke
