//! Facade crate re-exporting the adprefetch public API.
pub use adpf_auction as auction;
pub use adpf_core as core;
pub use adpf_desim as desim;
pub use adpf_energy as energy;
pub use adpf_netem as netem;
pub use adpf_obs as obs;
pub use adpf_overbooking as overbooking;
pub use adpf_prediction as prediction;
pub use adpf_stats as stats;
pub use adpf_traces as traces;
