//! Quickstart: simulate status-quo real-time ad delivery versus the
//! paper's prefetching+overbooking system on a synthetic one-week trace.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adprefetch::core::{Simulator, SystemConfig};
use adprefetch::traces::PopulationConfig;

fn main() {
    // A small synthetic population: 40 users, one week of app sessions
    // with diurnal rhythm and heavy-tailed per-user activity.
    let trace = PopulationConfig::small_test(42).generate();
    println!(
        "trace: {} users, {} sessions over {} days\n",
        trace.num_users(),
        trace.sessions().len(),
        trace.days()
    );

    // Status quo: every ad slot wakes the radio and runs a real-time
    // auction.
    let realtime = Simulator::new(SystemConfig::realtime(1), &trace).run();
    println!("--- real-time (status quo) ---\n{}\n", realtime.summary());

    // The paper's system: session-aware demand prediction, advance sales
    // with 12-hour deadlines, greedy overbooking, batched delivery.
    let prefetch = Simulator::new(SystemConfig::prefetch_default(1), &trace).run();
    println!("--- prefetch + overbooking ---\n{}\n", prefetch.summary());

    println!(
        "energy savings: {:.1}%   revenue loss: {:.2}%   SLA violations: {:.2}%",
        prefetch.energy_savings_vs(&realtime) * 100.0,
        prefetch.revenue_loss_vs(&realtime) * 100.0,
        prefetch.sla_violation_rate() * 100.0
    );
}
