//! Standalone overbooking math: size a replica set for a pre-sold ad.
//!
//! Uses the overbooking library directly (no simulation): given per-client
//! display probabilities, compare replication policies on analytic SLA
//! violation probability and expected duplicate displays.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example overbooking_planner
//! ```

use adprefetch::overbooking::availability::{display_probability_bursty, ClientAvailability};
use adprefetch::overbooking::planner::{
    FixedFactorPlanner, GreedyPlanner, NoReplicationPlanner, ReplicationPlanner,
};

fn main() {
    // Candidate replica holders: expected slots before the ad's deadline,
    // ads already queued on them, and their typical session length.
    let profiles: Vec<(f64, u32, f64)> = vec![
        (12.0, 0, 4.0), // Heavy user, idle queue.
        (12.0, 6, 4.0), // Heavy user, deep queue.
        (4.0, 0, 3.0),  // Medium user.
        (4.0, 2, 3.0),
        (1.0, 0, 2.0), // Light user.
        (0.5, 0, 2.0),
        (6.0, 1, 5.0),
        (2.0, 0, 1.0),
    ];
    let candidates: Vec<ClientAvailability> = profiles
        .iter()
        .enumerate()
        .map(|(i, &(slots, queued, session))| ClientAvailability {
            client: i as u32,
            prob: display_probability_bursty(slots, queued, session, 0.5),
        })
        .collect();

    println!("candidate availabilities:");
    for c in &candidates {
        println!(
            "  client {:>2}: P(display before deadline) = {:.3}",
            c.client, c.prob
        );
    }

    let planners: Vec<Box<dyn ReplicationPlanner>> = vec![
        Box::new(NoReplicationPlanner),
        Box::new(FixedFactorPlanner { k: 2 }),
        Box::new(GreedyPlanner),
    ];
    println!(
        "\n{:>8}  {:>8} {:>14} {:>18}",
        "planner", "replicas", "P(violation)", "E[duplicates]"
    );
    for planner in planners {
        let plan = planner.plan(&candidates, 0.95, 8);
        println!(
            "{:>8}  {:>8} {:>14.4} {:>18.3}",
            planner.name(),
            plan.replicas(),
            1.0 - plan.success_prob,
            plan.expected_duplicates
        );
    }
    println!(
        "\nreading: the greedy planner reaches the 95% SLA with the fewest\n\
         replicas by taking the most-available clients first; fixed factors\n\
         either miss the target or overpay in expected duplicates."
    );
}
