//! Operator view: what does enabling prefetching do to an ad network's
//! books?
//!
//! Simulates an iPhone-scale population for one week and prints the
//! operator-facing scorecard — revenue, fill, SLA compliance, and the
//! client-side energy bill — at three display deadlines the exchange
//! might demand from advertisers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ad_network_day
//! ```

use adprefetch::core::{Simulator, SystemConfig};
use adprefetch::desim::SimDuration;
use adprefetch::traces::PopulationConfig;

fn main() {
    let cfg = PopulationConfig {
        num_users: 300,
        days: 7,
        ..PopulationConfig::iphone_like(2026)
    };
    let trace = cfg.generate();
    let realtime = Simulator::new(SystemConfig::realtime(7), &trace).run();
    println!(
        "population: {} users, {} slots/week; real-time books: ${:.2} revenue, {:.2} J/impression\n",
        trace.num_users(),
        realtime.slots,
        realtime.revenue(),
        realtime.energy_per_impression_j()
    );

    println!(
        "{:>10}  {:>9} {:>9} {:>9} {:>10} {:>10}",
        "deadline", "revenue", "loss", "SLA viol", "dup/slot", "energy sav"
    );
    for deadline_h in [4u64, 12, 24] {
        let mut cfg = SystemConfig::prefetch_default(7);
        cfg.deadline = SimDuration::from_hours(deadline_h);
        let pf = Simulator::new(cfg, &trace).run();
        println!(
            "{:>9}h  {:>8.2}$ {:>8.2}% {:>8.2}% {:>9.2}% {:>9.1}%",
            deadline_h,
            pf.revenue(),
            pf.revenue_loss_vs(&realtime) * 100.0,
            pf.sla_violation_rate() * 100.0,
            pf.ledger.duplicates as f64 / pf.slots.max(1) as f64 * 100.0,
            pf.energy_savings_vs(&realtime) * 100.0
        );
    }
    println!(
        "\nreading: longer deadlines let the overbooking model keep both SLA\n\
         violations and duplicate displays negligible while retaining the\n\
         energy savings — the paper's central trade."
    );
}
