//! Energy audit: how much of an app's battery drain do its ads cause?
//!
//! Reproduces the paper's motivation methodology on a custom app: run the
//! radio model over the app's sessions twice — with and without ad
//! traffic — and attribute the difference to advertising. Compares 3G,
//! LTE, and WiFi.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example energy_audit
//! ```

use adprefetch::desim::{SimDuration, SimTime};
use adprefetch::energy::audit::{audit_app, AdTrafficModel, AppTrafficModel, DeviceBaseline};
use adprefetch::energy::profiles;

fn main() {
    // A casual game: 50 KB at launch, no other traffic of its own, played
    // in five 6-minute sessions a day.
    let app = AppTrafficModel::launch_only(50 * 1024, 2 * 1024);
    let mut sessions = Vec::new();
    for day in 0..7u64 {
        for k in 0..5u64 {
            let start = SimTime::from_days(day) + SimDuration::from_hours(9 + 3 * k);
            sessions.push((start, SimDuration::from_mins(6)));
        }
    }

    // The standard mobile ad SDK: 4 KB banner every 30 seconds.
    let ads = AdTrafficModel::default();
    let baseline = DeviceBaseline::default();

    println!("weekly energy for a casual game with banner ads:\n");
    println!(
        "{:>6}  {:>12} {:>12} {:>14} {:>14}",
        "radio", "comm J", "ad J", "ad % of comm", "ad % of total"
    );
    for profile in [profiles::umts_3g(), profiles::lte(), profiles::wifi()] {
        let audit = audit_app(&sessions, &app, &ads, &profile, &baseline);
        println!(
            "{:>6}  {:>12.1} {:>12.1} {:>13.1}% {:>13.1}%",
            profile.name,
            audit.comm_with_ads.total_j(),
            audit.ad_comm_j(),
            audit.ad_comm_share() * 100.0,
            audit.ad_total_share() * 100.0
        );
    }

    // Show where the joules go on 3G: the tail dominates.
    let audit = audit_app(&sessions, &app, &ads, &profiles::umts_3g(), &baseline);
    let e = audit.comm_with_ads;
    println!(
        "\n3G breakdown: promotion {:.1} J, transfer {:.1} J, tail {:.1} J ({:.0}% tail)",
        e.promotion_j,
        e.transfer_j,
        e.tail_j,
        e.tail_fraction() * 100.0
    );
}
