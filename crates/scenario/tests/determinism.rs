//! The scenario suite's determinism contracts, end to end.
//!
//! Three invariants, each load-bearing for the repo's reproducibility
//! story:
//!
//! 1. **Scenario-off is bit-exact legacy**: with `ScenarioConfig`
//!    disabled, the smoke workload reproduces the committed golden hash
//!    at every thread count — the scenario layer pays nothing when off.
//! 2. **Thread-count invariance**: every scenario preset hashes
//!    identically at 1, 2, and 8 worker threads.
//! 3. **Streaming equivalence**: the bounded-memory streaming pipeline
//!    (per-shard scenario generation through the `ShardSupply` seam)
//!    reproduces the materialized run bit for bit, with the user-cost
//!    counters populated.

use adpf_core::{Simulator, SystemConfig};
use adpf_scenario::{ScenarioPopulation, ScenarioSpec};
use adpf_traces::PopulationConfig;

/// The committed smoke golden: `small_test(777)` population under
/// `prefetch_default(5)`, as pinned by ci.sh (`SMOKE_GOLDEN`).
const SMOKE_GOLDEN: u64 = 0xba08_fcf9_274d_6de0;

const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn scenario_off_reproduces_the_committed_smoke_golden() {
    let trace = PopulationConfig::small_test(777).generate();
    let cfg = SystemConfig::prefetch_default(5);
    assert!(!cfg.scenario.enabled, "default config keeps the layer off");
    for threads in THREADS {
        let r = Simulator::run_parallel(&cfg, &trace, threads);
        assert_eq!(
            r.stable_hash(),
            SMOKE_GOLDEN,
            "scenario-off run diverged from the smoke golden at {threads} threads"
        );
        assert_eq!(
            r.scenario,
            adpf_core::ScenarioCounters::default(),
            "scenario-off runs must keep the user-cost counters empty"
        );
    }
}

#[test]
fn every_preset_is_thread_count_and_streaming_invariant() {
    for preset in ["mixed", "churn", "flashcrowd"] {
        let base = PopulationConfig::small_test(777);
        let users = base.num_users;
        let spec = ScenarioSpec::parse_preset(preset).expect("preset parses");
        let pop = ScenarioPopulation::new(base, spec);
        let mut cfg = SystemConfig::prefetch_default(5);
        pop.apply_to(&mut cfg);

        let trace = pop.generate();
        let reference = Simulator::run_parallel(&cfg, &trace, 1);
        for threads in THREADS {
            let r = Simulator::run_parallel(&cfg, &trace, threads);
            assert_eq!(
                r.stable_hash(),
                reference.stable_hash(),
                "{preset}: materialized run diverged at {threads} threads"
            );
        }

        let n_shards = adpf_core::default_shards(users);
        for threads in THREADS {
            let streamed = Simulator::run_streaming(&cfg, users, n_shards, threads, |i| {
                pop.generate_shard(i, n_shards)
            });
            assert_eq!(
                streamed.stable_hash(),
                reference.stable_hash(),
                "{preset}: streamed run diverged at {threads} threads"
            );
        }

        // The invariance proof is only meaningful if the scenario
        // actually did something: every preset meters bytes and records
        // display latency on this population.
        assert!(
            reference.scenario.metered_bytes() > 0,
            "{preset}: no metered bytes recorded"
        );
        assert!(
            reference.scenario.display_latency_ms.count() > 0,
            "{preset}: no display-latency samples recorded"
        );
    }
}

#[test]
fn presets_produce_distinct_outcomes() {
    // The three presets are different regimes, not aliases: their
    // reports must differ from one another and from scenario-off.
    let base = PopulationConfig::small_test(777);
    let mut hashes = vec![SMOKE_GOLDEN];
    for preset in ["mixed", "churn", "flashcrowd"] {
        let spec = ScenarioSpec::parse_preset(preset).unwrap();
        let pop = ScenarioPopulation::new(base.clone(), spec);
        let mut cfg = SystemConfig::prefetch_default(5);
        pop.apply_to(&mut cfg);
        hashes.push(Simulator::run_parallel(&cfg, &pop.generate(), 2).stable_hash());
    }
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), 4, "presets must not collapse into each other");
}
