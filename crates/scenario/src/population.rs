//! Scenario-shaped trace generation.
//!
//! [`ScenarioPopulation`] wraps a base [`PopulationConfig`] and applies
//! the trace-side scenario layers — per-class session shapes, churn
//! clipping, burst injection — as pure per-user transforms keyed on the
//! *global* user id. Because every transform depends only on
//! `(base config, spec, global user)`, generating a shard directly is
//! byte-identical to materializing the whole scenario population and
//! splitting it, which is what lets scenarios ride the bounded-memory
//! streaming pipeline unchanged.

use adpf_core::scenario::{
    class_index, region_index, unit_coord, ARRIVAL_SALT, BURST_SALT, DEPART_SALT,
};
use adpf_desim::{SimDuration, SimTime};
use adpf_stats::dist::{Distribution, Poisson};
use adpf_traces::{shard_ranges, AppId, PopulationConfig, Session, Trace, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::ScenarioSpec;

/// Per-user lifecycle derived from the spec's stable coordinates: the
/// session-duration scale of the user's class and the `[arrive, depart)`
/// presence window churn leaves them.
struct UserLife {
    scale: f64,
    arrive: SimTime,
    depart: SimTime,
}

/// A [`PopulationConfig`] with a [`ScenarioSpec`] layered on top,
/// mirroring the base generation surface so it plugs into both the
/// materialized and the streaming pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPopulation {
    /// The base synthetic population.
    pub base: PopulationConfig,
    /// The scenario layered on top.
    pub spec: ScenarioSpec,
}

impl ScenarioPopulation {
    /// Wraps `base` with `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid — specs come from presets or code,
    /// so a bad one is a programming error.
    pub fn new(base: PopulationConfig, spec: ScenarioSpec) -> Self {
        if let Err(reason) = spec.validate() {
            panic!("invalid ScenarioSpec: {reason}");
        }
        Self { base, spec }
    }

    /// Population size.
    pub fn num_users(&self) -> u32 {
        self.base.num_users
    }

    /// Trace length in days.
    pub fn days(&self) -> u32 {
        self.base.days
    }

    /// The class/region assignment seed both sides key on: the base
    /// population seed.
    pub fn assign_seed(&self) -> u64 {
        self.base.seed
    }

    /// Installs the engine-side half of the scenario on `config` with
    /// the matching assignment seed (see [`ScenarioSpec::apply_to`]).
    pub fn apply_to(&self, config: &mut adpf_core::SystemConfig) {
        self.spec.apply_to(config, self.assign_seed());
    }

    /// Generates the full scenario-shaped trace.
    pub fn generate(&self) -> Trace {
        self.generate_parallel(1)
    }

    /// [`ScenarioPopulation::generate`] with base generation fanned
    /// across `threads` (the transform itself is one cheap linear pass).
    /// Byte-identical at every thread count.
    pub fn generate_parallel(&self, threads: usize) -> Trace {
        self.transform(self.base.generate_parallel(threads), 0)
    }

    /// Generates the scenario-shaped sub-trace of shard `shard` of an
    /// `n_shards`-way balanced split — byte-identical to
    /// `self.generate().split_users(n_shards)[shard]`, without
    /// materializing the population.
    pub fn generate_shard(&self, shard: usize, n_shards: usize) -> Trace {
        let ranges = shard_ranges(self.base.num_users, n_shards);
        self.generate_user_range(ranges[shard].clone())
    }

    /// Generates the scenario-shaped sub-trace of users
    /// `[users.start, users.end)`, remapped to dense local ids.
    pub fn generate_user_range(&self, users: core::ops::Range<u32>) -> Trace {
        let offset = users.start;
        self.transform(self.base.generate_user_range(users), offset)
    }

    /// Applies the trace-side scenario layers to a base (sub-)trace whose
    /// local user `u` is global user `offset + u`.
    ///
    /// Order matters and is fixed: scale sessions by class shape, clip
    /// them to the user's churn window, then inject burst sessions
    /// (burst draws come from a dedicated per-user RNG stream, so they
    /// never perturb the base draws). Everything is clipped to the
    /// *nominal* horizon (`days`), never the trace's extended one, so
    /// every shard reports the same horizon and time-driven schedules
    /// stay aligned.
    fn transform(&self, base: Trace, offset: u32) -> Trace {
        let n = base.num_users();
        let horizon = SimTime::from_days(self.base.days as u64);
        let seed = self.assign_seed();
        let devices = self.spec.mix.devices();
        let lives: Vec<UserLife> = (0..n)
            .map(|local| {
                let g = (offset + local) as u64;
                let scale = self.spec.mix.classes[class_index(seed, g, &devices)].session_scale;
                UserLife {
                    scale,
                    arrive: self.churn_edge(g, ARRIVAL_SALT, self.spec.churn.arrival_fraction),
                    depart: self
                        .churn_edge(g, DEPART_SALT, self.spec.churn.departure_fraction)
                        .min(horizon),
                }
            })
            .collect();
        // Departure defaults to SimTime::ZERO for retained users; remap
        // "no departure" to the horizon so the presence window reads
        // uniformly as [arrive, depart).
        let lives: Vec<UserLife> = lives
            .into_iter()
            .map(|l| UserLife {
                depart: if l.depart == SimTime::ZERO {
                    horizon
                } else {
                    l.depart
                },
                ..l
            })
            .collect();

        let mut sessions = Vec::with_capacity(base.sessions().len());
        for s in base.sessions() {
            let life = &lives[s.user.0 as usize];
            let mut duration = s.duration.mul_f64(life.scale);
            if s.start < life.arrive || s.start >= life.depart {
                continue;
            }
            let end_cap = life.depart.min(horizon);
            if s.start + duration > end_cap {
                duration = end_cap.saturating_since(s.start);
            }
            if duration.is_zero() {
                continue;
            }
            sessions.push(Session { duration, ..*s });
        }

        if let Some(b) = &self.spec.burst {
            let affected = b.affected_regions(self.spec.cell.regions.max(1));
            let window_ms = b.duration.as_millis().max(1);
            for local in 0..n {
                let g = (offset + local) as u64;
                if region_index(seed, g, self.spec.cell.regions.max(1)) >= affected {
                    continue;
                }
                let life = &lives[local as usize];
                let mut rng = burst_stream(seed, g);
                let extra = Poisson::clamped(b.intensity).sample(&mut rng);
                for _ in 0..extra {
                    let start = b.start + SimDuration::from_millis(rng.gen_range(0..window_ms));
                    let mut duration =
                        SimDuration::from_secs(rng.gen_range(b.min_secs..=b.max_secs));
                    // Burst sessions respect churn and the horizon like
                    // any other session.
                    if start < life.arrive || start >= life.depart {
                        continue;
                    }
                    let end_cap = life.depart.min(horizon);
                    if start + duration > end_cap {
                        duration = end_cap.saturating_since(start);
                    }
                    if duration.is_zero() {
                        continue;
                    }
                    sessions.push(Session {
                        user: UserId(local),
                        app: AppId(b.app),
                        start,
                        duration,
                    });
                }
            }
        }

        Trace::new(sessions, n, horizon)
    }

    /// The churn edge (arrival or departure time) of global user `g`:
    /// [`SimTime::ZERO`] when the user is not churned under `fraction`,
    /// otherwise uniform over the horizon (the coordinate's position
    /// within the churned band recycled as the time coordinate).
    fn churn_edge(&self, g: u64, salt: u64, fraction: f64) -> SimTime {
        if fraction <= 0.0 {
            return SimTime::ZERO;
        }
        let coord = unit_coord(self.assign_seed(), salt, g);
        if coord >= fraction {
            return SimTime::ZERO;
        }
        let horizon_ms = SimTime::from_days(self.base.days as u64).as_millis() as f64;
        SimTime::from_millis((horizon_ms * (coord / fraction)) as u64)
    }
}

/// The dedicated burst RNG stream of global user `g`: SplitMix64-style
/// mixing of `(seed ^ BURST_SALT, g)`, mirroring the base generator's
/// per-user stream derivation so burst draws are pure per-user functions
/// decoupled from the base session draws.
fn burst_stream(seed: u64, g: u64) -> StdRng {
    let mut z =
        (seed ^ BURST_SALT).wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(g.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BurstSpec, ScenarioSpec};

    fn mixed_pop(seed: u64) -> ScenarioPopulation {
        ScenarioPopulation::new(PopulationConfig::small_test(seed), ScenarioSpec::mixed())
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(mixed_pop(7).generate(), mixed_pop(7).generate());
        assert_ne!(mixed_pop(7).generate(), mixed_pop(8).generate());
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let pop = mixed_pop(11);
        let serial = pop.generate();
        for threads in [2, 8] {
            assert_eq!(serial, pop.generate_parallel(threads));
        }
    }

    #[test]
    fn shard_generation_matches_materialize_then_split() {
        for spec in [
            ScenarioSpec::mixed(),
            ScenarioSpec::churn(),
            ScenarioSpec::flash_crowd(),
        ] {
            let name = spec.name.clone();
            let pop = ScenarioPopulation::new(PopulationConfig::small_test(5), spec);
            let whole = pop.generate();
            for n in [1usize, 3, 8] {
                let split = whole.split_users(n);
                for (i, expected) in split.iter().enumerate() {
                    assert_eq!(
                        &pop.generate_shard(i, n),
                        expected,
                        "scenario `{name}` shard {i}/{n} diverged from materialize-then-split"
                    );
                }
            }
        }
    }

    #[test]
    fn horizon_stays_nominal() {
        // Session scaling must never leak past the nominal horizon (the
        // shard-alignment invariant).
        let pop =
            ScenarioPopulation::new(PopulationConfig::small_test(3), ScenarioSpec::flash_crowd());
        let t = pop.generate();
        assert_eq!(t.horizon(), SimTime::from_days(7));
        for s in t.sessions() {
            assert!(s.end() <= t.horizon());
            assert!(!s.duration.is_zero());
        }
    }

    #[test]
    fn churn_carves_presence_windows() {
        let pop = ScenarioPopulation::new(PopulationConfig::small_test(13), ScenarioSpec::churn());
        let base = pop.base.generate();
        let t = pop.generate();
        assert!(
            t.sessions().len() < base.sessions().len(),
            "churn must drop sessions"
        );
        // At least one user arrives mid-trace: their first session is
        // strictly later than in the base trace.
        let mut late_arrivals = 0;
        for u in 0..pop.num_users() {
            let first = t.sessions_for(UserId(u)).map(|s| s.start).min();
            let base_first = base.sessions_for(UserId(u)).map(|s| s.start).min();
            if let (Some(f), Some(bf)) = (first, base_first) {
                if f > bf {
                    late_arrivals += 1;
                }
            }
        }
        assert!(late_arrivals > 0, "expected mid-trace arrivals");
    }

    #[test]
    fn burst_concentrates_sessions_in_window() {
        let spec = ScenarioSpec::flash_crowd();
        let b = spec.burst.unwrap();
        let pop = ScenarioPopulation::new(PopulationConfig::small_test(21), spec);
        let base = pop.base.generate();
        let t = pop.generate();
        let in_window = |tr: &Trace| {
            tr.sessions()
                .iter()
                .filter(|s| s.start >= b.start && s.start < b.start + b.duration)
                .count()
        };
        assert!(
            in_window(&t) > in_window(&base),
            "burst must add sessions in its window ({} vs {})",
            in_window(&t),
            in_window(&base)
        );
        // Injected sessions are all the hot app.
        let hot = t
            .sessions()
            .iter()
            .filter(|s| {
                s.app == AppId(b.app) && s.start >= b.start && s.start < b.start + b.duration
            })
            .count();
        assert!(hot > 0);
    }

    #[test]
    fn scale_stretches_wifi_heavy_sessions() {
        // WiFi-heavy users (scale 1.25) should average longer sessions
        // than budget users (scale 0.75) under the same base shape.
        let pop = mixed_pop(17);
        let t = pop.generate();
        let devices = pop.spec.mix.devices();
        let mut sums = [0.0f64; 3];
        let mut counts = [0u32; 3];
        for s in t.sessions() {
            let c = class_index(pop.assign_seed(), s.user.0 as u64, &devices);
            sums[c] += s.duration.as_millis() as f64;
            counts[c] += 1;
        }
        let mean = |i: usize| sums[i] / counts[i].max(1) as f64;
        assert!(
            mean(0) > mean(2),
            "wifi-heavy mean {} must exceed budget mean {}",
            mean(0),
            mean(2)
        );
    }

    #[test]
    fn zero_intensity_burst_is_a_noop() {
        let mut spec = ScenarioSpec::flash_crowd();
        spec.burst = Some(BurstSpec {
            intensity: 0.0,
            ..spec.burst.unwrap()
        });
        spec.netem = None;
        let with = ScenarioPopulation::new(PopulationConfig::small_test(5), spec.clone());
        spec.burst = None;
        let without = ScenarioPopulation::new(PopulationConfig::small_test(5), spec);
        assert_eq!(with.generate(), without.generate());
    }
}
