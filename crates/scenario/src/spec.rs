//! Scenario specifications: what a named preset means.
//!
//! A [`ScenarioSpec`] is the declarative description of one scenario —
//! the device-class mix, churn fractions, burst window, cell-capacity
//! ceiling, and optional netem binding. It is pure data: the trace-side
//! half is interpreted by [`crate::ScenarioPopulation`], the engine-side
//! half is installed on a `SystemConfig` by [`ScenarioSpec::apply_to`]
//! (which fills `SystemConfig::scenario` and, when bound, the netem
//! preset).

use adpf_core::scenario::{CellCapacity, DeviceClass, ScenarioConfig};
use adpf_core::SystemConfig;
use adpf_desim::{SimDuration, SimTime};
use adpf_netem::NetemConfig;

/// One device class of a [`PopulationMix`]: the engine-side
/// [`DeviceClass`] (energy profile, metered flag, data-plan cap, mix
/// weight) plus the trace-side session shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Engine-side class: radio profile, metering, cap, weight.
    pub device: DeviceClass,
    /// Multiplier on session durations for users of this class (the
    /// "app-session shape": WiFi-heavy users linger, budget users snack).
    pub session_scale: f64,
}

/// A weighted mix of device classes. Class membership of a user is
/// `class_index(assign_seed, global_user, &devices)` — the same pure
/// function the engine uses, so both sides always agree.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationMix {
    /// The classes, in weight-walk order.
    pub classes: Vec<ClassSpec>,
}

impl PopulationMix {
    /// The canonical three-way mix: 40% WiFi-heavy (long sessions), 35%
    /// LTE, 25% 3G-budget with a 1 MiB/month data plan and short
    /// sessions.
    pub fn mixed() -> Self {
        Self {
            classes: vec![
                ClassSpec {
                    device: DeviceClass::wifi_heavy(0.40),
                    session_scale: 1.25,
                },
                ClassSpec {
                    device: DeviceClass::lte(0.35),
                    session_scale: 1.0,
                },
                ClassSpec {
                    device: DeviceClass::budget_3g(0.25, 1 << 20),
                    session_scale: 0.75,
                },
            ],
        }
    }

    /// The engine-side classes, in order.
    pub fn devices(&self) -> Vec<DeviceClass> {
        self.classes.iter().map(|c| c.device.clone()).collect()
    }
}

/// Mid-trace arrivals and departures.
///
/// A user whose arrival coordinate falls below `arrival_fraction`
/// produces no sessions before their arrival time — the simulator sees
/// an empty predictor history until then (the cold-start regime).
/// Departures mirror this at the other end. Both times are uniform over
/// the horizon, derived from stable per-user coordinates, so churn is
/// invariant under sharding and streaming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Fraction of users that arrive mid-trace, in `[0, 1]`.
    pub arrival_fraction: f64,
    /// Fraction of users that depart before the horizon, in `[0, 1]`.
    pub departure_fraction: f64,
}

impl ChurnSpec {
    /// No churn: everyone is present for the whole trace.
    pub fn none() -> Self {
        Self {
            arrival_fraction: 0.0,
            departure_fraction: 0.0,
        }
    }
}

/// An app-release flash crowd: extra sessions of one hot app injected
/// over `[start, start + duration)` for users in the affected regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstSpec {
    /// Burst window start.
    pub start: SimTime,
    /// Burst window length.
    pub duration: SimDuration,
    /// Mean extra sessions per affected user over the window (Poisson).
    pub intensity: f64,
    /// Fraction of cell regions hit, in `[0, 1]`. Regions `0..k` are
    /// affected, `k = round(fraction × regions)` — the crowd piles onto
    /// specific cells, which is what makes the per-region capacity
    /// ceiling bite.
    pub region_fraction: f64,
    /// The hot app everyone opens.
    pub app: u16,
    /// Shortest injected session, in seconds.
    pub min_secs: u64,
    /// Longest injected session, in seconds (inclusive).
    pub max_secs: u64,
}

impl BurstSpec {
    /// The canonical flash crowd: day 3, 19:00–21:00 (the diurnal peak),
    /// three extra sessions per affected user on average, half the
    /// regions, app 0.
    pub fn evening_release() -> Self {
        Self {
            start: SimTime::from_days(3) + SimDuration::from_hours(19),
            duration: SimDuration::from_hours(2),
            intensity: 3.0,
            region_fraction: 0.5,
            app: 0,
            min_secs: 30,
            max_secs: 180,
        }
    }

    /// Number of affected regions out of `regions`.
    pub fn affected_regions(&self, regions: u32) -> u32 {
        ((self.region_fraction * regions as f64).round() as u32).min(regions)
    }
}

/// A complete scenario: mix + churn + burst + cell ceiling + optional
/// netem binding, under one preset name.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Preset name (report headers, CLI).
    pub name: String,
    /// Device-class mix.
    pub mix: PopulationMix,
    /// Mid-trace arrivals/departures.
    pub churn: ChurnSpec,
    /// Flash-crowd burst, if any.
    pub burst: Option<BurstSpec>,
    /// Per-region cell-capacity ceiling (engine side).
    pub cell: CellCapacity,
    /// Netem preset the scenario binds, if any (`None` keeps whatever
    /// the config already has, letting `--netem` compose freely).
    pub netem: Option<NetemConfig>,
}

impl ScenarioSpec {
    /// Resolves a CLI preset name. The canonical name set shared by the
    /// `simulate`, `tracegen`, and `serve` binaries.
    ///
    /// - `mixed`: the three-class device mix, no churn, no burst.
    /// - `churn`: the mix plus 30% mid-trace arrivals / 20% departures.
    /// - `flashcrowd`: the mix plus an evening app-release burst, a
    ///   per-region cell ceiling, and a netem outage overlapping the
    ///   burst — the composed stress case.
    pub fn parse_preset(name: &str) -> Result<Self, String> {
        Ok(match name {
            "mixed" => Self::mixed(),
            "churn" => Self::churn(),
            "flashcrowd" => Self::flash_crowd(),
            other => return Err(format!("unknown scenario preset `{other}`")),
        })
    }

    /// The three-class device mix alone.
    pub fn mixed() -> Self {
        Self {
            name: "mixed".to_string(),
            mix: PopulationMix::mixed(),
            churn: ChurnSpec::none(),
            burst: None,
            cell: CellCapacity::disabled(),
            netem: None,
        }
    }

    /// The mix plus churn: 30% of users arrive mid-trace with no prior
    /// history, 20% depart early.
    pub fn churn() -> Self {
        Self {
            name: "churn".to_string(),
            churn: ChurnSpec {
                arrival_fraction: 0.30,
                departure_fraction: 0.20,
            },
            ..Self::mixed()
        }
    }

    /// The composed stress case: mix + evening flash crowd + a 4-region
    /// cell ceiling + flaky netem with a blackout covering the first
    /// half of the burst on a quarter of the population.
    pub fn flash_crowd() -> Self {
        let burst = BurstSpec::evening_release();
        let outage_start_h = burst.start.as_millis() / adpf_desim::time::MILLIS_PER_HOUR;
        Self {
            name: "flashcrowd".to_string(),
            burst: Some(burst),
            cell: CellCapacity::capped(4, 600, SimDuration::from_mins(1)),
            netem: Some(NetemConfig::flaky_cellular().with_outage(
                outage_start_h,
                SimDuration::from_hours(1),
                0.25,
            )),
            ..Self::mixed()
        }
    }

    /// Installs the engine-side half of the scenario on `config`: the
    /// scenario layer (classes, cell ceiling, assignment seed) and, when
    /// the spec binds one, the netem preset. `assign_seed` must be the
    /// population seed so the engine's class assignment matches the
    /// trace generator's.
    pub fn apply_to(&self, config: &mut SystemConfig, assign_seed: u64) {
        config.scenario = ScenarioConfig {
            enabled: true,
            name: self.name.clone(),
            assign_seed,
            classes: self.mix.devices(),
            cell: self.cell.clone(),
            user_offset: 0,
        };
        if let Some(netem) = &self.netem {
            config.netem = netem.clone();
        }
    }

    /// Validates the trace-side invariants the generator relies on (the
    /// engine-side half is validated by `SystemConfig::validate` after
    /// [`ScenarioSpec::apply_to`]).
    pub fn validate(&self) -> Result<(), String> {
        if self.mix.classes.is_empty() {
            return Err("scenario: mix needs at least one class".into());
        }
        for c in &self.mix.classes {
            if !(c.session_scale.is_finite() && c.session_scale > 0.0) {
                return Err(format!(
                    "scenario: class `{}` session_scale {} must be positive and finite",
                    c.device.name, c.session_scale
                ));
            }
        }
        for (label, f) in [
            ("arrival", self.churn.arrival_fraction),
            ("departure", self.churn.departure_fraction),
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("scenario: {label} fraction {f} outside [0, 1]"));
            }
        }
        if let Some(b) = &self.burst {
            if b.duration.is_zero() {
                return Err("scenario: burst duration must be positive".into());
            }
            if !(b.intensity.is_finite() && b.intensity >= 0.0) {
                return Err(format!("scenario: burst intensity {} invalid", b.intensity));
            }
            if !(0.0..=1.0).contains(&b.region_fraction) {
                return Err(format!(
                    "scenario: burst region fraction {} outside [0, 1]",
                    b.region_fraction
                ));
            }
            if b.min_secs == 0 || b.max_secs < b.min_secs {
                return Err(format!(
                    "scenario: burst session bounds [{}, {}] invalid",
                    b.min_secs, b.max_secs
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_validate() {
        for name in ["mixed", "churn", "flashcrowd"] {
            let spec = ScenarioSpec::parse_preset(name).unwrap();
            assert_eq!(spec.name, name);
            assert_eq!(spec.validate(), Ok(()));
        }
        assert!(ScenarioSpec::parse_preset("rush-hour").is_err());
    }

    #[test]
    fn apply_to_installs_engine_half_and_validates() {
        let mut cfg = SystemConfig::prefetch_default(9);
        ScenarioSpec::mixed().apply_to(&mut cfg, 1234);
        assert!(cfg.scenario.enabled);
        assert_eq!(cfg.scenario.assign_seed, 1234);
        assert_eq!(cfg.scenario.classes.len(), 3);
        assert!(!cfg.netem.enabled, "mixed binds no netem");
        assert_eq!(cfg.validate(), Ok(()));

        let mut cfg = SystemConfig::prefetch_default(9);
        ScenarioSpec::flash_crowd().apply_to(&mut cfg, 1234);
        assert!(cfg.netem.enabled, "flashcrowd binds flaky+outage netem");
        assert_eq!(cfg.netem.outages.len(), 1);
        assert!(cfg.scenario.cell.enabled);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn outage_overlaps_the_burst_window() {
        let spec = ScenarioSpec::flash_crowd();
        let b = spec.burst.unwrap();
        let o = spec.netem.unwrap().outages[0];
        assert!(o.start >= b.start && o.start < b.start + b.duration);
    }

    #[test]
    fn burst_affected_regions_round_and_clamp() {
        let b = BurstSpec::evening_release();
        assert_eq!(b.affected_regions(4), 2);
        assert_eq!(b.affected_regions(3), 2, "rounds 1.5 up");
        let full = BurstSpec {
            region_fraction: 1.0,
            ..b
        };
        assert_eq!(full.affected_regions(4), 4);
    }

    #[test]
    fn validation_catches_degenerate_specs() {
        let mut spec = ScenarioSpec::mixed();
        spec.mix.classes.clear();
        assert!(spec.validate().is_err(), "empty mix");

        let mut spec = ScenarioSpec::mixed();
        spec.mix.classes[0].session_scale = 0.0;
        assert!(spec.validate().is_err(), "zero session scale");

        let mut spec = ScenarioSpec::churn();
        spec.churn.arrival_fraction = 1.5;
        assert!(spec.validate().is_err(), "fraction above 1");

        let mut spec = ScenarioSpec::flash_crowd();
        spec.burst.as_mut().unwrap().intensity = f64::NAN;
        assert!(spec.validate().is_err(), "NaN intensity");

        let mut spec = ScenarioSpec::flash_crowd();
        spec.burst.as_mut().unwrap().max_secs = 1;
        assert!(spec.validate().is_err(), "max below min");
    }
}
