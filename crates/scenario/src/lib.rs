//! Deterministic scenario layers over the synthetic population.
//!
//! The base pipeline runs one homogeneous population against one device
//! and network profile. This crate composes the regimes the paper skips
//! on top of the existing stack, without touching its determinism
//! contract:
//!
//! - **Mixed populations** ([`ScenarioSpec::mixed`]): a weighted mix of
//!   device classes (WiFi-heavy / LTE / 3G-budget), each binding its own
//!   energy profile, app-session shape, and optional monthly data-plan
//!   cap that gates prefetch once exhausted. Class membership is a pure
//!   function of `(seed, global user id)` shared with the engine
//!   (`adpf_core::scenario::class_index`), so the trace generator and
//!   the simulator always agree on who owns which radio.
//! - **Churn and cold start** ([`ChurnSpec`]): a fraction of users
//!   arrive mid-trace (no sessions — hence no predictor history — before
//!   their arrival time) and a fraction depart early. Both are derived
//!   from stable per-user coordinates, so churn composes with sharding
//!   and streaming unchanged.
//! - **Burst events** ([`BurstSpec`]): an app-release flash crowd
//!   injects extra sessions of one hot app over a window, concentrated
//!   on a subset of cell regions, multiplying slot arrival rates where
//!   the per-region cell-capacity ceiling (`CellCapacity`) bites. The
//!   scenario can additionally bind a netem preset so the burst composes
//!   with outage windows.
//! - **User-cost accounting**: applying a scenario flips on the engine's
//!   scenario layer (`SystemConfig::scenario`), which populates
//!   `SimReport::scenario` — metered bytes, wasted prefetch bytes,
//!   display-latency percentiles, cap/cell counters.
//!
//! [`ScenarioPopulation`] wraps a [`PopulationConfig`] and mirrors its
//! generation surface (`generate`, `generate_parallel`,
//! `generate_shard`, `generate_user_range`), so it plugs into both the
//! materialized and the bounded-memory streaming pipeline. Every
//! transform is a pure function of `(base config, spec, global user
//! id)`; generating a shard directly is byte-identical to materializing
//! the scenario population and splitting it.
//!
//! # Examples
//!
//! ```
//! use adpf_core::{DeliveryMode, Simulator, SystemConfig};
//! use adpf_scenario::{ScenarioPopulation, ScenarioSpec};
//! use adpf_traces::PopulationConfig;
//!
//! let pop = ScenarioPopulation::new(
//!     PopulationConfig::small_test(7),
//!     ScenarioSpec::parse_preset("mixed").unwrap(),
//! );
//! let mut cfg = SystemConfig::prefetch_default(7);
//! pop.apply_to(&mut cfg);
//! let report = Simulator::new(cfg, &pop.generate()).run();
//! assert!(report.scenario.metered_bytes() > 0);
//! ```

pub mod population;
pub mod spec;

pub use population::ScenarioPopulation;
pub use spec::{BurstSpec, ChurnSpec, ClassSpec, PopulationMix, ScenarioSpec};
