//! Descriptive statistics over slices of `f64`.

/// Descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean; `0.0` for an empty sample.
    pub mean: f64,
    /// Population standard deviation; `0.0` for fewer than two observations.
    pub std_dev: f64,
    /// Smallest observation; `0.0` for an empty sample.
    pub min: f64,
    /// Largest observation; `0.0` for an empty sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics for `xs`.
    ///
    /// Non-finite values are ignored. An empty (or all-non-finite) input
    /// yields an all-zero summary with `count == 0`.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        if sorted.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p90: quantile_sorted(&sorted, 0.9),
            p99: quantile_sorted(&sorted, 0.99),
        }
    }

    /// Coefficient of variation (`std_dev / mean`), or `0.0` when the mean is
    /// zero.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Returns the `q`-quantile of an **ascending-sorted** slice using linear
/// interpolation between order statistics.
///
/// `q` is clamped to `[0, 1]`. Returns `0.0` for an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the `q`-quantile of an arbitrary slice (sorts a copy).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    quantile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((quantile(&xs, 0.0) - 10.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 40.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
        // Quantile clamps out-of-range q.
        assert!((quantile(&xs, 2.0) - 40.0).abs() < 1e-12);
        assert!((quantile(&xs, -1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.37), 7.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
