//! Fixed-bin histograms and periodic (hour-of-day) profiles.

/// A histogram over `[lo, hi)` with equally sized bins.
///
/// Values below `lo` land in the first bin; values at or above `hi` land in
/// the last bin, so the histogram never drops observations (the figure
/// harness relies on totals being conserved).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`, which is always a programming
    /// error in the callers of this crate.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram needs hi > lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let idx = self.bin_index(x);
        self.counts[idx] += 1;
    }

    /// Adds `n` observations with the same value.
    pub fn add_n(&mut self, x: f64, n: u64) {
        let idx = self.bin_index(x);
        self.counts[idx] += n;
    }

    fn bin_index(&self, x: f64) -> usize {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let raw = ((x - self.lo) / w).floor();
        if raw < 0.0 {
            0
        } else {
            (raw as usize).min(self.counts.len() - 1)
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin fractions of the total; all zeros when empty.
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// Iterates `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c))
    }
}

/// A 24-slot hour-of-day profile accumulating weights per hour.
///
/// Used to characterize diurnal patterns in the usage traces and as the
/// backing store of the time-of-day predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct HourProfile {
    weights: [f64; 24],
}

impl Default for HourProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl HourProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self { weights: [0.0; 24] }
    }

    /// Creates a profile from explicit per-hour weights.
    pub fn from_weights(weights: [f64; 24]) -> Self {
        Self { weights }
    }

    /// Adds `weight` to the given hour (wrapped modulo 24).
    pub fn add(&mut self, hour: u32, weight: f64) {
        self.weights[(hour % 24) as usize] += weight;
    }

    /// Raw weight of an hour.
    pub fn weight(&self, hour: u32) -> f64 {
        self.weights[(hour % 24) as usize]
    }

    /// Total weight across all hours.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Fraction of total weight in the given hour; `0.0` when empty.
    pub fn fraction(&self, hour: u32) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            0.0
        } else {
            self.weight(hour) / total
        }
    }

    /// Returns all 24 fractions.
    pub fn fractions(&self) -> [f64; 24] {
        let total = self.total();
        let mut out = [0.0; 24];
        if total > 0.0 {
            for (o, w) in out.iter_mut().zip(self.weights.iter()) {
                *o = w / total;
            }
        }
        out
    }

    /// Hour with the largest weight (ties resolve to the earliest hour).
    pub fn peak_hour(&self) -> u32 {
        let mut best = 0;
        for h in 1..24 {
            if self.weights[h] > self.weights[best] {
                best = h;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0);
        h.add(1.9);
        h.add(2.0);
        h.add(9.99);
        h.add(10.0); // Clamped into last bin.
        h.add(-5.0); // Clamped into first bin.
        assert_eq!(h.counts(), &[3, 1, 0, 0, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let total: f64 = h.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn hour_profile_basics() {
        let mut p = HourProfile::new();
        p.add(9, 2.0);
        p.add(21, 6.0);
        p.add(33, 1.0); // Wraps to hour 9.
        assert_eq!(p.weight(9), 3.0);
        assert_eq!(p.peak_hour(), 21);
        assert!((p.fraction(21) - 6.0 / 9.0).abs() < 1e-12);
        let total: f64 = p.fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_hour_profile_is_safe() {
        let p = HourProfile::new();
        assert_eq!(p.fraction(3), 0.0);
        assert_eq!(p.peak_hour(), 0);
    }
}
