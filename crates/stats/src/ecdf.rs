//! Empirical cumulative distribution functions.

use crate::summary::quantile_sorted;

/// An empirical CDF built from a finite sample.
///
/// Evaluation uses the right-continuous step convention
/// `F(x) = |{ i : x_i <= x }| / n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample; non-finite values are dropped.
    pub fn new(mut xs: Vec<f64>) -> Self {
        xs.retain(|x| x.is_finite());
        xs.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        Self { sorted: xs }
    }

    /// Number of (finite) observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when the ECDF holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(x)`; returns `0.0` for an empty ECDF.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Returns the `q`-quantile (with interpolation); `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Iterates the ECDF's step points as `(x, F(x))` pairs, one per
    /// distinct observation — convenient for printing figure series.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Downsamples [`Ecdf::points`] to at most `max_points` evenly spaced
    /// probability levels, preserving the first and last point.
    pub fn points_downsampled(&self, max_points: usize) -> Vec<(f64, f64)> {
        let pts = self.points();
        if pts.len() <= max_points || max_points < 2 {
            return pts;
        }
        let mut out = Vec::with_capacity(max_points);
        for k in 0..max_points {
            let idx = k * (pts.len() - 1) / (max_points - 1);
            out.push(pts[idx]);
        }
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    /// Kolmogorov–Smirnov statistic between two ECDFs: the maximum absolute
    /// difference of the two step functions.
    pub fn ks_statistic(&self, other: &Ecdf) -> f64 {
        let mut max_diff: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            max_diff = max_diff.max((self.cdf(x) - other.cdf(x)).abs());
        }
        max_diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_steps_correctly() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(10.0), 1.0);
    }

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::new(vec![f64::NAN]);
        assert!(e.is_empty());
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.quantile(0.5), 0.0);
        assert!(e.points().is_empty());
    }

    #[test]
    fn points_collapse_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pts[1], (2.0, 1.0));
    }

    #[test]
    fn downsampling_preserves_extremes() {
        let e = Ecdf::new((0..1000).map(|i| i as f64).collect());
        let pts = e.points_downsampled(11);
        assert!(pts.len() <= 11);
        assert_eq!(pts.first().unwrap().0, 0.0);
        assert_eq!(pts.last().unwrap().0, 999.0);
    }

    #[test]
    fn ks_of_identical_samples_is_zero() {
        let a = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let b = Ecdf::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.ks_statistic(&b), 0.0);
    }

    #[test]
    fn ks_of_disjoint_samples_is_one() {
        let a = Ecdf::new(vec![1.0, 2.0]);
        let b = Ecdf::new(vec![10.0, 20.0]);
        assert!((a.ks_statistic(&b) - 1.0).abs() < 1e-12);
    }
}
