//! Deterministic sampling distributions and descriptive statistics.
//!
//! This crate is the numerical substrate of the `adprefetch` workspace. It
//! provides:
//!
//! - [`dist`]: random-variate generators (normal, lognormal, exponential,
//!   Pareto, Zipf, Poisson, Bernoulli, binomial, and generic discrete
//!   distributions) implemented in-tree so that every sample drawn anywhere
//!   in the simulator is reproducible from a single seed and auditable.
//! - [`summary`]: one-pass descriptive statistics and quantiles.
//! - [`ecdf`]: empirical cumulative distribution functions.
//! - [`hist`]: fixed-bin histograms and hour-of-day profiles.
//! - [`corr`]: Pearson correlation and autocorrelation.
//! - [`online`]: Welford online moments and exponentially weighted means.
//!
//! # Examples
//!
//! ```
//! use adpf_stats::dist::{Distribution, LogNormal};
//! use adpf_stats::summary::Summary;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let d = LogNormal::from_mean_cv(10.0, 1.0).unwrap();
//! let xs: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
//! let s = Summary::from_slice(&xs);
//! assert!((s.mean - 10.0).abs() < 0.5);
//! ```

pub mod corr;
pub mod dist;
pub mod ecdf;
pub mod hist;
pub mod online;
pub mod summary;

pub use corr::{autocorrelation, pearson};
pub use dist::Distribution;
pub use ecdf::Ecdf;
pub use hist::Histogram;
pub use online::{Ewma, Welford};
pub use summary::Summary;

/// Error type for invalid statistical parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    /// Human-readable description of the violated constraint.
    pub reason: &'static str,
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.reason)
    }
}

impl std::error::Error for ParamError {}
