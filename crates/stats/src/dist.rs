//! Random-variate generators implemented in-tree.
//!
//! Only the uniform source comes from [`rand`]; every transformation to a
//! non-uniform law lives here so that the whole simulation stack depends on
//! one small, documented sampling layer.

use rand::Rng;

use crate::ParamError;

/// A distribution from which values of type `T` can be sampled.
///
/// This mirrors `rand::distributions::Distribution` but is defined locally so
/// the workspace controls every sampling algorithm (and therefore the exact
/// stream of variates produced by a given seed).
pub trait Distribution<T> {
    /// Draws one sample using `rng` as the uniform randomness source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Draws `n` samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Normal (Gaussian) distribution sampled with the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation; strictly positive.
    pub std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// Returns an error if `std_dev` is not finite and positive.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        let valid = std_dev.is_finite() && std_dev > 0.0 && mean.is_finite();
        if !valid {
            return Err(ParamError {
                reason: "Normal requires finite mean and std_dev > 0",
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// Samples a standard normal variate.
    pub fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        Self::standard_pair(rng).0
    }

    /// Samples a *pair* of independent standard normal variates.
    ///
    /// The Marsaglia polar method produces two variates per accepted
    /// point; bulk samplers that keep the second one halve the cost of
    /// the rejection loop (and its `ln`/`sqrt`) on average.
    pub fn standard_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
        // Marsaglia polar method: draw points uniformly in the unit square
        // until one falls inside the unit circle, then transform.
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                return (u * f, v * f);
            }
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard_sample(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal; strictly positive.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        let valid = sigma.is_finite() && sigma > 0.0 && mu.is_finite();
        if !valid {
            return Err(ParamError {
                reason: "LogNormal requires finite mu and sigma > 0",
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal with the given arithmetic mean and coefficient of
    /// variation (`std / mean`).
    ///
    /// This is the natural way to specify workload knobs ("mean session
    /// length 80 s, CV 1.2") without solving for `mu`/`sigma` by hand.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self, ParamError> {
        let valid = mean.is_finite() && mean > 0.0 && cv.is_finite() && cv > 0.0;
        if !valid {
            return Err(ParamError {
                reason: "LogNormal::from_mean_cv requires mean > 0 and cv > 0",
            });
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Arithmetic mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Median of the distribution (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl LogNormal {
    /// Samples one value, banking the polar method's second normal
    /// variate in `spare` for the next call.
    ///
    /// The sampled distribution is exactly that of
    /// [`Distribution::sample`]; only the RNG consumption pattern
    /// differs (half the rejection loops on average). Callers drawing
    /// many values per stream — an ad exchange sampling dozens of bids
    /// per auction — thread one `spare` slot through all draws.
    pub fn sample_paired<R: Rng + ?Sized>(&self, rng: &mut R, spare: &mut Option<f64>) -> f64 {
        let z = match spare.take() {
            Some(z) => z,
            None => {
                let (a, b) = Normal::standard_pair(rng);
                *spare = Some(b);
                a
            }
        };
        (self.mu + self.sigma * z).exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard_sample(rng)).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter; strictly positive.
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ParamError {
                reason: "Exponential requires rate > 0",
            });
        }
        Ok(Self { rate })
    }

    /// Creates an exponential distribution with the given mean.
    pub fn from_mean(mean: f64) -> Result<Self, ParamError> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(ParamError {
                reason: "Exponential requires mean > 0",
            });
        }
        Self::new(1.0 / mean)
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -ln(1 - U) / lambda; `gen` draws from [0, 1).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    /// Minimum value (scale); strictly positive.
    pub x_min: f64,
    /// Tail exponent (shape); strictly positive.
    pub alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, ParamError> {
        let valid = x_min.is_finite() && x_min > 0.0 && alpha.is_finite() && alpha > 0.0;
        if !valid {
            return Err(ParamError {
                reason: "Pareto requires x_min > 0 and alpha > 0",
            });
        }
        Ok(Self { x_min, alpha })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.x_min / (1.0 - u).powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Sampling uses a precomputed cumulative table and binary search, which is
/// exact and fast for the rank counts used in this workspace (hundreds of
/// apps, thousands of users).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError {
                reason: "Zipf requires n >= 1",
            });
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError {
                reason: "Zipf requires finite s >= 0",
            });
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point drift so the final bucket always
        // covers u = 1 - epsilon.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cumulative })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` when the distribution has no ranks (never constructed).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cumulative.len() {
            return 0.0;
        }
        let hi = self.cumulative[k - 1];
        let lo = if k >= 2 { self.cumulative[k - 2] } else { 0.0 };
        hi - lo
    }
}

impl Distribution<usize> for Zipf {
    /// Samples a 1-based rank.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative table is finite"))
        {
            // On an exact boundary hit the draw belongs to the next rank,
            // which matches the half-open bucket convention used below.
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Uses Knuth's product method for small means and a normal approximation
/// with continuity correction for large means, which keeps sampling O(1)
/// across the full range used by the workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Mean (and variance); non-negative.
    pub lambda: f64,
}

impl Poisson {
    /// Mean above which the normal approximation is used.
    const NORMAL_APPROX_THRESHOLD: f64 = 64.0;

    /// Creates a Poisson distribution with the given mean.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(ParamError {
                reason: "Poisson requires finite lambda >= 0",
            });
        }
        Ok(Self { lambda })
    }

    /// Creates a Poisson distribution, clamping an invalid mean (NaN,
    /// infinite, or negative) to 0 instead of failing.
    ///
    /// Workload generators compute `lambda` from sampled per-user rates
    /// scaled by calendar factors; a pathological combination should
    /// degrade to "no arrivals", not panic mid-generation. Debug builds
    /// still assert so the bad parameter is caught in tests.
    pub fn clamped(lambda: f64) -> Self {
        debug_assert!(
            lambda.is_finite() && lambda >= 0.0,
            "Poisson::clamped given invalid lambda {lambda}"
        );
        let lambda = if lambda.is_finite() && lambda >= 0.0 {
            lambda
        } else {
            0.0
        };
        Self { lambda }
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < Self::NORMAL_APPROX_THRESHOLD {
            // Knuth: count uniform draws until their product drops below
            // exp(-lambda).
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count
        } else {
            let x = self.lambda + self.lambda.sqrt() * Normal::standard_sample(rng);
            x.round().max(0.0) as u64
        }
    }
}

/// Bernoulli distribution returning `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    /// Success probability in `[0, 1]`.
    pub p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError {
                reason: "Bernoulli requires p in [0, 1]",
            });
        }
        Ok(Self { p })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }
}

/// Binomial distribution: number of successes in `n` Bernoulli(`p`) trials.
///
/// Uses direct simulation for small `n` and a normal approximation with
/// continuity correction otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    /// Number of trials.
    pub n: u64,
    /// Per-trial success probability in `[0, 1]`.
    pub p: f64,
}

impl Binomial {
    /// Trial count above which the normal approximation is used.
    const NORMAL_APPROX_THRESHOLD: u64 = 256;

    /// Creates a binomial distribution.
    pub fn new(n: u64, p: f64) -> Result<Self, ParamError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError {
                reason: "Binomial requires p in [0, 1]",
            });
        }
        Ok(Self { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        if self.n <= Self::NORMAL_APPROX_THRESHOLD {
            let mut successes = 0;
            for _ in 0..self.n {
                if rng.gen::<f64>() < self.p {
                    successes += 1;
                }
            }
            successes
        } else {
            let mean = self.n as f64 * self.p;
            let std = (mean * (1.0 - self.p)).sqrt();
            let x = mean + std * Normal::standard_sample(rng);
            x.round().clamp(0.0, self.n as f64) as u64
        }
    }
}

/// Discrete distribution over indices `0..weights.len()` with arbitrary
/// non-negative weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution proportional to `weights`.
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, ParamError> {
        if weights.is_empty() {
            return Err(ParamError {
                reason: "Discrete requires at least one weight",
            });
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !(w.is_finite() && w >= 0.0) {
                return Err(ParamError {
                    reason: "Discrete requires finite weights >= 0",
                });
            }
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(ParamError {
                reason: "Discrete requires a positive total weight",
            });
        }
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` when the distribution has no categories.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability mass of category `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        if i >= self.cumulative.len() {
            return 0.0;
        }
        let hi = self.cumulative[i];
        let lo = if i >= 1 { self.cumulative[i - 1] } else { 0.0 };
        hi - lo
    }
}

impl Distribution<usize> for Discrete {
    /// Samples a 0-based category index.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative table is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xad5_beef)
    }

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn normal_matches_moments() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut r = rng();
        let xs = d.sample_n(&mut r, 50_000);
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_from_mean_cv_hits_mean() {
        let d = LogNormal::from_mean_cv(42.0, 1.5).unwrap();
        assert!((d.mean() - 42.0).abs() < 1e-9);
        let mut r = rng();
        let xs = d.sample_n(&mut r, 200_000);
        let m = mean_of(&xs);
        assert!((m - 42.0).abs() < 1.5, "empirical mean {m}");
    }

    #[test]
    fn lognormal_median_below_mean() {
        let d = LogNormal::from_mean_cv(10.0, 2.0).unwrap();
        assert!(d.median() < d.mean());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::from_mean(3.0).unwrap();
        let mut r = rng();
        let xs = d.sample_n(&mut r, 100_000);
        assert!((mean_of(&xs) - 3.0).abs() < 0.05);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(2.0, 2.5).unwrap();
        let mut r = rng();
        let xs = d.sample_n(&mut r, 10_000);
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Mean of Pareto(x_min, alpha) is x_min * alpha / (alpha - 1).
        let expected = 2.0 * 2.5 / 1.5;
        assert!((mean_of(&xs) - expected).abs() < 0.15);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.0).unwrap();
        let mut r = rng();
        let mut counts = vec![0u32; 101];
        for _ in 0..50_000 {
            let k: usize = d.sample(&mut r);
            assert!((1..=100).contains(&k));
            counts[k] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        // PMF of rank 1 under Zipf(100, 1) is 1 / H_100 ~ 0.1928.
        let p1 = counts[1] as f64 / 50_000.0;
        assert!((p1 - d.pmf(1)).abs() < 0.01, "p1 {p1} vs {}", d.pmf(1));
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let d = Zipf::new(37, 0.8).unwrap();
        let total: f64 = (1..=37).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(38), 0.0);
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = rng();
        for &lambda in &[0.5, 4.0, 20.0, 200.0] {
            let d = Poisson::new(lambda).unwrap();
            let xs: Vec<u64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
            let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
            assert!(
                (m - lambda).abs() < 3.0 * (lambda / 40_000.0).sqrt() + 0.5,
                "lambda {lambda} empirical {m}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let d = Poisson::new(0.0).unwrap();
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0);
    }

    #[test]
    fn poisson_clamped_passes_valid_and_floors_invalid() {
        assert_eq!(Poisson::clamped(3.5).lambda, 3.5);
        assert_eq!(Poisson::clamped(0.0).lambda, 0.0);
        // Release builds clamp rather than panic; debug builds assert, so
        // only exercise the invalid inputs when debug assertions are off.
        if !cfg!(debug_assertions) {
            let mut r = rng();
            for bad in [-1.0, f64::NAN, f64::INFINITY] {
                let d = Poisson::clamped(bad);
                assert_eq!(d.lambda, 0.0);
                assert_eq!(d.sample(&mut r), 0);
            }
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut r = rng();
        let hits = (0..100_000).filter(|_| d.sample(&mut r)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01);
    }

    #[test]
    fn bernoulli_rejects_out_of_range() {
        assert!(Bernoulli::new(-0.01).is_err());
        assert!(Bernoulli::new(1.01).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
    }

    #[test]
    fn binomial_edges_and_mean() {
        let mut r = rng();
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut r), 10);
        for &n in &[50u64, 2_000] {
            let d = Binomial::new(n, 0.25).unwrap();
            let xs: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
            let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
            let expected = n as f64 * 0.25;
            assert!((m - expected).abs() < expected * 0.05 + 0.5, "n {n} m {m}");
            assert!(xs.iter().all(|&x| x <= n));
        }
    }

    #[test]
    fn discrete_matches_weights() {
        let d = Discrete::new(&[1.0, 3.0, 6.0]).unwrap();
        let mut r = rng();
        let mut counts = [0u32; 3];
        for _ in 0..60_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert!((counts[0] as f64 / 60_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 60_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 60_000.0 - 0.6).abs() < 0.01);
        assert!((d.pmf(2) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn discrete_rejects_degenerate_weights() {
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[0.0, 0.0]).is_err());
        assert!(Discrete::new(&[1.0, -1.0]).is_err());
        assert!(Discrete::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn zipf_zero_ranks_rejected() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LogNormal::from_mean_cv(5.0, 0.7).unwrap();
        let a = d.sample_n(&mut StdRng::seed_from_u64(9), 32);
        let b = d.sample_n(&mut StdRng::seed_from_u64(9), 32);
        assert_eq!(a, b);
    }
}
