//! Online (streaming) statistics.

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable and O(1) per update; used by predictors that must keep
/// per-user statistics over long traces without buffering them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` — a programming error.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Feeds one observation; the first observation initializes the average.
    pub fn add(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before any observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.add(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(9.0), 9.0);
        for _ in 0..64 {
            e.add(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_one_tracks_last() {
        let mut e = Ewma::new(1.0);
        e.add(1.0);
        e.add(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }
}
