//! Correlation measures used when characterizing trace predictability.

/// Pearson correlation coefficient between two equally long series.
///
/// Returns `0.0` if the series differ in length, are shorter than two
/// elements, or either has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Autocorrelation of `xs` at the given `lag`.
///
/// Returns `0.0` when the lag leaves fewer than two overlapping points.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if lag >= xs.len() {
        return 0.0;
    }
    pearson(&xs[..xs.len() - lag], &xs[lag..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn autocorrelation_of_periodic_signal() {
        // Period-4 signal: autocorrelation at lag 4 is 1, at lag 2 is -1.
        let xs: Vec<f64> = (0..64)
            .map(|i| if i % 4 < 2 { 1.0 } else { -1.0 })
            .collect();
        assert!((autocorrelation(&xs, 4) - 1.0).abs() < 1e-9);
        assert!((autocorrelation(&xs, 2) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn autocorrelation_lag_out_of_range() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 2), 0.0);
        assert_eq!(autocorrelation(&[], 0), 0.0);
    }
}
