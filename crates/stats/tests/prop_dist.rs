//! Property-based tests for the sampling distributions.

use adpf_stats::dist::{
    Bernoulli, Binomial, Discrete, Distribution, Exponential, LogNormal, Normal, Pareto, Poisson,
    Zipf,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Positive-support distributions only produce positive values, and
    /// sampling is deterministic per seed.
    #[test]
    fn positive_support_and_determinism(
        mean in 0.1f64..1_000.0,
        cv in 0.05f64..3.0,
        seed in any::<u64>(),
    ) {
        let d = LogNormal::from_mean_cv(mean, cv).unwrap();
        let a = d.sample_n(&mut StdRng::seed_from_u64(seed), 64);
        let b = d.sample_n(&mut StdRng::seed_from_u64(seed), 64);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&x| x > 0.0 && x.is_finite()));

        let e = Exponential::from_mean(mean).unwrap();
        let xs = e.sample_n(&mut StdRng::seed_from_u64(seed), 64);
        prop_assert!(xs.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    /// Pareto samples never fall below the scale parameter.
    #[test]
    fn pareto_respects_scale(x_min in 0.01f64..100.0, alpha in 0.2f64..10.0, seed in any::<u64>()) {
        let d = Pareto::new(x_min, alpha).unwrap();
        let xs = d.sample_n(&mut StdRng::seed_from_u64(seed), 128);
        prop_assert!(xs.iter().all(|&x| x >= x_min));
    }

    /// Zipf ranks stay in range and the pmf sums to one.
    #[test]
    fn zipf_ranks_in_range(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
        let d = Zipf::new(n, s).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let k: usize = d.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
        let total: f64 = (1..=n).map(|k| d.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// Poisson and binomial samples respect their supports.
    #[test]
    fn counting_distributions_in_support(
        lambda in 0.0f64..300.0,
        n in 0u64..5_000,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let _pois: u64 = Poisson::new(lambda).unwrap().sample(&mut rng);
        let b: u64 = Binomial::new(n, p).unwrap().sample(&mut rng);
        prop_assert!(b <= n);
        let bern = Bernoulli::new(p).unwrap();
        let _: bool = bern.sample(&mut rng);
    }

    /// Discrete distributions only emit categories with positive weight.
    #[test]
    fn discrete_avoids_zero_weight_categories(
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let d = Discrete::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..128 {
            let i: usize = d.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }

    /// Normal samples are finite and the constructor rejects bad input.
    #[test]
    fn normal_is_finite(mean in -1e6f64..1e6, std in 0.001f64..1e3, seed in any::<u64>()) {
        let d = Normal::new(mean, std).unwrap();
        let xs = d.sample_n(&mut StdRng::seed_from_u64(seed), 64);
        prop_assert!(xs.iter().all(|x| x.is_finite()));
        prop_assert!(Normal::new(mean, -std).is_err());
    }
}
