//! System configuration.

use adpf_auction::MarketplaceConfig;
use adpf_desim::SimDuration;
use adpf_energy::{profiles, RadioProfile};
use adpf_netem::NetemConfig;
use adpf_overbooking::planner::{
    FixedFactorPlanner, GreedyPlanner, NoReplicationPlanner, ReplicationPlanner,
};
use adpf_prediction::PredictorKind;

use crate::scenario::ScenarioConfig;

/// How ads reach clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Status quo: every slot fetches its ad over the radio at display
    /// time, sold through a real-time auction.
    RealTime,
    /// The paper's scheme: predicted slots are pre-sold, overbooked across
    /// clients, and delivered in batched syncs.
    Prefetch,
}

/// Which replication policy the server uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlannerKind {
    /// Greedy availability-ordered replication sized to the SLA target
    /// (the paper's planner).
    Greedy,
    /// Fixed replication factor, ignoring the SLA target (static
    /// overbooking ablation).
    FixedK(usize),
    /// No replication: every ad lives only on its origin client (the
    /// no-overbooking ablation).
    NoReplication,
}

impl PlannerKind {
    /// Resolves a CLI planner name (`greedy`, `none`, or `fixed-K`). The
    /// canonical name set shared by the `simulate` and `serve` binaries.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "greedy" => Ok(PlannerKind::Greedy),
            "none" => Ok(PlannerKind::NoReplication),
            other => match other.strip_prefix("fixed-").and_then(|k| k.parse().ok()) {
                Some(k) => Ok(PlannerKind::FixedK(k)),
                None => Err(format!("unknown planner `{other}`")),
            },
        }
    }

    /// Builds the planner.
    pub fn build(&self) -> Box<dyn ReplicationPlanner> {
        match *self {
            PlannerKind::Greedy => Box::new(GreedyPlanner),
            PlannerKind::FixedK(k) => Box::new(FixedFactorPlanner { k }),
            PlannerKind::NoReplication => Box::new(NoReplicationPlanner),
        }
    }

    /// Stable label for tables.
    pub fn label(&self) -> String {
        match self {
            PlannerKind::Greedy => "greedy".to_string(),
            PlannerKind::FixedK(k) => format!("fixed-{k}"),
            PlannerKind::NoReplication => "none".to_string(),
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Delivery mode under test.
    pub mode: DeliveryMode,
    /// Per-client demand predictor family (Prefetch mode only).
    pub predictor: PredictorKind,
    /// Replication policy (Prefetch mode only).
    pub planner: PlannerKind,
    /// Client sync period (Prefetch mode only).
    pub prefetch_interval: SimDuration,
    /// Target probability that a sold ad is displayed before its deadline.
    pub sla_target: f64,
    /// Display deadline attached to advance-sold ads.
    pub deadline: SimDuration,
    /// Upper bound on replicas per ad.
    pub max_replicas: usize,
    /// Final portion of an ad's lifetime during which replica copies may
    /// display. Replicas are insurance against the origin client failing;
    /// holding them back until late keeps them from duplicating ads the
    /// origin already showed (whose cancellations are still in flight).
    pub replica_window: SimDuration,
    /// How many candidate clients the planner examines per ad.
    pub candidate_pool: usize,
    /// Dispersion factor in `(0, 1]` applied to expected session counts
    /// when estimating display probabilities. Real demand is overdispersed
    /// day to day (users skip whole days), so availability is discounted
    /// below the Poisson-session estimate.
    pub availability_dispersion: f64,
    /// In-app ad refresh interval (drives slot derivation).
    pub ad_refresh: SimDuration,
    /// Radio technology profile.
    pub radio: RadioProfile,
    /// Downlink bytes per ad creative.
    pub ad_bytes_down: u64,
    /// Uplink bytes per ad request/report.
    pub ad_bytes_up: u64,
    /// Fixed protocol bytes per sync (each direction).
    pub sync_overhead_bytes: u64,
    /// Skip the sync radio transfer when there is nothing to deliver or
    /// report.
    pub skip_empty_syncs: bool,
    /// Serve a real-time fetch when a slot finds the cache empty.
    pub realtime_fallback: bool,
    /// Defer syncs whose only payload is impression reports until the
    /// oldest pending report is one prefetch interval old (or a transfer
    /// happens anyway). Reports are tiny; what costs energy is the radio
    /// wakeup, so batching them into the next natural transfer saves a
    /// full tail per report-only sync. Billing tolerates the delay: ads
    /// are billed by display timestamp and the expiry sweep waits a grace
    /// period of two intervals before declaring a violation.
    pub defer_report_syncs: bool,
    /// Piggyback a full sync (reports, deliveries, new sales) on each
    /// real-time fallback fetch: the radio is already awake, so the batch
    /// rides the same promotion and tail. This is the paper's key
    /// client-side optimization — typically one radio wakeup per app
    /// session instead of one per ad.
    pub piggyback_on_fallback: bool,
    /// Multiplier applied to the predicted slot count when deciding how
    /// many advance slots to sell. Values above 1 over-provision
    /// deliberately and lean on overbooking + cancellation to contain the
    /// cost.
    pub sell_margin: f64,
    /// Number of advertiser campaigns in the exchange.
    pub campaigns: u32,
    /// Fraction of campaigns that target a specific app category.
    /// Contextual campaigns cannot bid on advance slots (the future app is
    /// unknown), so raising this erodes advance clearing prices — the
    /// context cost of prefetching. The paper's model corresponds to 0.
    pub contextual_fraction: f64,
    /// Bid premium contextual campaigns pay for matching impressions.
    pub contextual_premium: f64,
    /// Price multiplier applied to advance sales (1.0 = no risk discount).
    pub advance_discount: f64,
    /// Probability a scheduled periodic sync is missed (device off,
    /// no coverage, radio-off hours). Piggybacked syncs are unaffected —
    /// the user is demonstrably online when a fallback fetch happens.
    /// Failure-injection knob; `0.0` disables.
    pub sync_dropout: f64,
    /// Network-condition emulation: per-client link-state machines,
    /// outage windows, and the client retry policy. Disabled by default —
    /// the ideal always-on network the paper assumes. When disabled the
    /// simulator takes exactly the legacy code path (no extra RNG draws,
    /// no extra energy events), so reports are bit-identical to
    /// netem-less builds.
    pub netem: NetemConfig,
    /// Reactive marketplace layer: campaign pacing controllers, price
    /// floors, and the pricing rule. Disabled by default — the static
    /// exchange the paper measured. When disabled the exchange takes
    /// exactly the legacy code path (no extra RNG draws, multiplier 1.0,
    /// floors 0.0, second-price), so reports are bit-identical to
    /// pre-marketplace builds.
    pub marketplace: MarketplaceConfig,
    /// Scenario layer: heterogeneous device classes with data-plan caps,
    /// per-region cell-capacity ceilings, and user-cost accounting
    /// (metered bytes, wasted prefetch, display latency). Disabled by
    /// default — the homogeneous population the paper assumes. When
    /// disabled the engine takes exactly the legacy code path (no extra
    /// state, no extra metrics), so reports are bit-identical to
    /// pre-scenario builds.
    pub scenario: ScenarioConfig,
    /// Master seed (exchange randomness, candidate sampling).
    pub seed: u64,
    /// RNG stream selector for sharded runs. Stream `0` (the default)
    /// reproduces the unsharded seed derivation bit-for-bit; sharded runs
    /// give shard `i` stream `i`, so every `(seed, shard)` pair draws
    /// independent bid and fault randomness while the campaign catalog —
    /// built from `seed` alone — stays identical across shards.
    pub rng_stream: u64,
    /// Fraction of every campaign budget available to this run, in
    /// `(0, 1]`. Sharded runs set it to the shard's share of the
    /// population so the shards' combined spending power never exceeds
    /// the global budgets. `1.0` (the default) is the unsharded no-op.
    pub budget_fraction: f64,
    /// Drain internal events in per-bucket batches when the
    /// configuration's self-scheduling deltas allow it (see
    /// `ClientEngine`); `false` forces the legacy one-event-at-a-time
    /// drain. Results are bit-identical either way — this is an escape
    /// hatch and equivalence-test seam, deliberately excluded from
    /// [`SystemConfig::describe`] so it can never perturb report hashes.
    pub batched: bool,
}

impl SystemConfig {
    /// The status-quo configuration: real-time delivery over 3G.
    pub fn realtime(seed: u64) -> Self {
        Self {
            mode: DeliveryMode::RealTime,
            predictor: PredictorKind::Zero,
            planner: PlannerKind::NoReplication,
            prefetch_interval: SimDuration::from_hours(2),
            sla_target: 0.95,
            deadline: SimDuration::from_hours(12),
            max_replicas: 4,
            replica_window: SimDuration::from_mins(45),
            candidate_pool: 64,
            availability_dispersion: 0.5,
            ad_refresh: SimDuration::from_secs(30),
            radio: profiles::umts_3g(),
            ad_bytes_down: 4 * 1024,
            ad_bytes_up: 512,
            sync_overhead_bytes: 1024,
            skip_empty_syncs: true,
            defer_report_syncs: true,
            realtime_fallback: true,
            piggyback_on_fallback: true,
            sell_margin: 1.0,
            campaigns: 50,
            contextual_fraction: 0.0,
            contextual_premium: 1.5,
            advance_discount: 1.0,
            sync_dropout: 0.0,
            netem: NetemConfig::disabled(),
            marketplace: MarketplaceConfig::disabled(),
            scenario: ScenarioConfig::disabled(),
            seed,
            rng_stream: 0,
            budget_fraction: 1.0,
            batched: true,
        }
    }

    /// The paper's default prefetching configuration: 2-hour syncs,
    /// 12-hour ad deadlines, the session-aware predictor, and greedy
    /// overbooking at a 95% SLA target with a 45-minute replica window.
    pub fn prefetch_default(seed: u64) -> Self {
        Self {
            mode: DeliveryMode::Prefetch,
            predictor: PredictorKind::SessionAware,
            planner: PlannerKind::Greedy,
            ..Self::realtime(seed)
        }
    }

    /// Validates invariants the simulator relies on.
    ///
    /// Returns a human-readable reason when the configuration is unusable.
    pub fn validate(&self) -> Result<(), String> {
        if self.prefetch_interval.is_zero() {
            return Err("prefetch_interval must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.sla_target) {
            return Err(format!("sla_target {} outside [0, 1]", self.sla_target));
        }
        if self.deadline.is_zero() {
            return Err("deadline must be positive".into());
        }
        if self.max_replicas == 0 {
            return Err("max_replicas must be at least 1".into());
        }
        if self.mode == DeliveryMode::Prefetch && self.replica_window.is_zero() {
            return Err("replica_window must be positive: replicas could never display".into());
        }
        if self.candidate_pool == 0 {
            return Err("candidate_pool must be at least 1".into());
        }
        if !(self.availability_dispersion > 0.0 && self.availability_dispersion <= 1.0) {
            return Err(format!(
                "availability_dispersion {} outside (0, 1]",
                self.availability_dispersion
            ));
        }
        if !(self.sell_margin.is_finite() && self.sell_margin > 0.0) {
            return Err(format!("sell_margin {} must be positive", self.sell_margin));
        }
        if !(0.0..=1.0).contains(&self.contextual_fraction) {
            return Err(format!(
                "contextual_fraction {} outside [0, 1]",
                self.contextual_fraction
            ));
        }
        if self.advance_discount <= 0.0 || self.advance_discount > 1.0 {
            return Err(format!(
                "advance_discount {} outside (0, 1]",
                self.advance_discount
            ));
        }
        if !(0.0..=1.0).contains(&self.sync_dropout) {
            return Err(format!("sync_dropout {} outside [0, 1]", self.sync_dropout));
        }
        self.netem.validate().map_err(|e| format!("netem: {e}"))?;
        self.marketplace
            .validate()
            .map_err(|e| format!("marketplace: {e}"))?;
        self.scenario
            .validate()
            .map_err(|e| format!("scenario: {e}"))?;
        if !(self.budget_fraction > 0.0 && self.budget_fraction <= 1.0) {
            return Err(format!(
                "budget_fraction {} outside (0, 1]",
                self.budget_fraction
            ));
        }
        if self.mode == DeliveryMode::Prefetch && self.deadline < self.prefetch_interval {
            return Err(format!(
                "deadline {} shorter than prefetch interval {}: replicas could never arrive",
                self.deadline, self.prefetch_interval
            ));
        }
        Ok(())
    }

    /// One-line description for report headers.
    pub fn describe(&self) -> String {
        let mut d = match self.mode {
            DeliveryMode::RealTime => format!("realtime radio={}", self.radio.name),
            DeliveryMode::Prefetch => format!(
                "prefetch interval={} deadline={} predictor={} planner={} sla={} radio={}",
                self.prefetch_interval,
                self.deadline,
                self.predictor.label(),
                self.planner.label(),
                self.sla_target,
                self.radio.name
            ),
        };
        // Netem-off descriptions stay byte-identical to the pre-netem
        // format so existing golden report hashes remain valid.
        if self.netem.enabled {
            d.push_str(&format!(
                " netem={} retries={}",
                self.netem.name, self.netem.retry.max_retries
            ));
        }
        // Same pattern for the marketplace: the off header is byte-
        // identical to pre-marketplace builds, so golden hashes hold.
        if self.marketplace.enabled {
            d.push_str(&format!(
                " marketplace={} pricing={}",
                self.marketplace.name,
                self.marketplace.pricing.label()
            ));
            if self.marketplace.floors.any() {
                d.push_str(&format!(
                    " floors={}/{}",
                    self.marketplace.floors.realtime, self.marketplace.floors.advance
                ));
            }
        }
        // Same pattern again for the scenario layer: append-only when
        // enabled, so scenario-off golden hashes hold. The shard-derived
        // `user_offset` is deliberately excluded — all shards of one run
        // must share the same description.
        if self.scenario.enabled {
            d.push_str(&format!(
                " scenario={} classes={}",
                self.scenario.name,
                self.scenario.classes.len()
            ));
            if self.scenario.cell.enabled {
                d.push_str(&format!(
                    " cell={}x{}/{}",
                    self.scenario.cell.regions,
                    self.scenario.cell.fetches_per_window,
                    self.scenario.cell.window
                ));
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(SystemConfig::realtime(1).validate(), Ok(()));
        assert_eq!(SystemConfig::prefetch_default(1).validate(), Ok(()));
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut c = SystemConfig::prefetch_default(1);
        c.sla_target = 1.5;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::prefetch_default(1);
        c.prefetch_interval = SimDuration::ZERO;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::prefetch_default(1);
        c.deadline = SimDuration::from_mins(30);
        assert!(c.validate().is_err(), "deadline < interval must fail");

        let mut c = SystemConfig::prefetch_default(1);
        c.max_replicas = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::prefetch_default(1);
        c.advance_discount = 0.0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::prefetch_default(1);
        c.budget_fraction = 0.0;
        assert!(c.validate().is_err());
        c.budget_fraction = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn defaults_select_the_unsharded_streams() {
        let c = SystemConfig::prefetch_default(1);
        assert_eq!(c.rng_stream, 0);
        assert_eq!(c.budget_fraction, 1.0);
        // Shard-specific knobs must not leak into report headers: all
        // shards of one run share the same config description.
        let mut sharded = c.clone();
        sharded.rng_stream = 3;
        sharded.budget_fraction = 0.25;
        assert_eq!(sharded.describe(), c.describe());
    }

    #[test]
    fn netem_config_feeds_validation_and_describe() {
        let mut c = SystemConfig::prefetch_default(1);
        let plain = c.describe();
        assert!(!plain.contains("netem"), "netem-off header stays legacy");

        c.netem = NetemConfig::flaky_cellular();
        assert_eq!(c.validate(), Ok(()));
        let d = c.describe();
        assert!(d.contains("netem=flaky"), "header: {d}");
        assert!(d.starts_with(&plain), "netem only appends: {d}");

        c.netem.profiles[0].failure_prob = 2.0;
        assert!(c.validate().is_err(), "invalid netem must fail validation");
    }

    #[test]
    fn marketplace_config_feeds_validation_and_describe() {
        use adpf_auction::{PriceFloors, PricingRule};
        let mut c = SystemConfig::prefetch_default(1);
        let plain = c.describe();
        assert!(
            !plain.contains("marketplace"),
            "marketplace-off header stays legacy"
        );

        c.marketplace = MarketplaceConfig::paced();
        c.marketplace.pricing = PricingRule::FirstPrice;
        c.marketplace.floors = PriceFloors::uniform(0.0005);
        assert_eq!(c.validate(), Ok(()));
        let d = c.describe();
        assert!(d.contains("marketplace=paced"), "header: {d}");
        assert!(d.contains("pricing=first"), "header: {d}");
        assert!(d.contains("floors=0.0005/0.0005"), "header: {d}");
        assert!(d.starts_with(&plain), "marketplace only appends: {d}");

        c.marketplace.gain = -1.0;
        assert!(
            c.validate().is_err(),
            "invalid marketplace must fail validation"
        );
    }

    #[test]
    fn scenario_config_feeds_validation_and_describe() {
        use crate::scenario::CellCapacity;

        let mut c = SystemConfig::prefetch_default(1);
        let plain = c.describe();
        assert!(
            !plain.contains("scenario"),
            "scenario-off header stays legacy"
        );

        c.scenario = ScenarioConfig::mixed(777);
        assert_eq!(c.validate(), Ok(()));
        let d = c.describe();
        assert!(d.contains("scenario=mixed classes=3"), "header: {d}");
        assert!(d.starts_with(&plain), "scenario only appends: {d}");

        // The shard-derived user offset must not leak into the header:
        // all shards of one run share one config description.
        let mut sharded = c.clone();
        sharded.scenario.user_offset = 120;
        assert_eq!(sharded.describe(), d);

        c.scenario.cell = CellCapacity::capped(4, 100, SimDuration::from_mins(1));
        assert!(c.describe().contains("cell=4x100"), "{}", c.describe());
        assert_eq!(c.validate(), Ok(()));

        c.scenario.classes[0].weight = f64::NAN;
        assert!(c.validate().is_err(), "invalid scenario must fail");
    }

    #[test]
    fn planner_kinds_build() {
        assert_eq!(PlannerKind::Greedy.build().name(), "greedy");
        assert_eq!(PlannerKind::FixedK(3).build().name(), "fixed-k");
        assert_eq!(PlannerKind::NoReplication.build().name(), "none");
        assert_eq!(PlannerKind::FixedK(3).label(), "fixed-3");
    }

    #[test]
    fn describe_mentions_key_knobs() {
        let d = SystemConfig::prefetch_default(1).describe();
        assert!(d.contains("prefetch"));
        assert!(d.contains("greedy"));
        assert!(SystemConfig::realtime(1).describe().contains("realtime"));
    }
}
