//! Per-client state: ad cache, pending reports, radio.

use adpf_auction::AdId;
use adpf_desim::{SimDuration, SimTime};
use adpf_energy::Radio;
use adpf_prediction::SlotPredictor;

/// One prefetched ad sitting in a client's cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedAd {
    /// Ledger id of the sold ad.
    pub id: AdId,
    /// Latest time the ad may still be displayed.
    pub deadline: SimTime,
    /// `true` when this client holds an overbooking replica rather than
    /// the primary copy. Replicas are insurance: they display only after
    /// all primaries, so they rarely burn a slot unless the origin client
    /// actually failed.
    pub replica: bool,
}

impl CachedAd {
    /// Display-priority key: all primaries (earliest deadline first)
    /// before any replica.
    fn priority(&self) -> (bool, SimTime) {
        (self.replica, self.deadline)
    }
}

/// The state of one simulated client device plus the server-side model the
/// ad server keeps for it (predictor, queue estimate, outbox).
pub struct ClientState {
    /// The client's radio modem (ad traffic only).
    pub radio: Radio,
    /// Prefetched ads available for display, kept sorted by display
    /// priority: primaries earliest-deadline-first, then replicas.
    pub cache: Vec<CachedAd>,
    /// Displays since the last sync, awaiting report.
    pub pending_reports: Vec<(AdId, SimTime)>,
    /// Slot times since the last sync (the predictor's observation).
    pub slot_times: Vec<SimTime>,
    /// Time of the last completed sync.
    pub last_sync: SimTime,
    /// Time of the next scheduled sync.
    pub next_sync: SimTime,
    /// Server-side demand model for this client.
    pub predictor: Box<dyn SlotPredictor>,
    /// Server-side assignments awaiting the client's next sync.
    pub outbox: Vec<CachedAd>,
    /// Server-side estimate of undisplayed ads assigned to this client
    /// (cache + outbox), used to discount availability.
    pub queued: u32,
    /// Whether a netem retry event is outstanding for this client. Any
    /// completed sync clears it, turning the stale retry into a no-op.
    pub retry_pending: bool,
}

impl ClientState {
    /// Creates a client with an idle radio and a cold predictor.
    pub fn new(radio: Radio, predictor: Box<dyn SlotPredictor>) -> Self {
        Self {
            radio,
            cache: Vec::new(),
            pending_reports: Vec::new(),
            slot_times: Vec::new(),
            last_sync: SimTime::ZERO,
            next_sync: SimTime::ZERO,
            predictor,
            outbox: Vec::new(),
            queued: 0,
            retry_pending: false,
        }
    }

    /// Inserts an ad into the cache keeping display-priority order.
    pub fn cache_insert(&mut self, ad: CachedAd) {
        let pos = self
            .cache
            .partition_point(|c| c.priority() <= ad.priority());
        self.cache.insert(pos, ad);
    }

    /// Number of cached primary (non-replica) ads — the quantity the
    /// server compares against predicted demand when topping up.
    pub fn primary_count(&self) -> usize {
        self.cache.iter().filter(|c| !c.replica).count()
    }

    /// Removes and returns the best displayable ad at `now`, purging
    /// expired entries on the way.
    ///
    /// Primaries display in deadline order. Replicas are last-resort
    /// insurance: one becomes eligible only inside the final
    /// `replica_window` before its deadline — by then the origin client has
    /// evidently failed to show it, and a cancellation would long since
    /// have arrived had it succeeded. Holding replicas back keeps them
    /// from burning slots as duplicate displays of ads already shown
    /// elsewhere.
    pub fn take_displayable(
        &mut self,
        now: SimTime,
        replica_window: SimDuration,
    ) -> Option<CachedAd> {
        // Expired entries are dropped silently; the server's expiry sweep
        // does the ledger accounting.
        self.cache.retain(|c| c.deadline >= now);
        let pos = self
            .cache
            .iter()
            .position(|c| !c.replica || c.deadline.saturating_since(now) <= replica_window)?;
        Some(self.cache.remove(pos))
    }

    /// Drops cache entries whose deadline has passed; returns how many.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.cache.len();
        self.cache.retain(|c| c.deadline >= now);
        before - self.cache.len()
    }

    /// Removes the given ads from cache and outbox (server-issued
    /// cancellations); returns how many entries were actually dropped.
    pub fn cancel(&mut self, ads: &[u64]) -> usize {
        let before = self.cache.len() + self.outbox.len();
        self.cache.retain(|c| !ads.contains(&c.id.0));
        self.outbox.retain(|c| !ads.contains(&c.id.0));
        before - self.cache.len() - self.outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpf_energy::profiles;
    use adpf_prediction::PredictorKind;

    /// Replica-eligibility window used across these tests.
    const W: SimDuration = SimDuration::from_hours(1);

    fn client() -> ClientState {
        ClientState::new(
            Radio::new(profiles::umts_3g()),
            PredictorKind::Zero.build(&[]),
        )
    }

    fn ad(id: u64, deadline_h: u64) -> CachedAd {
        CachedAd {
            id: AdId(id),
            deadline: SimTime::from_hours(deadline_h),
            replica: false,
        }
    }

    fn replica(id: u64, deadline_h: u64) -> CachedAd {
        CachedAd {
            replica: true,
            ..ad(id, deadline_h)
        }
    }

    #[test]
    fn cache_keeps_deadline_order() {
        let mut c = client();
        c.cache_insert(ad(1, 10));
        c.cache_insert(ad(2, 5));
        c.cache_insert(ad(3, 7));
        let order: Vec<u64> = c.cache.iter().map(|a| a.id.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn primaries_display_before_replicas() {
        let mut c = client();
        c.cache_insert(replica(1, 2)); // Urgent replica.
        c.cache_insert(ad(2, 9)); // Relaxed primary.
        c.cache_insert(replica(3, 5));
        c.cache_insert(ad(4, 6));
        let order: Vec<u64> = c.cache.iter().map(|a| a.id.0).collect();
        assert_eq!(order, vec![4, 2, 1, 3], "primaries EDF, then replicas EDF");
        assert_eq!(c.primary_count(), 2);
        let first = c.take_displayable(SimTime::from_hours(1), W).unwrap();
        assert!(!first.replica);
    }

    #[test]
    fn replicas_held_back_until_their_window() {
        let mut c = client();
        c.cache_insert(replica(1, 10));
        // Far from the deadline the replica is invisible.
        assert!(c.take_displayable(SimTime::from_hours(2), W).is_none());
        assert_eq!(c.cache.len(), 1, "the replica stays cached");
        // Inside the final window it becomes displayable.
        let got = c.take_displayable(SimTime::from_hours(9), W).unwrap();
        assert_eq!(got.id.0, 1);
    }

    #[test]
    fn take_displayable_is_edf_and_skips_expired() {
        let mut c = client();
        c.cache_insert(ad(1, 1)); // Will be expired.
        c.cache_insert(ad(2, 8));
        c.cache_insert(ad(3, 6));
        let got = c.take_displayable(SimTime::from_hours(2), W).unwrap();
        assert_eq!(got.id.0, 3, "earliest non-expired deadline first");
        assert_eq!(c.cache.len(), 1);
    }

    #[test]
    fn take_displayable_empty_cache() {
        let mut c = client();
        assert!(c.take_displayable(SimTime::ZERO, W).is_none());
        c.cache_insert(ad(1, 1));
        assert!(c.take_displayable(SimTime::from_hours(2), W).is_none());
        assert!(c.cache.is_empty());
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        let mut c = client();
        c.cache_insert(ad(1, 2));
        let got = c.take_displayable(SimTime::from_hours(2), W);
        assert!(got.is_some(), "an ad at exactly its deadline still shows");
    }

    #[test]
    fn purge_expired_counts() {
        let mut c = client();
        c.cache_insert(ad(1, 1));
        c.cache_insert(ad(2, 2));
        c.cache_insert(ad(3, 9));
        assert_eq!(c.purge_expired(SimTime::from_hours(3)), 2);
        assert_eq!(c.cache.len(), 1);
        assert_eq!(c.purge_expired(SimTime::from_hours(3)), 0);
    }

    #[test]
    fn cancel_hits_cache_and_outbox() {
        let mut c = client();
        c.cache_insert(ad(1, 5));
        c.cache_insert(ad(2, 6));
        c.outbox.push(ad(3, 7));
        let dropped = c.cancel(&[1, 3, 99]);
        assert_eq!(dropped, 2);
        assert_eq!(c.cache.len(), 1);
        assert!(c.outbox.is_empty());
    }
}
