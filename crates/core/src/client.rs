//! Per-client state: ad cache, pending reports, radio.
//!
//! Client state is stored in a struct-of-arrays [`ClientTable`] rather
//! than one struct per client: every field is a dense column indexed by
//! the client's `u32` id. The simulator's hot loops (candidate-pool
//! scans, sync scheduling) touch one or two scalar fields across many
//! clients, so the columnar layout keeps those scans contiguous in
//! cache, and the table's per-client heap footprint is a handful of
//! `Vec` headers instead of a boxed struct per user.

use adpf_auction::AdId;
use adpf_desim::{SimDuration, SimTime};
use adpf_energy::Radio;
use adpf_prediction::SlotPredictor;

/// One prefetched ad sitting in a client's cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedAd {
    /// Ledger id of the sold ad.
    pub id: AdId,
    /// Latest time the ad may still be displayed.
    pub deadline: SimTime,
    /// `true` when this client holds an overbooking replica rather than
    /// the primary copy. Replicas are insurance: they display only after
    /// all primaries, so they rarely burn a slot unless the origin client
    /// actually failed.
    pub replica: bool,
}

impl CachedAd {
    /// Display-priority key: all primaries (earliest deadline first)
    /// before any replica.
    fn priority(&self) -> (bool, SimTime) {
        (self.replica, self.deadline)
    }
}

/// One client's prefetched ads, kept sorted by display priority:
/// primaries earliest-deadline-first, then replicas.
#[derive(Debug, Default)]
pub struct AdCache(Vec<CachedAd>);

impl AdCache {
    /// Inserts an ad keeping display-priority order.
    pub fn insert(&mut self, ad: CachedAd) {
        let pos = self.0.partition_point(|c| c.priority() <= ad.priority());
        self.0.insert(pos, ad);
    }

    /// Number of cached ads (primaries and replicas).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The cached ads in display-priority order.
    pub fn iter(&self) -> impl Iterator<Item = &CachedAd> {
        self.0.iter()
    }

    /// Number of cached primary (non-replica) ads — the quantity the
    /// server compares against predicted demand when topping up.
    pub fn primary_count(&self) -> usize {
        self.0.iter().filter(|c| !c.replica).count()
    }

    /// Removes and returns the best displayable ad at `now`, purging
    /// expired entries on the way.
    ///
    /// Primaries display in deadline order. Replicas are last-resort
    /// insurance: one becomes eligible only inside the final
    /// `replica_window` before its deadline — by then the origin client
    /// has evidently failed to show it, and a cancellation would long
    /// since have arrived had it succeeded. Holding replicas back keeps
    /// them from burning slots as duplicate displays of ads already shown
    /// elsewhere.
    pub fn take_displayable(
        &mut self,
        now: SimTime,
        replica_window: SimDuration,
    ) -> Option<CachedAd> {
        // Expired entries are dropped silently; the server's expiry sweep
        // does the ledger accounting.
        self.0.retain(|c| c.deadline >= now);
        let pos = self
            .0
            .iter()
            .position(|c| !c.replica || c.deadline.saturating_since(now) <= replica_window)?;
        Some(self.0.remove(pos))
    }

    /// Drops cache entries whose deadline has passed; returns how many.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.0.len();
        self.0.retain(|c| c.deadline >= now);
        before - self.0.len()
    }

    /// Drops the given ads (server-issued cancellations); returns how
    /// many entries were actually removed.
    fn cancel(&mut self, ads: &[u64]) -> usize {
        let before = self.0.len();
        self.0.retain(|c| !ads.contains(&c.id.0));
        before - self.0.len()
    }
}

/// Struct-of-arrays state of every simulated client device plus the
/// server-side model the ad server keeps for each (predictor, queue
/// estimate, outbox). Column `i` across all vectors is client `i`.
#[derive(Default)]
pub struct ClientTable {
    /// The client's radio modem (ad traffic only).
    pub radio: Vec<Radio>,
    /// Prefetched ads available for display.
    pub cache: Vec<AdCache>,
    /// Displays since the last sync, awaiting report.
    pub pending_reports: Vec<Vec<(AdId, SimTime)>>,
    /// Slot times since the last sync (the predictor's observation).
    pub slot_times: Vec<Vec<SimTime>>,
    /// Time of the last completed sync.
    pub last_sync: Vec<SimTime>,
    /// Time of the next scheduled sync.
    pub next_sync: Vec<SimTime>,
    /// Server-side demand model for this client.
    pub predictor: Vec<Box<dyn SlotPredictor>>,
    /// Server-side assignments awaiting the client's next sync.
    pub outbox: Vec<Vec<CachedAd>>,
    /// Server-side estimate of undisplayed ads assigned to this client
    /// (cache + outbox), used to discount availability.
    pub queued: Vec<u32>,
    /// Whether a netem retry event is outstanding for this client. Any
    /// completed sync clears it, turning the stale retry into a no-op.
    pub retry_pending: Vec<bool>,
}

impl ClientTable {
    /// A table with room reserved for `n` clients.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            radio: Vec::with_capacity(n),
            cache: Vec::with_capacity(n),
            pending_reports: Vec::with_capacity(n),
            slot_times: Vec::with_capacity(n),
            last_sync: Vec::with_capacity(n),
            next_sync: Vec::with_capacity(n),
            predictor: Vec::with_capacity(n),
            outbox: Vec::with_capacity(n),
            queued: Vec::with_capacity(n),
            retry_pending: Vec::with_capacity(n),
        }
    }

    /// Appends a client with an idle radio and a cold predictor; returns
    /// its dense id.
    pub fn push(&mut self, radio: Radio, predictor: Box<dyn SlotPredictor>) -> usize {
        let id = self.radio.len();
        self.radio.push(radio);
        self.cache.push(AdCache::default());
        self.pending_reports.push(Vec::new());
        self.slot_times.push(Vec::new());
        self.last_sync.push(SimTime::ZERO);
        self.next_sync.push(SimTime::ZERO);
        self.predictor.push(predictor);
        self.outbox.push(Vec::new());
        self.queued.push(0);
        self.retry_pending.push(false);
        id
    }

    /// Number of clients in the table.
    pub fn len(&self) -> usize {
        self.radio.len()
    }

    /// Whether the table has no clients.
    pub fn is_empty(&self) -> bool {
        self.radio.is_empty()
    }

    /// Removes the given ads from client `i`'s cache and outbox
    /// (server-issued cancellations); returns how many entries were
    /// actually dropped.
    pub fn cancel(&mut self, i: usize, ads: &[u64]) -> usize {
        let outbox = &mut self.outbox[i];
        let before = outbox.len();
        outbox.retain(|c| !ads.contains(&c.id.0));
        self.cache[i].cancel(ads) + before - outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpf_energy::profiles;
    use adpf_prediction::PredictorKind;

    /// Replica-eligibility window used across these tests.
    const W: SimDuration = SimDuration::from_hours(1);

    fn ad(id: u64, deadline_h: u64) -> CachedAd {
        CachedAd {
            id: AdId(id),
            deadline: SimTime::from_hours(deadline_h),
            replica: false,
        }
    }

    fn replica(id: u64, deadline_h: u64) -> CachedAd {
        CachedAd {
            replica: true,
            ..ad(id, deadline_h)
        }
    }

    #[test]
    fn cache_keeps_deadline_order() {
        let mut c = AdCache::default();
        c.insert(ad(1, 10));
        c.insert(ad(2, 5));
        c.insert(ad(3, 7));
        let order: Vec<u64> = c.iter().map(|a| a.id.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn primaries_display_before_replicas() {
        let mut c = AdCache::default();
        c.insert(replica(1, 2)); // Urgent replica.
        c.insert(ad(2, 9)); // Relaxed primary.
        c.insert(replica(3, 5));
        c.insert(ad(4, 6));
        let order: Vec<u64> = c.iter().map(|a| a.id.0).collect();
        assert_eq!(order, vec![4, 2, 1, 3], "primaries EDF, then replicas EDF");
        assert_eq!(c.primary_count(), 2);
        let first = c.take_displayable(SimTime::from_hours(1), W).unwrap();
        assert!(!first.replica);
    }

    #[test]
    fn replicas_held_back_until_their_window() {
        let mut c = AdCache::default();
        c.insert(replica(1, 10));
        // Far from the deadline the replica is invisible.
        assert!(c.take_displayable(SimTime::from_hours(2), W).is_none());
        assert_eq!(c.len(), 1, "the replica stays cached");
        // Inside the final window it becomes displayable.
        let got = c.take_displayable(SimTime::from_hours(9), W).unwrap();
        assert_eq!(got.id.0, 1);
    }

    #[test]
    fn take_displayable_is_edf_and_skips_expired() {
        let mut c = AdCache::default();
        c.insert(ad(1, 1)); // Will be expired.
        c.insert(ad(2, 8));
        c.insert(ad(3, 6));
        let got = c.take_displayable(SimTime::from_hours(2), W).unwrap();
        assert_eq!(got.id.0, 3, "earliest non-expired deadline first");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn take_displayable_empty_cache() {
        let mut c = AdCache::default();
        assert!(c.take_displayable(SimTime::ZERO, W).is_none());
        c.insert(ad(1, 1));
        assert!(c.take_displayable(SimTime::from_hours(2), W).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        let mut c = AdCache::default();
        c.insert(ad(1, 2));
        let got = c.take_displayable(SimTime::from_hours(2), W);
        assert!(got.is_some(), "an ad at exactly its deadline still shows");
    }

    #[test]
    fn purge_expired_counts() {
        let mut c = AdCache::default();
        c.insert(ad(1, 1));
        c.insert(ad(2, 2));
        c.insert(ad(3, 9));
        assert_eq!(c.purge_expired(SimTime::from_hours(3)), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.purge_expired(SimTime::from_hours(3)), 0);
    }

    #[test]
    fn table_cancel_hits_cache_and_outbox() {
        let mut t = ClientTable::default();
        let i = t.push(
            Radio::new(profiles::umts_3g()),
            PredictorKind::Zero.build(&[]),
        );
        t.cache[i].insert(ad(1, 5));
        t.cache[i].insert(ad(2, 6));
        t.outbox[i].push(ad(3, 7));
        let dropped = t.cancel(i, &[1, 3, 99]);
        assert_eq!(dropped, 2);
        assert_eq!(t.cache[i].len(), 1);
        assert!(t.outbox[i].is_empty());
    }

    #[test]
    fn table_columns_stay_aligned() {
        let mut t = ClientTable::with_capacity(2);
        for _ in 0..2 {
            t.push(
                Radio::new(profiles::umts_3g()),
                PredictorKind::Zero.build(&[]),
            );
        }
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        for len in [
            t.cache.len(),
            t.pending_reports.len(),
            t.slot_times.len(),
            t.last_sync.len(),
            t.next_sync.len(),
            t.predictor.len(),
            t.outbox.len(),
            t.queued.len(),
            t.retry_pending.len(),
        ] {
            assert_eq!(len, 2);
        }
    }
}
