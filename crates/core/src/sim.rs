//! The end-to-end discrete-event simulation.
//!
//! Since the serving split, the per-client decision logic lives in
//! [`crate::engine::ClientEngine`]; this module keeps what is specific
//! to *batch replay*: the precomputed slot stream, the shard derivation
//! and work-stealing scheduler, and the shard-ordered merge. The batch
//! [`Simulator`] is now one client of the engine — the online server in
//! `adpf-serve` is the other — and both produce bit-identical reports
//! for the same `(config, slot stream)`.

use std::sync::Mutex;

use adpf_auction::{Campaign, CampaignCatalog, CampaignType};
use adpf_obs::{MetricRegistry, ObsSink};
use adpf_traces::{shard_ranges, AdSlot, Trace, UserSlots};

use crate::config::SystemConfig;
use crate::engine::{ClientEngine, EngineScratch, SlotFeed};
use crate::report::SimReport;
use adpf_desim::WorkQueue;

/// Minimum number of logical shards used by [`Simulator::run_parallel`]
/// (the historical fixed shard count, kept as the floor so every
/// population of up to `DEFAULT_SHARDS × USERS_PER_SHARD` users keeps the
/// report hashes recorded before shard derivation existed).
///
/// The shard count is derived from the population size (then clamped to
/// it) rather than from the thread count: shards are the unit of
/// simulation semantics (candidate pools, RNG streams, budget shares)
/// while threads are only a scheduling choice, so the same trace and seed
/// produce bit-identical merged reports at any thread count.
pub const DEFAULT_SHARDS: usize = 8;

/// Preferred upper bound on derived shard counts. Caps per-shard setup
/// overhead (each shard builds its own exchange and client table) and
/// keeps the smallest shard large enough for replica candidate pools to
/// matter. It is a *soft* cap: once honoring it would put more than
/// [`MAX_USERS_PER_SHARD`] users in one shard, the count grows past it —
/// see [`default_shards`].
pub const MAX_SHARDS: usize = 64;

/// Target users per shard when deriving the shard count. At the floor of
/// [`DEFAULT_SHARDS`] shards this keeps every population up to 320 users
/// — all test and quick-bench populations — at exactly the historical 8
/// shards (hash-stable), while production-scale populations get enough
/// shards that an 8-thread run is not starved for work (the paper's
/// 1,693-user iPhone population derives 43).
pub const USERS_PER_SHARD: usize = 40;

/// Hard ceiling on users per derived shard. A shard is the streaming
/// pipeline's unit of residency — its sub-trace, client table, and slot
/// stream are all alive at once — so this constant *is* the peak-memory
/// bound of a streaming run: O(`MAX_USERS_PER_SHARD` × threads) users
/// resident, regardless of population size. A million-user run derives
/// ~489 shards of ≤2,048 users instead of being stranded at
/// [`MAX_SHARDS`] shards of ~15,600.
pub const MAX_USERS_PER_SHARD: usize = 2_048;

/// Number of logical shards [`Simulator::run_parallel`] uses for a
/// population of `num_users`: one shard per [`USERS_PER_SHARD`] users,
/// clamped to `[DEFAULT_SHARDS, cap]` where the cap is [`MAX_SHARDS`]
/// raised, when necessary, to whatever keeps every shard at or below
/// [`MAX_USERS_PER_SHARD`] users.
///
/// The derivation depends only on the population size — deliberately
/// never on thread count or host — so the merged report stays a
/// deterministic function of `(config, trace)` at every thread count
/// (the invariant the equivalence suites pin). Threads are still served:
/// any population big enough to want more parallelism than
/// [`MAX_SHARDS`] shards already derives at least 64 of them, which
/// saturates every realistic worker count, and the work-stealing
/// scheduler keeps all workers busy regardless of the shard/thread
/// ratio.
pub fn default_shards(num_users: u32) -> usize {
    let users = num_users as usize;
    let cap = MAX_SHARDS.max(users.div_ceil(MAX_USERS_PER_SHARD));
    users.div_ceil(USERS_PER_SHARD).clamp(DEFAULT_SHARDS, cap)
}

/// Read-only state shared by every shard of one sharded run.
///
/// Everything here is a deterministic function of the *master* config
/// alone (never of `rng_stream` or `budget_fraction`, the two fields that
/// differ between shard configs), so building it once and handing each
/// shard a copy is bit-identical to each shard rebuilding it — that is
/// the invariant that lets per-shard setup be hoisted without touching
/// report hashes. Today the expensive shared piece is the campaign
/// catalog (per-campaign bid model synthesis); the other per-shard setup
/// (`AvailabilityCache` priors, netem config parsing) was measured to be
/// trivial and intentionally stays inline.
pub struct ShardContext {
    pub(crate) campaigns: Vec<Campaign>,
    /// Marketplace campaign-type assignment, index-aligned with
    /// `campaigns`. A pure function of the catalog order (see
    /// `MarketplaceConfig::assign_types`), so every shard sees the
    /// identical assignment — pacing-controller *placement* is shared
    /// state, while controller *trajectories* live per shard in each
    /// shard's exchange.
    pub(crate) campaign_types: Vec<CampaignType>,
}

impl ShardContext {
    /// Builds the shared context for one run of `config`.
    pub fn new(config: &SystemConfig) -> Self {
        let campaigns = CampaignCatalog::synthetic_with_targeting(
            config.campaigns,
            config.seed,
            config.contextual_fraction,
            config.contextual_premium,
        )
        .into_campaigns();
        let campaign_types = config.marketplace.assign_types(&campaigns);
        Self {
            campaigns,
            campaign_types,
        }
    }
}

/// Where a sharded run's per-shard traces come from.
///
/// `Materialized` is the classic pipeline: the full trace exists and is
/// split up front (all shard sub-traces alive simultaneously).
/// `Streaming` hands each worker a generator instead of a `&Trace`: a
/// shard's sub-trace is produced on the worker thread right before
/// simulation and dropped right after, so peak residency is bounded by
/// the number of *workers*, not the number of shards or users. Both
/// variants cut the population along [`shard_ranges`], which is what
/// keeps their merged reports bit-identical.
#[derive(Clone, Copy)]
enum ShardSupply<'a> {
    /// The full trace, split `n_shards` ways up front.
    Materialized(&'a Trace, usize),
    /// Lazy per-shard generation over an `n_shards`-way split of a
    /// `num_users` population.
    Streaming {
        num_users: u32,
        n_shards: usize,
        make: &'a (dyn Fn(usize) -> Trace + Sync),
    },
}

impl ShardSupply<'_> {
    fn num_users(&self) -> u32 {
        match self {
            ShardSupply::Materialized(trace, _) => trace.num_users(),
            ShardSupply::Streaming { num_users, .. } => *num_users,
        }
    }

    fn n_shards(&self) -> usize {
        match self {
            ShardSupply::Materialized(_, n) | ShardSupply::Streaming { n_shards: n, .. } => *n,
        }
    }
}

/// One configured simulation over one trace: a [`ClientEngine`] plus the
/// precomputed slot stream that drives it.
///
/// Construction precomputes the slot stream and builds per-client state;
/// [`Simulator::run`] consumes the simulator and produces a
/// [`SimReport`]. Runs are deterministic: the same `(config, trace)` pair
/// always yields the same report.
pub struct Simulator {
    engine: ClientEngine,
    slots: Vec<AdSlot>,
}

impl Simulator {
    /// Builds a simulator for `config` over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails — configurations are built in
    /// code, so an invalid one is a programming error.
    pub fn new(config: SystemConfig, trace: &Trace) -> Self {
        let ctx = ShardContext::new(&config);
        Self::with_context(config, trace, &ctx)
    }

    /// [`Simulator::new`] against a prebuilt [`ShardContext`].
    ///
    /// Sharded runs build the context once and construct every shard's
    /// simulator from it; because the context depends only on fields the
    /// shard configs share, this is bit-identical to `new` on each shard
    /// config.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn with_context(config: SystemConfig, trace: &Trace, ctx: &ShardContext) -> Self {
        Self::with_context_scratch(config, trace, ctx, EngineScratch::default())
    }

    /// [`Simulator::with_context`], recycling a previous engine's
    /// allocation set (see [`EngineScratch`]). Behaviorally identical to
    /// building from a fresh scratch set.
    pub fn with_context_scratch(
        config: SystemConfig,
        trace: &Trace,
        ctx: &ShardContext,
        scratch: EngineScratch,
    ) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid SystemConfig: {reason}");
        }
        let slots = trace.ad_slots(config.ad_refresh);
        // Both views of the slot stream come from the one derivation
        // above; deriving it twice used to double trace-setup time. The
        // per-user view is a CSR (offsets + one flat array) over the
        // same stream: one allocation for the population, not one per
        // user.
        let slots_by_user = UserSlots::from_slots(&slots, trace.num_users());
        let engine = ClientEngine::with_scratch(
            config,
            &slots_by_user,
            trace.horizon(),
            trace.days(),
            ctx,
            scratch,
        );
        Self { engine, slots }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> SimReport {
        self.run_observed().0
    }

    /// [`Simulator::run`] that also returns the run's metric registry.
    ///
    /// The registry is maintained unconditionally (its contents are pure
    /// functions of simulated events), so this returns exactly the same
    /// report as `run` — observability can be exported or dropped, never
    /// felt.
    pub fn run_observed(self) -> (SimReport, MetricRegistry) {
        let (report, reg, _) = self.run_observed_reclaim();
        (report, reg)
    }

    /// [`Simulator::run_observed`], additionally handing back the
    /// engine's allocation set so the worker can reuse it for its next
    /// shard.
    pub fn run_observed_reclaim(self) -> (SimReport, MetricRegistry, EngineScratch) {
        let Simulator { mut engine, slots } = self;
        engine.drive(&mut SlotFeed::new(&slots));
        engine.finalize_reclaim()
    }

    /// Runs `config` over `trace` as [`default_shards`]`(users)`
    /// independent user shards scheduled across `threads` OS threads, and
    /// merges the per-shard reports.
    ///
    /// The merged report is a deterministic function of `(config, trace)`
    /// alone: the shard count derives from the population size (clamped
    /// to it), each shard draws from its own `(seed, shard)` RNG stream
    /// and budget share, and reports merge in shard order. Changing
    /// `threads` changes only wall-clock time, never the result. Note
    /// that the *sharded* result differs from [`Simulator::run`] on the
    /// unsharded trace whenever more than one shard is used — replication
    /// candidates are confined to a shard — which is the price of
    /// embarrassingly parallel execution.
    pub fn run_parallel(config: &SystemConfig, trace: &Trace, threads: usize) -> SimReport {
        Self::run_sharded(config, trace, default_shards(trace.num_users()), threads)
    }

    /// [`Simulator::run_parallel`] with an explicit logical shard count.
    ///
    /// `n_shards` is clamped to the population size; `n_shards = 1`
    /// reproduces [`Simulator::run`] bit-for-bit (stream 0, full
    /// budgets, the whole trace). The report is independent of `threads`.
    pub fn run_sharded(
        config: &SystemConfig,
        trace: &Trace,
        n_shards: usize,
        threads: usize,
    ) -> SimReport {
        Self::run_sharded_with_hook(config, trace, n_shards, threads, |_| {})
    }

    /// [`Simulator::run_sharded`] with a per-shard hook, called with the
    /// shard index on the worker thread immediately before that shard
    /// simulates.
    ///
    /// This is a scheduling-perturbation seam for the determinism tests:
    /// a hook that stalls one shard forces every completion interleaving
    /// the work-stealing loop can produce, and the merged report must not
    /// notice. The hook cannot observe or influence shard semantics.
    pub fn run_sharded_with_hook(
        config: &SystemConfig,
        trace: &Trace,
        n_shards: usize,
        threads: usize,
        shard_hook: impl Fn(usize) + Sync,
    ) -> SimReport {
        let supply = ShardSupply::Materialized(trace, n_shards);
        Self::run_sharded_inner(config, supply, threads, shard_hook, false).0
    }

    /// [`Simulator::run_parallel`] plus the merged metric registry.
    ///
    /// The report is bit-identical to [`Simulator::run_parallel`] on the
    /// same inputs — observation adds wall-clock `phase.*` timers to the
    /// registry but never touches simulation state. The registry merges
    /// per-shard registries in shard order, mirroring the report merge.
    pub fn run_parallel_observed(
        config: &SystemConfig,
        trace: &Trace,
        threads: usize,
    ) -> (SimReport, MetricRegistry) {
        Self::run_sharded_observed(config, trace, default_shards(trace.num_users()), threads)
    }

    /// [`Simulator::run_sharded`] plus the merged metric registry.
    pub fn run_sharded_observed(
        config: &SystemConfig,
        trace: &Trace,
        n_shards: usize,
        threads: usize,
    ) -> (SimReport, MetricRegistry) {
        let supply = ShardSupply::Materialized(trace, n_shards);
        let (report, reg) = Self::run_sharded_inner(config, supply, threads, |_| {}, true);
        (report, reg.expect("observed run always yields a registry"))
    }

    /// Streaming, bounded-memory counterpart of
    /// [`Simulator::run_sharded`]: no global trace is ever materialized.
    ///
    /// `make_shard(i)` must return the sub-trace of shard `i` of an
    /// `n_shards`-way balanced split of a `num_users` population —
    /// normally `PopulationConfig::generate_shard(i, n_shards)`, which is
    /// byte-identical to `generate().split_users(n_shards)[i]`. Workers
    /// claim shard indices from the work-stealing queue, generate the
    /// shard's user range on the worker thread, simulate it, and drop the
    /// sub-trace before claiming the next index — so at most `threads`
    /// shards are resident at once and peak memory is
    /// O(users-per-shard × threads) instead of O(population).
    ///
    /// The merged report is **bit-identical** to
    /// [`Simulator::run_sharded`] on the materialized trace: shard
    /// boundaries come from the same [`shard_ranges`] formula, per-shard
    /// configs (RNG stream, budget share) depend only on the range sizes,
    /// and reports merge in shard order. As with the materialized path,
    /// `threads` never changes the result.
    pub fn run_streaming(
        config: &SystemConfig,
        num_users: u32,
        n_shards: usize,
        threads: usize,
        make_shard: impl Fn(usize) -> Trace + Sync,
    ) -> SimReport {
        let supply = ShardSupply::Streaming {
            num_users,
            n_shards,
            make: &make_shard,
        };
        Self::run_sharded_inner(config, supply, threads, |_| {}, false).0
    }

    /// [`Simulator::run_streaming`] plus the merged metric registry.
    ///
    /// Alongside the usual `phase.*` spans the registry carries
    /// `phase.trace_gen` (per-shard generation time) and, where the host
    /// exposes it, the `proc.peak_rss_kb` high-water gauge — both outside
    /// the deterministic snapshot, so observing the bound cannot perturb
    /// equivalence checks.
    pub fn run_streaming_observed(
        config: &SystemConfig,
        num_users: u32,
        n_shards: usize,
        threads: usize,
        make_shard: impl Fn(usize) -> Trace + Sync,
    ) -> (SimReport, MetricRegistry) {
        let supply = ShardSupply::Streaming {
            num_users,
            n_shards,
            make: &make_shard,
        };
        let (report, reg) = Self::run_sharded_inner(config, supply, threads, |_| {}, true);
        (report, reg.expect("observed run always yields a registry"))
    }

    fn run_sharded_inner(
        config: &SystemConfig,
        supply: ShardSupply<'_>,
        threads: usize,
        shard_hook: impl Fn(usize) + Sync,
        observed: bool,
    ) -> (SimReport, Option<MetricRegistry>) {
        let total_users = supply.num_users();
        // Both supplies cut the population along the same shard_ranges
        // boundaries, so everything derived from shard *sizes* (budget
        // shares, RNG streams, merge order) is identical between them —
        // the heart of the streaming/materialized equivalence.
        let ranges = shard_ranges(total_users, supply.n_shards());
        let n = ranges.len();
        let shards: Vec<Trace> = match supply {
            ShardSupply::Materialized(trace, n_shards) => {
                let split = trace.split_users(n_shards);
                debug_assert_eq!(split.len(), n);
                split
            }
            ShardSupply::Streaming { .. } => Vec::new(),
        };
        let threads = threads.clamp(1, n);
        let configs: Vec<SystemConfig> = shard_configs(config, total_users, &ranges);

        // Shard setup identical across shards is built once and shared;
        // see `ShardContext` for why this cannot change results.
        let ctx = ShardContext::new(config);

        // Work stealing: workers claim shard indices from an atomic
        // queue, so a worker that drains its cheap shards immediately
        // picks up outstanding ones instead of idling behind a static
        // stride assignment (shard costs are skewed by heavy-tailed
        // users). Each result lands in its shard's slot; the claim order
        // and thread count are invisible after the shard-ordered merge.
        let queue = WorkQueue::new(n);
        type ShardResult = (SimReport, MetricRegistry);
        let results: Vec<Mutex<Option<ShardResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One scratch set per worker, threaded through every
                    // shard this worker simulates: the queue ring and
                    // engine scratch vectors are allocated once per
                    // thread instead of once per shard.
                    let mut scratch = EngineScratch::default();
                    while let Some(i) = queue.claim() {
                        shard_hook(i);
                        // Streaming: materialize only this shard's user
                        // range, on this worker, for the lifetime of this
                        // iteration — the bounded-memory property.
                        let gen_start = observed.then(std::time::Instant::now);
                        let generated = match supply {
                            ShardSupply::Materialized(..) => None,
                            ShardSupply::Streaming { make, .. } => Some(make(i)),
                        };
                        let gen_ns = gen_start.map(|t0| t0.elapsed().as_nanos() as u64);
                        let shard_trace: &Trace = match &generated {
                            Some(t) => t,
                            None => &shards[i],
                        };
                        debug_assert_eq!(
                            shard_trace.num_users(),
                            ranges[i].end - ranges[i].start,
                            "shard source disagrees with shard_ranges on shard {i}"
                        );
                        // Wall-clock spans are recorded only in observed
                        // mode; they are Time metrics, which never feed
                        // report hashes or determinism checks.
                        let setup_start = observed.then(std::time::Instant::now);
                        let sim = Simulator::with_context_scratch(
                            configs[i].clone(),
                            shard_trace,
                            &ctx,
                            std::mem::take(&mut scratch),
                        );
                        if let Some(ns) = gen_ns.filter(|_| generated.is_some()) {
                            sim.engine.obs.add_time_ns("phase.trace_gen", ns);
                        }
                        if let Some(t0) = setup_start {
                            sim.engine
                                .obs
                                .add_time_ns("phase.shard_setup", t0.elapsed().as_nanos() as u64);
                        }
                        let loop_start = observed.then(std::time::Instant::now);
                        let (report, reg, reclaimed) = sim.run_observed_reclaim();
                        scratch = reclaimed;
                        if let Some(t0) = loop_start {
                            reg.add_time_ns("phase.event_loop", t0.elapsed().as_nanos() as u64);
                        }
                        *results[i].lock().expect("shard slot poisoned") = Some((report, reg));
                    }
                });
            }
        });

        // Merge strictly in shard order: user ranges concatenate back to
        // the original indexing and the floating-point summation order is
        // fixed regardless of which thread finished first. The registry
        // merge follows the same shard order, so merged histograms and
        // counters are as deterministic as the report itself.
        let merge_start = observed.then(std::time::Instant::now);
        let mut merged = SimReport::empty();
        merged.reserve_users(total_users as usize);
        let mut merged_reg = observed.then(MetricRegistry::new);
        for slot in results {
            let (report, reg) = slot
                .into_inner()
                .expect("shard slot poisoned")
                .expect("every shard reports");
            merged.merge(&report);
            if let Some(m) = merged_reg.as_mut() {
                m.merge(&reg);
            }
        }
        if let (Some(m), Some(t0)) = (merged_reg.as_ref(), merge_start) {
            m.add_time_ns("phase.merge", t0.elapsed().as_nanos() as u64);
        }
        if let Some(m) = merged_reg.as_ref() {
            // The pipeline's memory high-water mark. A host fact, not a
            // simulation outcome: it lives in the proc.* namespace, which
            // deterministic snapshots exclude.
            adpf_obs::record_peak_rss(m);
        }
        (merged, merged_reg)
    }
}

/// Derives the per-shard configs of a sharded run over `ranges` (the
/// [`shard_ranges`] split of a `total_users` population): shard `i` gets
/// RNG stream `i` and the budget share proportional to its user count.
///
/// Shared with `adpf-serve`, whose sharded server must derive the exact
/// same configs for its per-shard engines to merge bit-identically with
/// the batch pipeline.
pub fn shard_configs(
    config: &SystemConfig,
    total_users: u32,
    ranges: &[std::ops::Range<u32>],
) -> Vec<SystemConfig> {
    ranges
        .iter()
        .enumerate()
        .map(|(i, range)| {
            let mut c = config.clone();
            c.rng_stream = i as u64;
            c.budget_fraction = if total_users == 0 {
                1.0
            } else {
                (range.end - range.start) as f64 / total_users as f64
            };
            // Scenario class/region assignment is keyed on the *global*
            // user id, so each shard must know where its local ids start.
            c.scenario.user_offset = range.start;
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerKind;
    use adpf_desim::SimDuration;
    use adpf_prediction::PredictorKind;
    use adpf_traces::PopulationConfig;

    fn trace() -> Trace {
        PopulationConfig::small_test(42).generate()
    }

    #[test]
    fn realtime_mode_fetches_every_slot() {
        let t = trace();
        let r = Simulator::new(SystemConfig::realtime(1), &t).run();
        assert_eq!(r.slots, r.realtime_fetches);
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.syncs, 0);
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert!(r.energy.total_j() > 0.0);
        assert_eq!(r.sla_violation_rate(), 0.0, "real-time never violates");
        assert_eq!(r.ledger.duplicates, 0);
    }

    #[test]
    fn prefetch_saves_energy_with_small_revenue_cost() {
        let t = trace();
        let rt = Simulator::new(SystemConfig::realtime(1), &t).run();
        let pf = Simulator::new(SystemConfig::prefetch_default(1), &t).run();
        // The paper's headline: >50% ad-energy reduction with negligible
        // revenue loss and SLA violation rate. The thresholds below leave
        // headroom for the short 7-day test trace (the full 28-day
        // populations predict better).
        let savings = pf.energy_savings_vs(&rt);
        assert!(
            savings > 0.45,
            "expected ~50% energy savings, got {:.1}% \nrt: {}\npf: {}",
            savings * 100.0,
            rt.summary(),
            pf.summary()
        );
        let loss = pf.revenue_loss_vs(&rt);
        assert!(
            loss < 0.05,
            "revenue loss should be negligible, got {:.1}%\nrt: {}\npf: {}",
            loss * 100.0,
            rt.summary(),
            pf.summary()
        );
        assert!(
            pf.cache_hit_rate() > 0.5,
            "hit rate {}",
            pf.cache_hit_rate()
        );
        assert!(
            pf.sla_violation_rate() < 0.08,
            "sla {}",
            pf.sla_violation_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let t = trace();
        let a = Simulator::new(SystemConfig::prefetch_default(9), &t).run();
        let b = Simulator::new(SystemConfig::prefetch_default(9), &t).run();
        assert_eq!(a, b);
    }

    #[test]
    fn overbooking_reduces_sla_violations_versus_single_copy() {
        let t = trace();
        let mut single = SystemConfig::prefetch_default(3);
        single.planner = PlannerKind::NoReplication;
        let mut greedy = SystemConfig::prefetch_default(3);
        greedy.planner = PlannerKind::Greedy;
        let rs = Simulator::new(single, &t).run();
        let rg = Simulator::new(greedy, &t).run();
        assert!(
            rg.sla_violation_rate() <= rs.sla_violation_rate(),
            "greedy {} vs single {}",
            rg.sla_violation_rate(),
            rs.sla_violation_rate()
        );
        assert!(rg.ledger.duplicates >= rs.ledger.duplicates);
    }

    #[test]
    fn oracle_predictor_outperforms_zero() {
        let t = trace();
        let mut oracle = SystemConfig::prefetch_default(5);
        oracle.predictor = PredictorKind::Oracle;
        let mut zero = SystemConfig::prefetch_default(5);
        zero.predictor = PredictorKind::Zero;
        let ro = Simulator::new(oracle, &t).run();
        let rz = Simulator::new(zero, &t).run();
        assert!(ro.cache_hit_rate() > rz.cache_hit_rate());
        // With a zero predictor nothing is pre-sold.
        assert_eq!(rz.ledger.sold, rz.realtime_fetches);
        assert_eq!(rz.cache_hits, 0);
    }

    #[test]
    fn without_fallback_misses_go_unfilled() {
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(7);
        cfg.realtime_fallback = false;
        let r = Simulator::new(cfg, &t).run();
        assert_eq!(r.realtime_fetches, 0);
        assert_eq!(r.impressions, r.cache_hits);
        assert!(r.unfilled > 0);
        assert_eq!(r.impressions + r.unfilled, r.slots);
    }

    #[test]
    fn accounting_identities_hold() {
        let t = trace();
        let r = Simulator::new(SystemConfig::prefetch_default(11), &t).run();
        let lt = r.ledger;
        assert_eq!(lt.billed + lt.expired, lt.sold, "every sold ad settles");
        assert!((lt.revenue + lt.refunded - lt.sold_value).abs() < 1e-9);
        assert!(r.impressions <= r.slots);
        assert!(r.cache_hits + r.realtime_fetches >= r.impressions);
    }

    #[test]
    fn sync_dropout_degrades_gracefully() {
        let t = trace();
        let healthy = Simulator::new(SystemConfig::prefetch_default(17), &t).run();
        let mut cfg = SystemConfig::prefetch_default(17);
        cfg.sync_dropout = 0.5;
        let flaky = Simulator::new(cfg, &t).run();
        assert!(flaky.syncs_dropped > 0, "faults must actually fire");
        // The system still settles every slot and every sold ad.
        assert_eq!(flaky.impressions + flaky.unfilled, flaky.slots);
        assert_eq!(
            flaky.ledger.billed + flaky.ledger.expired,
            flaky.ledger.sold
        );
        // Losing half the periodic syncs hurts but does not collapse the
        // system: piggybacked syncs carry the load.
        assert!(
            flaky.cache_hit_rate() > healthy.cache_hit_rate() * 0.5,
            "flaky {} vs healthy {}",
            flaky.cache_hit_rate(),
            healthy.cache_hit_rate()
        );
        assert!(flaky.sla_violation_rate() < 0.25);
    }

    #[test]
    fn single_shard_run_matches_sequential_run() {
        // One shard means stream 0, full budgets, and the whole trace:
        // the sharded path must reproduce `run()` bit-for-bit.
        let t = trace();
        let sequential = Simulator::new(SystemConfig::prefetch_default(9), &t).run();
        let sharded = Simulator::run_sharded(&SystemConfig::prefetch_default(9), &t, 1, 1);
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn sharded_report_is_independent_of_thread_count() {
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let one = Simulator::run_parallel(&cfg, &t, 1);
        let three = Simulator::run_parallel(&cfg, &t, 3);
        let eight = Simulator::run_parallel(&cfg, &t, 8);
        assert_eq!(one, three);
        assert_eq!(one, eight);
    }

    #[test]
    fn sharded_run_covers_the_whole_population() {
        let t = trace();
        let cfg = SystemConfig::prefetch_default(4);
        let r = Simulator::run_parallel(&cfg, &t, 2);
        assert_eq!(r.users, t.num_users());
        assert_eq!(r.per_user_energy_j.len(), t.num_users() as usize);
        assert_eq!(r.days, t.days());
        assert_eq!(
            r.slots,
            t.ad_slots(cfg.ad_refresh).len() as u64,
            "every slot is simulated in exactly one shard"
        );
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert_eq!(r.ledger.billed + r.ledger.expired, r.ledger.sold);
    }

    #[test]
    fn sharded_prefetch_still_saves_energy() {
        let t = trace();
        let rt = Simulator::run_parallel(&SystemConfig::realtime(1), &t, 2);
        let pf = Simulator::run_parallel(&SystemConfig::prefetch_default(1), &t, 2);
        assert!(
            pf.energy_savings_vs(&rt) > 0.40,
            "sharding must not destroy the paper's headline effect: {}",
            pf.summary()
        );
    }

    #[test]
    fn rng_streams_decorrelate_shard_randomness() {
        // Two configs differing only in stream draw different bid
        // randomness, while stream 0 reproduces the legacy derivation.
        let t = trace();
        let base = SystemConfig::prefetch_default(9);
        let mut streamed = base.clone();
        streamed.rng_stream = 1;
        let r0 = Simulator::new(base.clone(), &t).run();
        let r0_again = Simulator::new(base, &t).run();
        let r1 = Simulator::new(streamed, &t).run();
        assert_eq!(r0, r0_again);
        assert_ne!(
            r0.ledger.revenue, r1.ledger.revenue,
            "distinct streams should produce distinct auction outcomes"
        );
    }

    #[test]
    fn netem_disabled_runs_leave_all_netem_counters_zero() {
        let t = trace();
        let r = Simulator::new(SystemConfig::prefetch_default(1), &t).run();
        assert_eq!(r.netem, crate::report::NetemCounters::default());
        assert!(!r.summary().contains("netem"));
    }

    #[test]
    fn netem_flaky_link_fails_syncs_and_retries_recover_some() {
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(21);
        cfg.netem = adpf_netem::NetemConfig::flaky_cellular();
        let r = Simulator::new(cfg, &t).run();
        assert!(r.netem.sync_failures > 0, "flaky link must bite: {r:?}");
        assert!(r.netem.retries_scheduled > 0);
        assert!(
            r.netem.retries_succeeded > 0,
            "some retries must get through: {:?}",
            r.netem
        );
        assert!(r.netem.retries_succeeded <= r.netem.retries_scheduled);
        // Failures never break the books.
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert_eq!(r.ledger.billed + r.ledger.expired, r.ledger.sold);
        assert!(r.summary().contains("netem"));
    }

    #[test]
    fn netem_runs_are_deterministic() {
        let t = trace();
        let mk = || {
            let mut cfg = SystemConfig::prefetch_default(23);
            cfg.netem = adpf_netem::NetemConfig::degraded();
            cfg
        };
        let a = Simulator::new(mk(), &t).run();
        let b = Simulator::new(mk(), &t).run();
        assert_eq!(a, b);
    }

    #[test]
    fn netem_gates_realtime_mode_too() {
        let t = trace();
        let mut cfg = SystemConfig::realtime(25);
        cfg.netem = adpf_netem::NetemConfig::degraded();
        let r = Simulator::new(cfg, &t).run();
        assert!(r.netem.realtime_failures > 0);
        // A failed fetch leaves its slot unfilled, never half-billed.
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert!(r.unfilled >= r.netem.realtime_failures);
        assert_eq!(
            r.realtime_fetches + r.netem.realtime_failures,
            r.slots,
            "every slot either fetched or failed on the link"
        );
    }

    #[test]
    fn netem_outage_abandons_syncs_and_rescues_stranded_ads() {
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(27);
        // A half-population blackout two days in, long enough to outlive
        // the whole retry budget.
        cfg.netem = adpf_netem::NetemConfig::flaky_cellular().with_outage(
            48,
            SimDuration::from_hours(10),
            0.5,
        );
        let r = Simulator::new(cfg.clone(), &t).run();
        assert!(
            r.netem.syncs_abandoned > 0,
            "a 10h blackout must exhaust retry budgets: {:?}",
            r.netem
        );
        assert!(
            r.netem.ads_rescued > 0,
            "dark holders' ads must be re-replicated: {:?}",
            r.netem
        );
        assert_eq!(r.ledger.billed + r.ledger.expired, r.ledger.sold);

        // The outage must hurt relative to plain flaky conditions.
        let mut flaky_cfg = cfg;
        flaky_cfg.netem = adpf_netem::NetemConfig::flaky_cellular();
        let flaky = Simulator::new(flaky_cfg, &t).run();
        assert!(r.netem.sync_failures > flaky.netem.sync_failures);
    }

    #[test]
    #[should_panic(expected = "invalid SystemConfig")]
    fn invalid_config_panics() {
        let mut cfg = SystemConfig::prefetch_default(1);
        cfg.sla_target = 7.0;
        let _ = Simulator::new(cfg, &trace());
    }

    #[test]
    fn shard_derivation_keeps_historical_counts_for_small_populations() {
        // Every population at or below DEFAULT_SHARDS × USERS_PER_SHARD
        // users must derive exactly DEFAULT_SHARDS — that is what keeps
        // the report hashes recorded before derivation existed (smoke:
        // 40 users, e14: 300 users) byte-identical.
        for users in [0, 1, 40, 60, 300, 320] {
            assert_eq!(default_shards(users), DEFAULT_SHARDS, "{users} users");
        }
        // Production-scale populations grow past the floor…
        assert_eq!(default_shards(321), 9);
        assert_eq!(default_shards(600), 15);
        assert_eq!(default_shards(1_693), 43);
        // …up to the soft cap…
        assert_eq!(default_shards(100_000), MAX_SHARDS);
        // …which yields once it would breach the per-shard memory bound:
        // a million users derive enough shards to keep every shard at or
        // below MAX_USERS_PER_SHARD users, instead of 64 shards of
        // ~15,600.
        assert_eq!(default_shards(1_000_000), 489);
        for users in [200_000u32, 500_000, 1_000_000, 5_000_000] {
            let shards = default_shards(users);
            assert!(
                (users as usize).div_ceil(shards) <= MAX_USERS_PER_SHARD,
                "{users} users / {shards} shards breaches the memory bound"
            );
        }
    }

    #[test]
    fn prebuilt_context_matches_per_shard_construction() {
        // The hoisted ShardContext must be invisible: a simulator built
        // from a shared context equals one that rebuilt everything, for
        // every rng_stream a sharded run would use.
        let t = trace();
        let base = SystemConfig::prefetch_default(9);
        let ctx = ShardContext::new(&base);
        for stream in [0u64, 1, 7] {
            let mut cfg = base.clone();
            cfg.rng_stream = stream;
            let fresh = Simulator::new(cfg.clone(), &t).run();
            let shared = Simulator::with_context(cfg, &t, &ctx).run();
            assert_eq!(fresh, shared, "stream {stream} diverged");
        }
    }

    #[test]
    fn explicit_shard_counts_with_same_semantics_hash_identically() {
        // Shard counts beyond the population clamp back to it, so any
        // requested count that resolves to the same effective split must
        // produce the identical merged report (the documented semantics:
        // the effective count is what matters, not the requested one).
        let t = trace(); // 40 users.
        let cfg = SystemConfig::prefetch_default(9);
        let at_pop = Simulator::run_sharded(&cfg, &t, 40, 2);
        let clamped = Simulator::run_sharded(&cfg, &t, 1_000, 3);
        assert_eq!(at_pop, clamped);
    }

    #[test]
    fn stalled_shard_does_not_change_the_merged_report() {
        // Forcing shard 0 to finish last exercises the completion
        // orderings work stealing can produce; the shard-ordered merge
        // must hide them.
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let baseline = Simulator::run_sharded(&cfg, &t, DEFAULT_SHARDS, 1);
        let stalled = Simulator::run_sharded_with_hook(&cfg, &t, DEFAULT_SHARDS, 4, |shard| {
            if shard == 0 {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        });
        assert_eq!(baseline, stalled);
    }

    #[test]
    fn observed_runs_match_plain_runs_at_every_thread_count() {
        // `--metrics` must be invisible to simulation outcomes: the
        // observed entry point returns the bit-identical report at any
        // thread count, and the deterministic part of the registry (the
        // simulated-event counts, with wall-clock timers dropped) is the
        // same no matter how the shards were scheduled.
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 8] {
            let plain = Simulator::run_parallel(&cfg, &t, threads);
            let (observed, reg) = Simulator::run_parallel_observed(&cfg, &t, threads);
            assert_eq!(
                plain, observed,
                "metrics changed the report at {threads} threads"
            );
            snapshots.push(reg.deterministic_snapshot());
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
    }

    #[test]
    fn registry_counters_agree_with_the_report() {
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let (r, reg) = Simulator::run_parallel_observed(&cfg, &t, 2);
        assert_eq!(reg.counter_value("sim.event.slot"), r.slots);
        assert_eq!(reg.counter_value("sim.slots"), r.slots);
        assert_eq!(reg.counter_value("sim.impressions"), r.impressions);
        assert_eq!(reg.counter_value("sim.syncs"), r.syncs);
        assert_eq!(
            reg.counter_value("sim.replicas_assigned"),
            r.replicas_assigned
        );
        // Gauges merge by max, so the merged value is the largest shard
        // population, not the total.
        let users = reg.gauge_value("sim.users");
        assert!(users > 0 && users <= u64::from(r.users));
        // Observed sharded runs carry the pipeline-phase timers.
        assert!(reg.time_ns("phase.event_loop") > 0);
        // The energy residency histograms cover every simulated user.
        let active = reg
            .histogram_snapshot("energy.user.active_ms")
            .expect("residency histogram published");
        assert_eq!(active.count(), u64::from(r.users));
    }

    #[test]
    fn unobserved_sequential_run_still_feeds_the_netem_report_field() {
        // `SimReport::netem` is derived from the always-on registry, so
        // the plain `run()` path (no metrics requested) must still
        // produce populated counters under a degraded network.
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(17);
        cfg.netem = adpf_netem::NetemConfig::flaky_cellular();
        let r = Simulator::new(cfg, &t).run();
        assert!(
            r.netem.sync_failures > 0,
            "degraded network should fail some syncs"
        );
    }
}
