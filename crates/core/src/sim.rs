//! The end-to-end discrete-event simulation.

use std::sync::Mutex;

use adpf_auction::{
    AdId, Campaign, CampaignCatalog, CampaignType, Exchange, ImpressionOutcome, Ledger, SlotOffer,
};
use adpf_desim::{EventQueue, InlineVec, SimDuration, SimTime, WorkQueue};
use adpf_energy::{EnergyBreakdown, Radio};
use adpf_netem::NetworkModel;
use adpf_obs::{MetricId, MetricRegistry, ObsSink};
use adpf_overbooking::availability::{AvailabilityCache, ClientAvailability};
use adpf_overbooking::planner::{ReplicationPlanner, PLAN_INLINE};
use adpf_overbooking::reconcile::ReplicaTracker;
use adpf_traces::{shard_ranges, AdSlot, Trace, UserSlots};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{CachedAd, ClientTable};
use crate::config::{DeliveryMode, SystemConfig};
use crate::report::{metric_names, NetemCounters, SimReport};

/// Upper bound on ads sold at one sync, guarding against a pathological
/// predictor output flooding the exchange.
const MAX_SELL_PER_SYNC: u32 = 256;

/// Minimum number of logical shards used by [`Simulator::run_parallel`]
/// (the historical fixed shard count, kept as the floor so every
/// population of up to `DEFAULT_SHARDS × USERS_PER_SHARD` users keeps the
/// report hashes recorded before shard derivation existed).
///
/// The shard count is derived from the population size (then clamped to
/// it) rather than from the thread count: shards are the unit of
/// simulation semantics (candidate pools, RNG streams, budget shares)
/// while threads are only a scheduling choice, so the same trace and seed
/// produce bit-identical merged reports at any thread count.
pub const DEFAULT_SHARDS: usize = 8;

/// Preferred upper bound on derived shard counts. Caps per-shard setup
/// overhead (each shard builds its own exchange and client table) and
/// keeps the smallest shard large enough for replica candidate pools to
/// matter. It is a *soft* cap: once honoring it would put more than
/// [`MAX_USERS_PER_SHARD`] users in one shard, the count grows past it —
/// see [`default_shards`].
pub const MAX_SHARDS: usize = 64;

/// Target users per shard when deriving the shard count. At the floor of
/// [`DEFAULT_SHARDS`] shards this keeps every population up to 320 users
/// — all test and quick-bench populations — at exactly the historical 8
/// shards (hash-stable), while production-scale populations get enough
/// shards that an 8-thread run is not starved for work (the paper's
/// 1,693-user iPhone population derives 43).
pub const USERS_PER_SHARD: usize = 40;

/// Hard ceiling on users per derived shard. A shard is the streaming
/// pipeline's unit of residency — its sub-trace, client table, and slot
/// stream are all alive at once — so this constant *is* the peak-memory
/// bound of a streaming run: O(`MAX_USERS_PER_SHARD` × threads) users
/// resident, regardless of population size. A million-user run derives
/// ~489 shards of ≤2,048 users instead of being stranded at
/// [`MAX_SHARDS`] shards of ~15,600.
pub const MAX_USERS_PER_SHARD: usize = 2_048;

/// Number of logical shards [`Simulator::run_parallel`] uses for a
/// population of `num_users`: one shard per [`USERS_PER_SHARD`] users,
/// clamped to `[DEFAULT_SHARDS, cap]` where the cap is [`MAX_SHARDS`]
/// raised, when necessary, to whatever keeps every shard at or below
/// [`MAX_USERS_PER_SHARD`] users.
///
/// The derivation depends only on the population size — deliberately
/// never on thread count or host — so the merged report stays a
/// deterministic function of `(config, trace)` at every thread count
/// (the invariant the equivalence suites pin). Threads are still served:
/// any population big enough to want more parallelism than
/// [`MAX_SHARDS`] shards already derives at least 64 of them, which
/// saturates every realistic worker count, and the work-stealing
/// scheduler keeps all workers busy regardless of the shard/thread
/// ratio.
pub fn default_shards(num_users: u32) -> usize {
    let users = num_users as usize;
    let cap = MAX_SHARDS.max(users.div_ceil(MAX_USERS_PER_SHARD));
    users.div_ceil(USERS_PER_SHARD).clamp(DEFAULT_SHARDS, cap)
}

/// Finalizes `z` through the 64-bit mix used by splitmix64/murmur3.
///
/// Used to spread the shard's `rng_stream` index across the seed space.
/// Every operation maps zero to zero, so stream 0 leaves the master seed
/// untouched — the unsharded derivation stays bit-identical.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^= z >> 33;
    z
}

/// Read-only state shared by every shard of one sharded run.
///
/// Everything here is a deterministic function of the *master* config
/// alone (never of `rng_stream` or `budget_fraction`, the two fields that
/// differ between shard configs), so building it once and handing each
/// shard a copy is bit-identical to each shard rebuilding it — that is
/// the invariant that lets per-shard setup be hoisted without touching
/// report hashes. Today the expensive shared piece is the campaign
/// catalog (per-campaign bid model synthesis); the other per-shard setup
/// (`AvailabilityCache` priors, netem config parsing) was measured to be
/// trivial and intentionally stays inline.
pub struct ShardContext {
    campaigns: Vec<Campaign>,
    /// Marketplace campaign-type assignment, index-aligned with
    /// `campaigns`. A pure function of the catalog order (see
    /// `MarketplaceConfig::assign_types`), so every shard sees the
    /// identical assignment — pacing-controller *placement* is shared
    /// state, while controller *trajectories* live per shard in each
    /// shard's exchange.
    campaign_types: Vec<CampaignType>,
}

impl ShardContext {
    /// Builds the shared context for one run of `config`.
    pub fn new(config: &SystemConfig) -> Self {
        let campaigns = CampaignCatalog::synthetic_with_targeting(
            config.campaigns,
            config.seed,
            config.contextual_fraction,
            config.contextual_premium,
        )
        .into_campaigns();
        let campaign_types = config.marketplace.assign_types(&campaigns);
        Self {
            campaigns,
            campaign_types,
        }
    }
}

/// Where a sharded run's per-shard traces come from.
///
/// `Materialized` is the classic pipeline: the full trace exists and is
/// split up front (all shard sub-traces alive simultaneously).
/// `Streaming` hands each worker a generator instead of a `&Trace`: a
/// shard's sub-trace is produced on the worker thread right before
/// simulation and dropped right after, so peak residency is bounded by
/// the number of *workers*, not the number of shards or users. Both
/// variants cut the population along [`shard_ranges`], which is what
/// keeps their merged reports bit-identical.
#[derive(Clone, Copy)]
enum ShardSupply<'a> {
    /// The full trace, split `n_shards` ways up front.
    Materialized(&'a Trace, usize),
    /// Lazy per-shard generation over an `n_shards`-way split of a
    /// `num_users` population.
    Streaming {
        num_users: u32,
        n_shards: usize,
        make: &'a (dyn Fn(usize) -> Trace + Sync),
    },
}

impl ShardSupply<'_> {
    fn num_users(&self) -> u32 {
        match self {
            ShardSupply::Materialized(trace, _) => trace.num_users(),
            ShardSupply::Streaming { num_users, .. } => *num_users,
        }
    }

    fn n_shards(&self) -> usize {
        match self {
            ShardSupply::Materialized(_, n) | ShardSupply::Streaming { n_shards: n, .. } => *n,
        }
    }
}

/// Pre-resolved ids for the counters the simulator maintains on its hot
/// path. Resolving once at construction keeps every increment an array
/// index plus an integer add. All of these count simulated events, so
/// they are deterministic and safe to keep always on — which is what
/// lets `SimReport::netem` be *derived* from the registry while
/// `--metrics` toggles only export and wall-clock spans.
struct SimIds {
    ev_slot: MetricId,
    ev_sync: MetricId,
    ev_retry: MetricId,
    ev_sweep: MetricId,
    ev_pacing: MetricId,
    pool_builds: MetricId,
    pool_scored: MetricId,
    pool_rescored: MetricId,
    netem_sync_failures: MetricId,
    netem_retries_scheduled: MetricId,
    netem_retries_succeeded: MetricId,
    netem_syncs_abandoned: MetricId,
    netem_realtime_failures: MetricId,
    netem_ads_rescued: MetricId,
    netem_rescues_unplaced: MetricId,
}

impl SimIds {
    fn resolve(reg: &MetricRegistry) -> Self {
        SimIds {
            ev_slot: reg.counter("sim.event.slot"),
            ev_sync: reg.counter("sim.event.sync"),
            ev_retry: reg.counter("sim.event.retry"),
            ev_sweep: reg.counter("sim.event.expiry_sweep"),
            ev_pacing: reg.counter("sim.event.pacing"),
            pool_builds: reg.counter("sim.pool.builds"),
            pool_scored: reg.counter("sim.pool.candidates_scored"),
            pool_rescored: reg.counter("sim.pool.candidates_rescored"),
            netem_sync_failures: reg.counter(metric_names::NETEM_SYNC_FAILURES),
            netem_retries_scheduled: reg.counter(metric_names::NETEM_RETRIES_SCHEDULED),
            netem_retries_succeeded: reg.counter(metric_names::NETEM_RETRIES_SUCCEEDED),
            netem_syncs_abandoned: reg.counter(metric_names::NETEM_SYNCS_ABANDONED),
            netem_realtime_failures: reg.counter(metric_names::NETEM_REALTIME_FAILURES),
            netem_ads_rescued: reg.counter(metric_names::NETEM_ADS_RESCUED),
            netem_rescues_unplaced: reg.counter(metric_names::NETEM_RESCUES_UNPLACED),
        }
    }
}

/// Simulation event alphabet.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The `idx`-th ad slot of the precomputed slot stream occurs.
    Slot(u32),
    /// Client `c` performs its periodic sync.
    Sync(u32),
    /// Client `c` retries a failed sync; `attempt` counts round trips
    /// already burnt (netem only).
    Retry { c: u32, attempt: u32 },
    /// Periodic server-side expiry sweep.
    ExpirySweep,
    /// Periodic pacing-controller update across all paced campaigns
    /// (reactive marketplace only).
    Pacing,
}

/// One configured simulation over one trace.
///
/// Construction precomputes the slot stream and builds per-client state;
/// [`Simulator::run`] consumes the simulator and produces a
/// [`SimReport`]. Runs are deterministic: the same `(config, trace)` pair
/// always yields the same report.
pub struct Simulator {
    config: SystemConfig,
    clients: ClientTable,
    slots: Vec<AdSlot>,
    horizon: SimTime,
    days: u32,
    exchange: Exchange,
    ledger: Ledger,
    tracker: ReplicaTracker,
    planner: Box<dyn ReplicationPlanner>,
    queue: EventQueue<Event>,
    cand_cursor: usize,
    /// Randomness for failure injection (sync dropout).
    fault_rng: StdRng,
    syncs_dropped: u64,
    /// Per-client network channels; `None` when netem is disabled, in
    /// which case every link query short-circuits to "ideal" without
    /// consuming randomness — the legacy code path, bit for bit.
    net: Option<NetworkModel>,
    /// The run's metric registry. Always on: every value written during
    /// the run is a count of simulated events, merged shard-order like
    /// the report itself, so observability can never perturb outcomes.
    /// `SimReport::netem` is derived from it at finalize.
    obs: MetricRegistry,
    /// Pre-resolved ids into `obs` for the hot-path counters.
    mid: SimIds,
    /// Scratch for the rescue scan's due-ad list.
    scratch_due: Vec<(u64, SimTime)>,
    /// Memoized bursty-availability evaluator (exact, keyed on lambda
    /// bits) shared by every `place_ad` call.
    avail: AvailabilityCache,
    /// Monotone counter bumped at each `sync_body`; versions the
    /// per-client `expected_rate` memo below.
    sync_epoch: u64,
    /// `lambda_cache[j]` is valid iff `lambda_epoch[j] == sync_epoch`.
    /// Within one sync every candidate's predictor state, `next_sync`,
    /// and the sale deadline are frozen, so a client's expected rate is
    /// identical across the ads sold at that sync — computing it once
    /// per client per sync is exact, not approximate.
    lambda_epoch: Vec<u64>,
    lambda_cache: Vec<f64>,
    // Scratch buffers reused across syncs so the hot path never
    // allocates: each holds the retained capacity of whatever client
    // vector it was last swapped with.
    scratch_slot_times: Vec<SimTime>,
    scratch_outbox: Vec<CachedAd>,
    scratch_reports: Vec<(AdId, SimTime)>,
    scratch_cands: Vec<ClientAvailability>,
    /// `(lambda, mean_session_slots)` per pool entry, aligned with
    /// `scratch_cands` — the inputs needed to re-score an entry.
    scratch_meta: Vec<(f64, f64)>,
    // Counters.
    impressions: u64,
    cache_hits: u64,
    realtime_fetches: u64,
    unfilled: u64,
    syncs: u64,
    syncs_skipped: u64,
    replicas_assigned: u64,
}

impl Simulator {
    /// Builds a simulator for `config` over `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails — configurations are built in
    /// code, so an invalid one is a programming error.
    pub fn new(config: SystemConfig, trace: &Trace) -> Self {
        let ctx = ShardContext::new(&config);
        Self::with_context(config, trace, &ctx)
    }

    /// [`Simulator::new`] against a prebuilt [`ShardContext`].
    ///
    /// Sharded runs build the context once and construct every shard's
    /// simulator from it; because the context depends only on fields the
    /// shard configs share, this is bit-identical to `new` on each shard
    /// config.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails.
    pub fn with_context(config: SystemConfig, trace: &Trace, ctx: &ShardContext) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid SystemConfig: {reason}");
        }
        let slots = trace.ad_slots(config.ad_refresh);
        // Both views of the slot stream come from the one derivation
        // above; deriving it twice used to double trace-setup time. The
        // per-user view is a CSR (offsets + one flat array) over the
        // same stream: one allocation for the population, not one per
        // user.
        let slots_by_user = UserSlots::from_slots(&slots, trace.num_users());
        let horizon = trace.horizon();

        let mut clients = ClientTable::with_capacity(trace.num_users() as usize);
        for u in 0..trace.num_users() {
            clients.push(
                Radio::new(config.radio.clone()),
                config.predictor.build(slots_by_user.user(u as usize)),
            );
        }

        // The campaign catalog is built from the master seed alone (it
        // lives in the shared context), so every shard of a sharded run
        // sees the same advertisers; only the per-run randomness (bid
        // sampling, fault injection) switches to the shard's stream, and
        // budgets shrink to the shard's population share so combined
        // spending can never exceed the global budgets.
        let stream_seed = config.seed ^ mix64(config.rng_stream);
        let mut exchange = Exchange::new(ctx.campaigns.clone(), config.seed);
        exchange.advance_discount = config.advance_discount;
        exchange.reseed_bids(stream_seed);
        exchange.scale_budgets(config.budget_fraction);
        if config.marketplace.enabled {
            // After scale_budgets: pacing schedules must cover the
            // shard's budget share, not the global budget, so the
            // shards' combined paced spend targets the global schedule.
            exchange.configure_marketplace(&config.marketplace, &ctx.campaign_types);
        }

        let mut queue = EventQueue::with_capacity(slots.len() + clients.len() + 16);
        for (i, slot) in slots.iter().enumerate() {
            queue.push(slot.time, Event::Slot(i as u32));
        }
        if config.mode == DeliveryMode::Prefetch {
            // Stagger first syncs evenly across the interval so the server
            // load (and replica delivery opportunities) spread out.
            let interval_ms = config.prefetch_interval.as_millis();
            let n = clients.len().max(1) as u64;
            for i in 0..clients.len() {
                let offset = SimDuration::from_millis(interval_ms * (i as u64 % n) / n);
                clients.next_sync[i] = SimTime::ZERO + offset;
                queue.push(clients.next_sync[i], Event::Sync(i as u32));
            }
            queue.push(SimTime::from_hours(1), Event::ExpirySweep);
        }
        if exchange.has_pacers() {
            // Pacing applies in both delivery modes: the exchange paces
            // real-time and advance sales alike. Marketplace-off (and
            // static-marketplace) runs schedule no pacing events, so the
            // legacy event stream is untouched.
            queue.push(
                SimTime::ZERO + config.marketplace.pacing_interval,
                Event::Pacing,
            );
        }

        let planner = config.planner.build();
        let fault_rng = StdRng::seed_from_u64(stream_seed ^ 0xd20_0ff);
        let avail = AvailabilityCache::new(config.availability_dispersion);
        let n_clients = clients.len();
        let candidate_pool = config.candidate_pool;
        let net = config
            .netem
            .enabled
            .then(|| NetworkModel::new(config.netem.clone(), n_clients, stream_seed));
        let obs = MetricRegistry::new();
        let mid = SimIds::resolve(&obs);
        Self {
            config,
            avail,
            sync_epoch: 0,
            lambda_epoch: vec![0; n_clients],
            lambda_cache: vec![0.0; n_clients],
            scratch_slot_times: Vec::new(),
            scratch_outbox: Vec::new(),
            scratch_reports: Vec::new(),
            scratch_cands: Vec::with_capacity(candidate_pool),
            scratch_meta: Vec::with_capacity(candidate_pool),
            clients,
            slots,
            horizon,
            days: trace.days(),
            exchange,
            ledger: Ledger::new(),
            tracker: ReplicaTracker::new(),
            planner,
            queue,
            cand_cursor: 0,
            fault_rng,
            syncs_dropped: 0,
            net,
            obs,
            mid,
            scratch_due: Vec::new(),
            impressions: 0,
            cache_hits: 0,
            realtime_fetches: 0,
            unfilled: 0,
            syncs: 0,
            syncs_skipped: 0,
            replicas_assigned: 0,
        }
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> SimReport {
        self.run_observed().0
    }

    /// [`Simulator::run`] that also returns the run's metric registry.
    ///
    /// The registry is maintained unconditionally (its contents are pure
    /// functions of simulated events), so this returns exactly the same
    /// report as `run` — observability can be exported or dropped, never
    /// felt.
    pub fn run_observed(mut self) -> (SimReport, MetricRegistry) {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                Event::Slot(idx) => {
                    self.obs.inc(self.mid.ev_slot, 1);
                    self.on_slot(now, idx)
                }
                Event::Sync(c) => {
                    self.obs.inc(self.mid.ev_sync, 1);
                    self.on_sync(now, c)
                }
                Event::Retry { c, attempt } => {
                    self.obs.inc(self.mid.ev_retry, 1);
                    self.on_retry(now, c, attempt)
                }
                Event::ExpirySweep => {
                    self.obs.inc(self.mid.ev_sweep, 1);
                    self.on_expiry_sweep(now)
                }
                Event::Pacing => {
                    self.obs.inc(self.mid.ev_pacing, 1);
                    self.on_pacing(now)
                }
            }
        }
        self.finalize()
    }

    /// Runs `config` over `trace` as [`default_shards`]`(users)`
    /// independent user shards scheduled across `threads` OS threads, and
    /// merges the per-shard reports.
    ///
    /// The merged report is a deterministic function of `(config, trace)`
    /// alone: the shard count derives from the population size (clamped
    /// to it), each shard draws from its own `(seed, shard)` RNG stream
    /// and budget share, and reports merge in shard order. Changing
    /// `threads` changes only wall-clock time, never the result. Note
    /// that the *sharded* result differs from [`Simulator::run`] on the
    /// unsharded trace whenever more than one shard is used — replication
    /// candidates are confined to a shard — which is the price of
    /// embarrassingly parallel execution.
    pub fn run_parallel(config: &SystemConfig, trace: &Trace, threads: usize) -> SimReport {
        Self::run_sharded(config, trace, default_shards(trace.num_users()), threads)
    }

    /// [`Simulator::run_parallel`] with an explicit logical shard count.
    ///
    /// `n_shards` is clamped to the population size; `n_shards = 1`
    /// reproduces [`Simulator::run`] bit-for-bit (stream 0, full
    /// budgets, the whole trace). The report is independent of `threads`.
    pub fn run_sharded(
        config: &SystemConfig,
        trace: &Trace,
        n_shards: usize,
        threads: usize,
    ) -> SimReport {
        Self::run_sharded_with_hook(config, trace, n_shards, threads, |_| {})
    }

    /// [`Simulator::run_sharded`] with a per-shard hook, called with the
    /// shard index on the worker thread immediately before that shard
    /// simulates.
    ///
    /// This is a scheduling-perturbation seam for the determinism tests:
    /// a hook that stalls one shard forces every completion interleaving
    /// the work-stealing loop can produce, and the merged report must not
    /// notice. The hook cannot observe or influence shard semantics.
    pub fn run_sharded_with_hook(
        config: &SystemConfig,
        trace: &Trace,
        n_shards: usize,
        threads: usize,
        shard_hook: impl Fn(usize) + Sync,
    ) -> SimReport {
        let supply = ShardSupply::Materialized(trace, n_shards);
        Self::run_sharded_inner(config, supply, threads, shard_hook, false).0
    }

    /// [`Simulator::run_parallel`] plus the merged metric registry.
    ///
    /// The report is bit-identical to [`Simulator::run_parallel`] on the
    /// same inputs — observation adds wall-clock `phase.*` timers to the
    /// registry but never touches simulation state. The registry merges
    /// per-shard registries in shard order, mirroring the report merge.
    pub fn run_parallel_observed(
        config: &SystemConfig,
        trace: &Trace,
        threads: usize,
    ) -> (SimReport, MetricRegistry) {
        Self::run_sharded_observed(config, trace, default_shards(trace.num_users()), threads)
    }

    /// [`Simulator::run_sharded`] plus the merged metric registry.
    pub fn run_sharded_observed(
        config: &SystemConfig,
        trace: &Trace,
        n_shards: usize,
        threads: usize,
    ) -> (SimReport, MetricRegistry) {
        let supply = ShardSupply::Materialized(trace, n_shards);
        let (report, reg) = Self::run_sharded_inner(config, supply, threads, |_| {}, true);
        (report, reg.expect("observed run always yields a registry"))
    }

    /// Streaming, bounded-memory counterpart of
    /// [`Simulator::run_sharded`]: no global trace is ever materialized.
    ///
    /// `make_shard(i)` must return the sub-trace of shard `i` of an
    /// `n_shards`-way balanced split of a `num_users` population —
    /// normally `PopulationConfig::generate_shard(i, n_shards)`, which is
    /// byte-identical to `generate().split_users(n_shards)[i]`. Workers
    /// claim shard indices from the work-stealing queue, generate the
    /// shard's user range on the worker thread, simulate it, and drop the
    /// sub-trace before claiming the next index — so at most `threads`
    /// shards are resident at once and peak memory is
    /// O(users-per-shard × threads) instead of O(population).
    ///
    /// The merged report is **bit-identical** to
    /// [`Simulator::run_sharded`] on the materialized trace: shard
    /// boundaries come from the same [`shard_ranges`] formula, per-shard
    /// configs (RNG stream, budget share) depend only on the range sizes,
    /// and reports merge in shard order. As with the materialized path,
    /// `threads` never changes the result.
    pub fn run_streaming(
        config: &SystemConfig,
        num_users: u32,
        n_shards: usize,
        threads: usize,
        make_shard: impl Fn(usize) -> Trace + Sync,
    ) -> SimReport {
        let supply = ShardSupply::Streaming {
            num_users,
            n_shards,
            make: &make_shard,
        };
        Self::run_sharded_inner(config, supply, threads, |_| {}, false).0
    }

    /// [`Simulator::run_streaming`] plus the merged metric registry.
    ///
    /// Alongside the usual `phase.*` spans the registry carries
    /// `phase.trace_gen` (per-shard generation time) and, where the host
    /// exposes it, the `proc.peak_rss_kb` high-water gauge — both outside
    /// the deterministic snapshot, so observing the bound cannot perturb
    /// equivalence checks.
    pub fn run_streaming_observed(
        config: &SystemConfig,
        num_users: u32,
        n_shards: usize,
        threads: usize,
        make_shard: impl Fn(usize) -> Trace + Sync,
    ) -> (SimReport, MetricRegistry) {
        let supply = ShardSupply::Streaming {
            num_users,
            n_shards,
            make: &make_shard,
        };
        let (report, reg) = Self::run_sharded_inner(config, supply, threads, |_| {}, true);
        (report, reg.expect("observed run always yields a registry"))
    }

    fn run_sharded_inner(
        config: &SystemConfig,
        supply: ShardSupply<'_>,
        threads: usize,
        shard_hook: impl Fn(usize) + Sync,
        observed: bool,
    ) -> (SimReport, Option<MetricRegistry>) {
        let total_users = supply.num_users();
        // Both supplies cut the population along the same shard_ranges
        // boundaries, so everything derived from shard *sizes* (budget
        // shares, RNG streams, merge order) is identical between them —
        // the heart of the streaming/materialized equivalence.
        let ranges = shard_ranges(total_users, supply.n_shards());
        let n = ranges.len();
        let shards: Vec<Trace> = match supply {
            ShardSupply::Materialized(trace, n_shards) => {
                let split = trace.split_users(n_shards);
                debug_assert_eq!(split.len(), n);
                split
            }
            ShardSupply::Streaming { .. } => Vec::new(),
        };
        let threads = threads.clamp(1, n);
        let configs: Vec<SystemConfig> = ranges
            .iter()
            .enumerate()
            .map(|(i, range)| {
                let mut c = config.clone();
                c.rng_stream = i as u64;
                c.budget_fraction = if total_users == 0 {
                    1.0
                } else {
                    (range.end - range.start) as f64 / total_users as f64
                };
                c
            })
            .collect();

        // Shard setup identical across shards is built once and shared;
        // see `ShardContext` for why this cannot change results.
        let ctx = ShardContext::new(config);

        // Work stealing: workers claim shard indices from an atomic
        // queue, so a worker that drains its cheap shards immediately
        // picks up outstanding ones instead of idling behind a static
        // stride assignment (shard costs are skewed by heavy-tailed
        // users). Each result lands in its shard's slot; the claim order
        // and thread count are invisible after the shard-ordered merge.
        let queue = WorkQueue::new(n);
        type ShardResult = (SimReport, MetricRegistry);
        let results: Vec<Mutex<Option<ShardResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    while let Some(i) = queue.claim() {
                        shard_hook(i);
                        // Streaming: materialize only this shard's user
                        // range, on this worker, for the lifetime of this
                        // iteration — the bounded-memory property.
                        let gen_start = observed.then(std::time::Instant::now);
                        let generated = match supply {
                            ShardSupply::Materialized(..) => None,
                            ShardSupply::Streaming { make, .. } => Some(make(i)),
                        };
                        let gen_ns = gen_start.map(|t0| t0.elapsed().as_nanos() as u64);
                        let shard_trace: &Trace = match &generated {
                            Some(t) => t,
                            None => &shards[i],
                        };
                        debug_assert_eq!(
                            shard_trace.num_users(),
                            ranges[i].end - ranges[i].start,
                            "shard source disagrees with shard_ranges on shard {i}"
                        );
                        // Wall-clock spans are recorded only in observed
                        // mode; they are Time metrics, which never feed
                        // report hashes or determinism checks.
                        let setup_start = observed.then(std::time::Instant::now);
                        let sim = Simulator::with_context(configs[i].clone(), shard_trace, &ctx);
                        if let Some(ns) = gen_ns.filter(|_| generated.is_some()) {
                            sim.obs.add_time_ns("phase.trace_gen", ns);
                        }
                        if let Some(t0) = setup_start {
                            sim.obs
                                .add_time_ns("phase.shard_setup", t0.elapsed().as_nanos() as u64);
                        }
                        let loop_start = observed.then(std::time::Instant::now);
                        let (report, reg) = sim.run_observed();
                        if let Some(t0) = loop_start {
                            reg.add_time_ns("phase.event_loop", t0.elapsed().as_nanos() as u64);
                        }
                        *results[i].lock().expect("shard slot poisoned") = Some((report, reg));
                    }
                });
            }
        });

        // Merge strictly in shard order: user ranges concatenate back to
        // the original indexing and the floating-point summation order is
        // fixed regardless of which thread finished first. The registry
        // merge follows the same shard order, so merged histograms and
        // counters are as deterministic as the report itself.
        let merge_start = observed.then(std::time::Instant::now);
        let mut merged = SimReport::empty();
        merged.reserve_users(total_users as usize);
        let mut merged_reg = observed.then(MetricRegistry::new);
        for slot in results {
            let (report, reg) = slot
                .into_inner()
                .expect("shard slot poisoned")
                .expect("every shard reports");
            merged.merge(&report);
            if let Some(m) = merged_reg.as_mut() {
                m.merge(&reg);
            }
        }
        if let (Some(m), Some(t0)) = (merged_reg.as_ref(), merge_start) {
            m.add_time_ns("phase.merge", t0.elapsed().as_nanos() as u64);
        }
        if let Some(m) = merged_reg.as_ref() {
            // The pipeline's memory high-water mark. A host fact, not a
            // simulation outcome: it lives in the proc.* namespace, which
            // deterministic snapshots exclude.
            adpf_obs::record_peak_rss(m);
        }
        (merged, merged_reg)
    }

    fn on_slot(&mut self, now: SimTime, idx: u32) {
        let slot = self.slots[idx as usize];
        let ci = slot.user.0 as usize;
        let category = Self::app_category(slot.app);
        match self.config.mode {
            DeliveryMode::RealTime => {
                self.gated_realtime_fetch(ci, now, category);
            }
            DeliveryMode::Prefetch => {
                self.clients.slot_times[ci].push(now);
                if let Some(ad) =
                    self.clients.cache[ci].take_displayable(now, self.config.replica_window)
                {
                    self.clients.pending_reports[ci].push((ad.id, now));
                    self.impressions += 1;
                    self.cache_hits += 1;
                } else if self.config.realtime_fallback {
                    if self.config.piggyback_on_fallback {
                        // The radio must wake for this fetch anyway; ride
                        // the same wakeup with a full sync — if the link
                        // lets the round trip through at all.
                        match self.net.as_mut().map(|net| net.attempt(ci, now)) {
                            Some(v) if !v.ok => {
                                // The slot is gone; there is no later
                                // moment to retry a display into. The
                                // radio still pays for the timeout.
                                self.obs.inc(self.mid.netem_realtime_failures, 1);
                                self.unfilled += 1;
                                self.clients.radio[ci].stall(now, v.latency);
                            }
                            verdict => {
                                let latency =
                                    verdict.map(|v| v.latency).unwrap_or(SimDuration::ZERO);
                                self.sync_body(ci, now, Some(category), latency);
                            }
                        }
                    } else {
                        self.gated_realtime_fetch(ci, now, category);
                    }
                } else {
                    self.unfilled += 1;
                }
            }
        }
    }

    /// Maps an app to its marketplace category for contextual targeting.
    fn app_category(app: adpf_traces::AppId) -> u8 {
        (app.0 % CampaignCatalog::NUM_CATEGORIES as u16) as u8
    }

    /// [`Simulator::realtime_fetch`] gated by the network channel: on a
    /// dead link the slot goes unfilled (a display moment cannot be
    /// retried) and the radio pays a wasted timeout; on a degraded link
    /// the fetch succeeds but holds the radio for the extra latency.
    /// With netem disabled this is exactly `realtime_fetch`.
    fn gated_realtime_fetch(&mut self, ci: usize, now: SimTime, category: u8) {
        if let Some(net) = self.net.as_mut() {
            let v = net.attempt(ci, now);
            if !v.ok {
                self.obs.inc(self.mid.netem_realtime_failures, 1);
                self.unfilled += 1;
                self.clients.radio[ci].stall(now, v.latency);
                return;
            }
            if !v.latency.is_zero() {
                self.clients.radio[ci].stall(now, v.latency);
            }
        }
        self.realtime_fetch(ci, now, category);
    }

    /// Status-quo path: wake the radio, auction the slot in real time, and
    /// bill immediately.
    fn realtime_fetch(&mut self, ci: usize, now: SimTime, category: u8) {
        self.clients.radio[ci].transfer(now, self.config.ad_bytes_down, self.config.ad_bytes_up);
        self.realtime_fetches += 1;
        let offer = SlotOffer::realtime(now, Some(category));
        if let Some(sold) = self.exchange.run_auction(&offer) {
            self.ledger.record_sale(&sold);
            let outcome = self.ledger.record_impression(sold.id, now);
            debug_assert_eq!(outcome, ImpressionOutcome::Billed);
            self.impressions += 1;
        } else {
            self.unfilled += 1;
        }
    }

    fn on_sync(&mut self, now: SimTime, c: u32) {
        let ci = c as usize;
        // Failure injection: the device may be unreachable for this
        // periodic sync; everything pending simply waits for the next
        // opportunity.
        let dropped = self.config.sync_dropout > 0.0
            && self.fault_rng.gen::<f64>() < self.config.sync_dropout;
        if dropped {
            self.syncs_dropped += 1;
        } else {
            self.attempt_sync(ci, now, 0);
        }

        // Schedule the next periodic sync; one extra period past the
        // horizon flushes final reports.
        let next = now + self.config.prefetch_interval;
        if next <= self.horizon + self.config.prefetch_interval {
            self.clients.next_sync[ci] = next;
            self.queue.push(next, Event::Sync(c));
        }
    }

    /// Runs a sync through the network channel: a failed round trip costs
    /// a wasted radio wakeup and schedules a backoff retry; a successful
    /// one proceeds to [`Simulator::sync_body`] carrying the link's extra
    /// latency. `attempt` is the number of round trips already burnt on
    /// this sync (0 for the periodic attempt). With netem disabled this
    /// is exactly `sync_body` on an ideal link.
    fn attempt_sync(&mut self, ci: usize, now: SimTime, attempt: u32) {
        let Some(net) = self.net.as_mut() else {
            self.sync_body(ci, now, None, SimDuration::ZERO);
            return;
        };
        let v = net.attempt(ci, now);
        if v.ok {
            if attempt > 0 {
                self.obs.inc(self.mid.netem_retries_succeeded, 1);
            }
            self.sync_body(ci, now, None, v.latency);
            return;
        }
        // The handshake went out and nothing came back: the radio woke,
        // spent the uplink overhead plus the timeout, and got nothing —
        // the wasted-wakeup energy the tail model makes expensive.
        self.obs.inc(self.mid.netem_sync_failures, 1);
        self.clients.radio[ci].transfer(now, 0, self.config.sync_overhead_bytes);
        self.clients.radio[ci].stall(now, v.latency);
        self.schedule_retry(ci, now, attempt);
    }

    /// Schedules the next backoff retry after a failed sync attempt, or
    /// gives up once the policy's retry budget is spent.
    fn schedule_retry(&mut self, ci: usize, now: SimTime, attempt: u32) {
        let Some(net) = self.net.as_mut() else { return };
        if attempt >= net.retry().max_retries {
            self.obs.inc(self.mid.netem_syncs_abandoned, 1);
            return;
        }
        let at = now + net.backoff(ci, attempt);
        // Same scheduling bound as periodic syncs: one interval past the
        // horizon still flushes reports, anything later is pointless.
        if at <= self.horizon + self.config.prefetch_interval {
            self.obs.inc(self.mid.netem_retries_scheduled, 1);
            self.clients.retry_pending[ci] = true;
            self.queue.push(
                at,
                Event::Retry {
                    c: ci as u32,
                    attempt: attempt + 1,
                },
            );
        }
    }

    fn on_retry(&mut self, now: SimTime, c: u32, attempt: u32) {
        let ci = c as usize;
        // A sync completed since this retry was scheduled (periodic or
        // piggybacked); the client has nothing left to retry.
        if !self.clients.retry_pending[ci] {
            return;
        }
        self.clients.retry_pending[ci] = false;
        self.attempt_sync(ci, now, attempt);
    }

    /// One client/server sync: report, observe, cancel, deliver, sell,
    /// transfer. With `rt_fetch = Some(category)` the sync also serves the
    /// current slot via a real-time auction, sharing the radio wakeup
    /// (piggybacking). `link_latency` is the channel's extra round-trip
    /// stall, charged only if the sync actually wakes the radio.
    fn sync_body(
        &mut self,
        ci: usize,
        now: SimTime,
        rt_fetch: Option<u8>,
        link_latency: SimDuration,
    ) {
        let c = ci as u32;
        // This sync got through, so any outstanding retry is obsolete.
        self.clients.retry_pending[ci] = false;
        // New epoch: every per-client expected-rate memo entry from the
        // previous sync is now stale.
        self.sync_epoch += 1;

        // 1. Update the server-side demand model with the observed period.
        //    Swapping with the scratch buffer (instead of `mem::take`)
        //    hands the client back a vector with retained capacity, so
        //    next interval's slot pushes don't regrow from zero.
        std::mem::swap(
            &mut self.scratch_slot_times,
            &mut self.clients.slot_times[ci],
        );
        let last = self.clients.last_sync[ci];
        self.clients.predictor[ci].observe(last, now, &self.scratch_slot_times);
        self.scratch_slot_times.clear();
        self.clients.cache[ci].purge_expired(now);

        // 2. Sell the predicted slots of the next interval and place them.
        //    The sell margin scales how aggressively predictions convert
        //    into inventory; overbooking and cancellation contain the
        //    downside of overselling.
        let predicted = self.clients.predictor[ci].predict(now, self.config.prefetch_interval);
        let have = self.clients.cache[ci].primary_count() as i64;
        let want = (predicted * self.config.sell_margin).round() as i64;
        let to_sell = (((want - have).max(0)) as u32).min(MAX_SELL_PER_SYNC);
        let mut delivered_primaries = 0u64;
        // All ads sold at this sync share one deadline (`now`, config,
        // and horizon are fixed for the duration), and therefore one
        // replica-candidate pool. The pool is evaluated once, lazily, at
        // the first sale that needs replicas; later sales reuse it, with
        // only the entries whose queue depth changed re-scored through
        // the availability cache (which extends the memoized Poisson
        // series instead of recomputing it).
        let deadline = (now + self.config.deadline).min(self.horizon);
        let mut pool_built = false;
        for _ in 0..to_sell {
            // Don't sell display windows that extend beyond the trace.
            if deadline <= now {
                break;
            }
            let offer = SlotOffer::advance(now, deadline);
            let Some(sold) = self.exchange.run_auction(&offer) else {
                break; // Exchange demand exhausted.
            };
            self.ledger.record_sale(&sold);
            let holders = self.place_ad(ci, now, deadline, &mut pool_built);
            self.replicas_assigned += holders.len() as u64 - 1;
            self.tracker.register(sold.id.0, &holders, deadline);
            // The first holder in placement order is the primary copy; the
            // rest are insurance replicas that display only after the
            // holder's own primaries.
            for (rank, &h) in holders.iter().enumerate() {
                self.clients.queued[h as usize] += 1;
                let cached = CachedAd {
                    id: sold.id,
                    deadline,
                    replica: rank > 0,
                };
                if h as usize == ci {
                    self.clients.cache[ci].insert(cached);
                    delivered_primaries += 1;
                } else {
                    self.clients.outbox[h as usize].push(cached);
                }
            }
            // Re-score the pool entries of the replica holders just
            // loaded: their queue depth grew, so their availability for
            // the *next* ad of this sync shrank.
            self.refresh_pool_probs(&holders);
        }

        // 3. Serve the current slot in real time if this sync rides a
        //    fallback fetch.
        let mut rt_bytes = (0u64, 0u64);
        if let Some(category) = rt_fetch {
            self.realtime_fetches += 1;
            rt_bytes = (self.config.ad_bytes_down, self.config.ad_bytes_up);
            let offer = SlotOffer::realtime(now, Some(category));
            if let Some(sold) = self.exchange.run_auction(&offer) {
                self.ledger.record_sale(&sold);
                self.ledger.record_impression(sold.id, now);
                self.impressions += 1;
            } else {
                self.unfilled += 1;
            }
        }

        // 4. Decide whether this sync transfers at all. Only things that
        //    must move now justify a radio wakeup: the fallback fetch and
        //    newly sold primaries. Replicas, cancellations, and impression
        //    reports are ride-along payload — except that reports force a
        //    transfer once the oldest has aged a full interval (they are
        //    billed by display timestamp, so bounded delay is safe within
        //    the expiry grace period).
        let reports_urgent = self.clients.pending_reports[ci]
            .first()
            .map(|&(_, t)| now.saturating_since(t) >= self.config.prefetch_interval)
            .unwrap_or(false);
        let reports_pending = !self.clients.pending_reports[ci].is_empty();
        let transfer = rt_fetch.is_some()
            || delivered_primaries > 0
            || (reports_pending && (reports_urgent || !self.config.defer_report_syncs))
            || !self.config.skip_empty_syncs;
        if !transfer {
            self.syncs_skipped += 1;
            self.clients.last_sync[ci] = now;
            return;
        }

        // 5. The radio is waking up: apply queued cancellations, deliver
        //    outstanding replicas, and ship the impression reports.
        let cancellations = self.tracker.take_cancellations(c);
        self.clients.cancel(ci, &cancellations);
        std::mem::swap(&mut self.scratch_outbox, &mut self.clients.outbox[ci]);
        let mut delivered_replicas = 0u64;
        for i in 0..self.scratch_outbox.len() {
            let ad = self.scratch_outbox[i];
            if ad.deadline >= now {
                self.clients.cache[ci].insert(ad);
                delivered_replicas += 1;
            }
        }
        self.scratch_outbox.clear();
        std::mem::swap(
            &mut self.scratch_reports,
            &mut self.clients.pending_reports[ci],
        );
        let report_count = self.scratch_reports.len() as u64;
        for i in 0..self.scratch_reports.len() {
            let (ad, t) = self.scratch_reports[i];
            let disposition = self.tracker.record_display(ad.0, c);
            self.ledger.record_impression(ad, t);
            if disposition == adpf_overbooking::DisplayDisposition::First {
                // Every holder's queue shrinks: the reporter consumed the
                // ad, the others will drop it on cancellation. Borrowing
                // `tracker` and mutating `clients` are disjoint field
                // accesses, so no defensive clone of the holder list.
                if let Some(holders) = self.tracker.holders(ad.0) {
                    for &h in holders {
                        let q = &mut self.clients.queued[h as usize];
                        *q = q.saturating_sub(1);
                    }
                }
            }
        }
        self.scratch_reports.clear();

        // 6. Pay for the batched transfer.
        let delivered = delivered_primaries + delivered_replicas;
        let down =
            delivered * self.config.ad_bytes_down + self.config.sync_overhead_bytes + rt_bytes.0;
        let up =
            report_count * self.config.ad_bytes_up + self.config.sync_overhead_bytes + rt_bytes.1;
        self.clients.radio[ci].transfer(now, down, up);
        if !link_latency.is_zero() {
            // Degraded link: the round trip holds the radio active past
            // the payload time (queued behind the transfer just issued).
            self.clients.radio[ci].stall(now, link_latency);
        }
        self.syncs += 1;
        self.clients.last_sync[ci] = now;
    }

    /// Chooses the holders of an ad sold at client `origin`'s sync: the
    /// origin always keeps the primary copy (the ad was sold against *its*
    /// predicted demand); insurance replicas are added only when the
    /// origin's own display probability falls short of the SLA target.
    ///
    /// The replica set is sized to the *residual* risk: with origin
    /// probability `p`, the replicas must jointly succeed with probability
    /// `1 - (1 - target) / (1 - p)` for the whole set to meet `target`.
    /// Replica candidates are drawn from a rotating cursor (spreading
    /// placement load) and scored over the window in which they could
    /// actually display: from the later of their next sync and the opening
    /// of the replica window, to the deadline, discounted by the ads
    /// already queued on them.
    fn place_ad(
        &mut self,
        origin: usize,
        now: SimTime,
        deadline: SimTime,
        pool_built: &mut bool,
    ) -> InlineVec<u32, { PLAN_INLINE + 1 }> {
        let lambda = self.cached_rate(origin, now, deadline);
        let queued = self.clients.queued[origin];
        let mean_session = self.clients.predictor[origin].mean_session_slots();
        let p_origin = self
            .avail
            .display_probability_bursty(lambda, queued, mean_session);
        let mut holders: InlineVec<u32, { PLAN_INLINE + 1 }> = InlineVec::new();
        holders.push(origin as u32);
        if p_origin >= self.config.sla_target {
            return holders;
        }
        // Residual success probability required from the replicas.
        let residual_target = 1.0 - (1.0 - self.config.sla_target) / (1.0 - p_origin).max(1e-9);
        if residual_target <= 0.0 {
            return holders;
        }

        if !*pool_built {
            self.build_candidate_pool(origin, now, deadline);
            *pool_built = true;
        }
        let plan = self.planner.plan(
            &self.scratch_cands,
            residual_target,
            self.config.max_replicas.saturating_sub(1),
        );
        holders.extend_from_slice(&plan.clients);
        holders
    }

    /// Evaluates the replica-candidate pool for one selling sync: the
    /// next `candidate_pool - 1` clients under the rotating cursor, each
    /// scored over the window in which it could actually display. Fills
    /// `scratch_cands` (planner input) and the aligned `scratch_meta`
    /// (the per-candidate rate inputs needed to re-score an entry when
    /// its queue depth changes mid-sync).
    fn build_candidate_pool(&mut self, origin: usize, now: SimTime, deadline: SimTime) {
        self.scratch_cands.clear();
        self.scratch_meta.clear();
        self.obs.inc(self.mid.pool_builds, 1);
        let n = self.clients.len();
        if n <= 1 {
            return;
        }
        let want = (self.config.candidate_pool - 1).min(n - 1);
        let mut taken = 0;
        // A replica can only display inside the final `replica_window`
        // of the ad's life, and only after the holder has received it at
        // a sync. Loop-invariant: hoisted out of the candidate scan.
        let window_open = deadline.saturating_sub(self.config.replica_window).max(now);
        while taken < want {
            self.cand_cursor = (self.cand_cursor + 1) % n;
            let j = self.cand_cursor;
            if j == origin {
                continue;
            }
            taken += 1;
            let start = self.clients.next_sync[j].max(window_open);
            if start >= deadline {
                continue; // Cannot receive the ad in time; skip the
                          // rate evaluation entirely.
            }
            let lambda_j = self.cached_rate(j, start, deadline);
            let queued_j = self.clients.queued[j];
            let mean_session_j = self.clients.predictor[j].mean_session_slots();
            let prob = self
                .avail
                .display_probability_bursty(lambda_j, queued_j, mean_session_j);
            self.scratch_cands.push(ClientAvailability {
                client: j as u32,
                prob,
            });
            self.scratch_meta.push((lambda_j, mean_session_j));
        }
        self.obs
            .inc(self.mid.pool_scored, self.scratch_cands.len() as u64);
    }

    /// Re-scores the pool entries of freshly chosen replica holders
    /// (their `queued` just grew). The rate inputs come from
    /// `scratch_meta`; only the Poisson tail is re-evaluated, and the
    /// availability cache serves it from the already-memoized series.
    fn refresh_pool_probs(&mut self, holders: &[u32]) {
        // holders[0] is the origin, which is never in the pool.
        for &h in holders.iter().skip(1) {
            if let Some(pos) = self.scratch_cands.iter().position(|c| c.client == h) {
                let (lambda, mean_session) = self.scratch_meta[pos];
                let queued = self.clients.queued[h as usize];
                self.scratch_cands[pos].prob =
                    self.avail
                        .display_probability_bursty(lambda, queued, mean_session);
                self.obs.inc(self.mid.pool_rescored, 1);
            }
        }
    }

    /// `expected_rate` for client `j`, memoized per sync epoch.
    ///
    /// Valid because nothing a rate depends on — the client's predictor
    /// state, its `next_sync`, the sale deadline — changes between the
    /// ads sold at one sync (only `queued` moves, which feeds the
    /// availability cache separately). The origin and candidates never
    /// collide on an entry: `place_ad` skips `j == origin`.
    fn cached_rate(&mut self, j: usize, start: SimTime, deadline: SimTime) -> f64 {
        if self.lambda_epoch[j] == self.sync_epoch {
            return self.lambda_cache[j];
        }
        let rate = self.clients.predictor[j].expected_rate(start, deadline.saturating_since(start));
        self.lambda_epoch[j] = self.sync_epoch;
        self.lambda_cache[j] = rate;
        rate
    }

    fn on_expiry_sweep(&mut self, now: SimTime) {
        // Bill by display timestamp: a displayed-but-unreported ad is not
        // a violation, so the sweep waits out the worst-case report delay
        // (one interval of deferral plus one interval to the next sync)
        // before declaring one.
        let grace = self.config.prefetch_interval.saturating_mul(2);
        self.expire(now.saturating_sub(grace));
        if self.net.is_some() {
            self.rescue_dark_ads(now);
        }
        let next = now + SimDuration::from_hours(1);
        if next <= self.horizon + self.config.deadline + grace {
            self.queue.push(next, Event::ExpirySweep);
        }
    }

    /// One pacing-controller update, rescheduling itself every
    /// `marketplace.pacing_interval` until the trace horizon. Runs on
    /// the simulation event queue, so controller updates happen at
    /// deterministic simulated times interleaved with the auction
    /// stream — identical at any thread count.
    fn on_pacing(&mut self, now: SimTime) {
        self.exchange.pacing_tick(now, self.horizon);
        let next = now + self.config.marketplace.pacing_interval;
        if next <= self.horizon {
            self.queue.push(next, Event::Pacing);
        }
    }

    /// Deadline rescue (netem only): ads due within the next prefetch
    /// interval whose holders have *all* gone dark get one extra replica
    /// on a reachable client that will sync before the deadline. Without
    /// this, a regional outage turns every ad it strands into an SLA
    /// violation even though connected clients could still display it.
    fn rescue_dark_ads(&mut self, now: SimTime) {
        let n = self.clients.len();
        if n == 0 {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        self.tracker
            .undisplayed_due_before(now + self.config.prefetch_interval, &mut due);
        // The tracker iterates a HashMap; sort so rescue order (and the
        // rotating cursor it advances) is deterministic.
        due.sort_unstable();
        for &(ad, deadline) in &due {
            if deadline <= now {
                continue; // Too late for any new holder to display it.
            }
            let Some(net) = self.net.as_mut() else { break };
            // Copy the holder set out so the tracker can be mutated below.
            let holders: InlineVec<u32, { PLAN_INLINE + 1 }> = match self.tracker.holders(ad) {
                Some(h) => InlineVec::from_slice(h),
                None => continue,
            };
            // Reachability only consults the link trajectory (no failure
            // coin), so the scan cannot perturb later attempt outcomes.
            if holders.iter().any(|&h| net.reachable(h as usize, now)) {
                continue; // Some holder can still sync in time.
            }
            // Every holder is dark: scan from the rotating cursor for a
            // reachable client whose next sync lands before the deadline.
            let mut target = None;
            for _ in 0..self.config.candidate_pool.min(n) {
                self.cand_cursor = (self.cand_cursor + 1) % n;
                let j = self.cand_cursor;
                if holders.as_slice().contains(&(j as u32)) {
                    continue;
                }
                if self.clients.next_sync[j] < deadline && net.reachable(j, now) {
                    target = Some(j as u32);
                    break;
                }
            }
            match target {
                Some(t) if self.tracker.rescue_to(ad, t) => {
                    self.obs.inc(self.mid.netem_ads_rescued, 1);
                    self.replicas_assigned += 1;
                    self.clients.queued[t as usize] += 1;
                    self.clients.outbox[t as usize].push(CachedAd {
                        id: AdId(ad),
                        deadline,
                        replica: true,
                    });
                }
                _ => self.obs.inc(self.mid.netem_rescues_unplaced, 1),
            }
        }
        self.scratch_due = due;
    }

    fn expire(&mut self, now: SimTime) {
        for (ad, campaign, price) in self.ledger.expire_due(now) {
            self.exchange.refund(campaign, price);
            if !self.tracker.is_displayed(ad.0) {
                if let Some(holders) = self.tracker.holders(ad.0) {
                    // Disjoint field borrows: read `tracker`, write
                    // `clients` — no clone needed.
                    for &h in holders {
                        let q = &mut self.clients.queued[h as usize];
                        *q = q.saturating_sub(1);
                    }
                }
            }
            self.tracker.remove(ad.0);
        }
    }

    fn finalize(mut self) -> (SimReport, MetricRegistry) {
        // Flush reports that never made it to a final sync (trace ended
        // first); without this, genuinely displayed ads would be
        // misclassified as SLA violations.
        for ci in 0..self.clients.len() {
            let reports = std::mem::take(&mut self.clients.pending_reports[ci]);
            for (ad, t) in reports {
                self.tracker.record_display(ad.0, ci as u32);
                self.ledger.record_impression(ad, t);
            }
        }
        // Settle everything still pending.
        self.expire(self.horizon + self.config.deadline + SimDuration::from_millis(1));

        let mut energy = EnergyBreakdown::default();
        let mut per_user = Vec::with_capacity(self.clients.len());
        let flush_at = self.horizon + self.config.radio.tail_duration();
        for radio in &mut self.clients.radio {
            let e = radio.finish(flush_at);
            per_user.push(e.total_j());
            e.publish_residency(&self.obs);
            energy.absorb(&e);
        }

        // Fold the domain-layer stats into the registry so one snapshot
        // covers the whole stack. All of these count simulated events, so
        // they stay deterministic regardless of whether metrics export is
        // requested.
        self.tracker.publish(&self.obs);
        self.exchange.publish(&self.obs);
        if let Some(net) = &self.net {
            net.publish(&self.obs);
        }
        let slots = self.slots.len() as u64;
        self.obs.add("sim.slots", slots);
        self.obs.add("sim.impressions", self.impressions);
        self.obs.add("sim.cache_hits", self.cache_hits);
        self.obs.add("sim.realtime_fetches", self.realtime_fetches);
        self.obs.add("sim.unfilled", self.unfilled);
        self.obs.add("sim.syncs", self.syncs);
        self.obs.add("sim.syncs_skipped", self.syncs_skipped);
        self.obs.add("sim.syncs_dropped", self.syncs_dropped);
        self.obs
            .add("sim.replicas_assigned", self.replicas_assigned);
        self.obs.gauge_max("sim.users", self.clients.len() as u64);

        // `SimReport::netem` is *derived* from the registry: the counters
        // are the single source of truth, the report field only preserves
        // the serialized shape (and hash inputs) of earlier revisions.
        let netem = NetemCounters::from_metrics(&self.obs);

        let report = SimReport {
            config: self.config.describe(),
            users: self.clients.len() as u32,
            days: self.days,
            slots,
            impressions: self.impressions,
            cache_hits: self.cache_hits,
            realtime_fetches: self.realtime_fetches,
            unfilled: self.unfilled,
            energy,
            syncs: self.syncs,
            syncs_skipped: self.syncs_skipped,
            syncs_dropped: self.syncs_dropped,
            replicas_assigned: self.replicas_assigned,
            netem,
            per_user_energy_j: per_user,
            ledger: self.ledger.totals(),
        };
        (report, self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlannerKind;
    use adpf_prediction::PredictorKind;
    use adpf_traces::PopulationConfig;

    fn trace() -> Trace {
        PopulationConfig::small_test(42).generate()
    }

    #[test]
    fn realtime_mode_fetches_every_slot() {
        let t = trace();
        let r = Simulator::new(SystemConfig::realtime(1), &t).run();
        assert_eq!(r.slots, r.realtime_fetches);
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.syncs, 0);
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert!(r.energy.total_j() > 0.0);
        assert_eq!(r.sla_violation_rate(), 0.0, "real-time never violates");
        assert_eq!(r.ledger.duplicates, 0);
    }

    #[test]
    fn prefetch_saves_energy_with_small_revenue_cost() {
        let t = trace();
        let rt = Simulator::new(SystemConfig::realtime(1), &t).run();
        let pf = Simulator::new(SystemConfig::prefetch_default(1), &t).run();
        // The paper's headline: >50% ad-energy reduction with negligible
        // revenue loss and SLA violation rate. The thresholds below leave
        // headroom for the short 7-day test trace (the full 28-day
        // populations predict better).
        let savings = pf.energy_savings_vs(&rt);
        assert!(
            savings > 0.45,
            "expected ~50% energy savings, got {:.1}% \nrt: {}\npf: {}",
            savings * 100.0,
            rt.summary(),
            pf.summary()
        );
        let loss = pf.revenue_loss_vs(&rt);
        assert!(
            loss < 0.05,
            "revenue loss should be negligible, got {:.1}%\nrt: {}\npf: {}",
            loss * 100.0,
            rt.summary(),
            pf.summary()
        );
        assert!(
            pf.cache_hit_rate() > 0.5,
            "hit rate {}",
            pf.cache_hit_rate()
        );
        assert!(
            pf.sla_violation_rate() < 0.08,
            "sla {}",
            pf.sla_violation_rate()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let t = trace();
        let a = Simulator::new(SystemConfig::prefetch_default(9), &t).run();
        let b = Simulator::new(SystemConfig::prefetch_default(9), &t).run();
        assert_eq!(a, b);
    }

    #[test]
    fn overbooking_reduces_sla_violations_versus_single_copy() {
        let t = trace();
        let mut single = SystemConfig::prefetch_default(3);
        single.planner = PlannerKind::NoReplication;
        let mut greedy = SystemConfig::prefetch_default(3);
        greedy.planner = PlannerKind::Greedy;
        let rs = Simulator::new(single, &t).run();
        let rg = Simulator::new(greedy, &t).run();
        assert!(
            rg.sla_violation_rate() <= rs.sla_violation_rate(),
            "greedy {} vs single {}",
            rg.sla_violation_rate(),
            rs.sla_violation_rate()
        );
        assert!(rg.ledger.duplicates >= rs.ledger.duplicates);
    }

    #[test]
    fn oracle_predictor_outperforms_zero() {
        let t = trace();
        let mut oracle = SystemConfig::prefetch_default(5);
        oracle.predictor = PredictorKind::Oracle;
        let mut zero = SystemConfig::prefetch_default(5);
        zero.predictor = PredictorKind::Zero;
        let ro = Simulator::new(oracle, &t).run();
        let rz = Simulator::new(zero, &t).run();
        assert!(ro.cache_hit_rate() > rz.cache_hit_rate());
        // With a zero predictor nothing is pre-sold.
        assert_eq!(rz.ledger.sold, rz.realtime_fetches);
        assert_eq!(rz.cache_hits, 0);
    }

    #[test]
    fn without_fallback_misses_go_unfilled() {
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(7);
        cfg.realtime_fallback = false;
        let r = Simulator::new(cfg, &t).run();
        assert_eq!(r.realtime_fetches, 0);
        assert_eq!(r.impressions, r.cache_hits);
        assert!(r.unfilled > 0);
        assert_eq!(r.impressions + r.unfilled, r.slots);
    }

    #[test]
    fn accounting_identities_hold() {
        let t = trace();
        let r = Simulator::new(SystemConfig::prefetch_default(11), &t).run();
        let lt = r.ledger;
        assert_eq!(lt.billed + lt.expired, lt.sold, "every sold ad settles");
        assert!((lt.revenue + lt.refunded - lt.sold_value).abs() < 1e-9);
        assert!(r.impressions <= r.slots);
        assert!(r.cache_hits + r.realtime_fetches >= r.impressions);
    }

    #[test]
    fn sync_dropout_degrades_gracefully() {
        let t = trace();
        let healthy = Simulator::new(SystemConfig::prefetch_default(17), &t).run();
        let mut cfg = SystemConfig::prefetch_default(17);
        cfg.sync_dropout = 0.5;
        let flaky = Simulator::new(cfg, &t).run();
        assert!(flaky.syncs_dropped > 0, "faults must actually fire");
        // The system still settles every slot and every sold ad.
        assert_eq!(flaky.impressions + flaky.unfilled, flaky.slots);
        assert_eq!(
            flaky.ledger.billed + flaky.ledger.expired,
            flaky.ledger.sold
        );
        // Losing half the periodic syncs hurts but does not collapse the
        // system: piggybacked syncs carry the load.
        assert!(
            flaky.cache_hit_rate() > healthy.cache_hit_rate() * 0.5,
            "flaky {} vs healthy {}",
            flaky.cache_hit_rate(),
            healthy.cache_hit_rate()
        );
        assert!(flaky.sla_violation_rate() < 0.25);
    }

    #[test]
    fn single_shard_run_matches_sequential_run() {
        // One shard means stream 0, full budgets, and the whole trace:
        // the sharded path must reproduce `run()` bit-for-bit.
        let t = trace();
        let sequential = Simulator::new(SystemConfig::prefetch_default(9), &t).run();
        let sharded = Simulator::run_sharded(&SystemConfig::prefetch_default(9), &t, 1, 1);
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn sharded_report_is_independent_of_thread_count() {
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let one = Simulator::run_parallel(&cfg, &t, 1);
        let three = Simulator::run_parallel(&cfg, &t, 3);
        let eight = Simulator::run_parallel(&cfg, &t, 8);
        assert_eq!(one, three);
        assert_eq!(one, eight);
    }

    #[test]
    fn sharded_run_covers_the_whole_population() {
        let t = trace();
        let cfg = SystemConfig::prefetch_default(4);
        let r = Simulator::run_parallel(&cfg, &t, 2);
        assert_eq!(r.users, t.num_users());
        assert_eq!(r.per_user_energy_j.len(), t.num_users() as usize);
        assert_eq!(r.days, t.days());
        assert_eq!(
            r.slots,
            t.ad_slots(cfg.ad_refresh).len() as u64,
            "every slot is simulated in exactly one shard"
        );
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert_eq!(r.ledger.billed + r.ledger.expired, r.ledger.sold);
    }

    #[test]
    fn sharded_prefetch_still_saves_energy() {
        let t = trace();
        let rt = Simulator::run_parallel(&SystemConfig::realtime(1), &t, 2);
        let pf = Simulator::run_parallel(&SystemConfig::prefetch_default(1), &t, 2);
        assert!(
            pf.energy_savings_vs(&rt) > 0.40,
            "sharding must not destroy the paper's headline effect: {}",
            pf.summary()
        );
    }

    #[test]
    fn rng_streams_decorrelate_shard_randomness() {
        // Two configs differing only in stream draw different bid
        // randomness, while stream 0 reproduces the legacy derivation.
        let t = trace();
        let base = SystemConfig::prefetch_default(9);
        let mut streamed = base.clone();
        streamed.rng_stream = 1;
        let r0 = Simulator::new(base.clone(), &t).run();
        let r0_again = Simulator::new(base, &t).run();
        let r1 = Simulator::new(streamed, &t).run();
        assert_eq!(r0, r0_again);
        assert_ne!(
            r0.ledger.revenue, r1.ledger.revenue,
            "distinct streams should produce distinct auction outcomes"
        );
    }

    #[test]
    fn netem_disabled_runs_leave_all_netem_counters_zero() {
        let t = trace();
        let r = Simulator::new(SystemConfig::prefetch_default(1), &t).run();
        assert_eq!(r.netem, crate::report::NetemCounters::default());
        assert!(!r.summary().contains("netem"));
    }

    #[test]
    fn netem_flaky_link_fails_syncs_and_retries_recover_some() {
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(21);
        cfg.netem = adpf_netem::NetemConfig::flaky_cellular();
        let r = Simulator::new(cfg, &t).run();
        assert!(r.netem.sync_failures > 0, "flaky link must bite: {r:?}");
        assert!(r.netem.retries_scheduled > 0);
        assert!(
            r.netem.retries_succeeded > 0,
            "some retries must get through: {:?}",
            r.netem
        );
        assert!(r.netem.retries_succeeded <= r.netem.retries_scheduled);
        // Failures never break the books.
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert_eq!(r.ledger.billed + r.ledger.expired, r.ledger.sold);
        assert!(r.summary().contains("netem"));
    }

    #[test]
    fn netem_runs_are_deterministic() {
        let t = trace();
        let mk = || {
            let mut cfg = SystemConfig::prefetch_default(23);
            cfg.netem = adpf_netem::NetemConfig::degraded();
            cfg
        };
        let a = Simulator::new(mk(), &t).run();
        let b = Simulator::new(mk(), &t).run();
        assert_eq!(a, b);
    }

    #[test]
    fn netem_gates_realtime_mode_too() {
        let t = trace();
        let mut cfg = SystemConfig::realtime(25);
        cfg.netem = adpf_netem::NetemConfig::degraded();
        let r = Simulator::new(cfg, &t).run();
        assert!(r.netem.realtime_failures > 0);
        // A failed fetch leaves its slot unfilled, never half-billed.
        assert_eq!(r.impressions + r.unfilled, r.slots);
        assert!(r.unfilled >= r.netem.realtime_failures);
        assert_eq!(
            r.realtime_fetches + r.netem.realtime_failures,
            r.slots,
            "every slot either fetched or failed on the link"
        );
    }

    #[test]
    fn netem_outage_abandons_syncs_and_rescues_stranded_ads() {
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(27);
        // A half-population blackout two days in, long enough to outlive
        // the whole retry budget.
        cfg.netem = adpf_netem::NetemConfig::flaky_cellular().with_outage(
            48,
            SimDuration::from_hours(10),
            0.5,
        );
        let r = Simulator::new(cfg.clone(), &t).run();
        assert!(
            r.netem.syncs_abandoned > 0,
            "a 10h blackout must exhaust retry budgets: {:?}",
            r.netem
        );
        assert!(
            r.netem.ads_rescued > 0,
            "dark holders' ads must be re-replicated: {:?}",
            r.netem
        );
        assert_eq!(r.ledger.billed + r.ledger.expired, r.ledger.sold);

        // The outage must hurt relative to plain flaky conditions.
        let mut flaky_cfg = cfg;
        flaky_cfg.netem = adpf_netem::NetemConfig::flaky_cellular();
        let flaky = Simulator::new(flaky_cfg, &t).run();
        assert!(r.netem.sync_failures > flaky.netem.sync_failures);
    }

    #[test]
    #[should_panic(expected = "invalid SystemConfig")]
    fn invalid_config_panics() {
        let mut cfg = SystemConfig::prefetch_default(1);
        cfg.sla_target = 7.0;
        let _ = Simulator::new(cfg, &trace());
    }

    #[test]
    fn shard_derivation_keeps_historical_counts_for_small_populations() {
        // Every population at or below DEFAULT_SHARDS × USERS_PER_SHARD
        // users must derive exactly DEFAULT_SHARDS — that is what keeps
        // the report hashes recorded before derivation existed (smoke:
        // 40 users, e14: 300 users) byte-identical.
        for users in [0, 1, 40, 60, 300, 320] {
            assert_eq!(default_shards(users), DEFAULT_SHARDS, "{users} users");
        }
        // Production-scale populations grow past the floor…
        assert_eq!(default_shards(321), 9);
        assert_eq!(default_shards(600), 15);
        assert_eq!(default_shards(1_693), 43);
        // …up to the soft cap…
        assert_eq!(default_shards(100_000), MAX_SHARDS);
        // …which yields once it would breach the per-shard memory bound:
        // a million users derive enough shards to keep every shard at or
        // below MAX_USERS_PER_SHARD users, instead of 64 shards of
        // ~15,600.
        assert_eq!(default_shards(1_000_000), 489);
        for users in [200_000u32, 500_000, 1_000_000, 5_000_000] {
            let shards = default_shards(users);
            assert!(
                (users as usize).div_ceil(shards) <= MAX_USERS_PER_SHARD,
                "{users} users / {shards} shards breaches the memory bound"
            );
        }
    }

    #[test]
    fn prebuilt_context_matches_per_shard_construction() {
        // The hoisted ShardContext must be invisible: a simulator built
        // from a shared context equals one that rebuilt everything, for
        // every rng_stream a sharded run would use.
        let t = trace();
        let base = SystemConfig::prefetch_default(9);
        let ctx = ShardContext::new(&base);
        for stream in [0u64, 1, 7] {
            let mut cfg = base.clone();
            cfg.rng_stream = stream;
            let fresh = Simulator::new(cfg.clone(), &t).run();
            let shared = Simulator::with_context(cfg, &t, &ctx).run();
            assert_eq!(fresh, shared, "stream {stream} diverged");
        }
    }

    #[test]
    fn explicit_shard_counts_with_same_semantics_hash_identically() {
        // Shard counts beyond the population clamp back to it, so any
        // requested count that resolves to the same effective split must
        // produce the identical merged report (the documented semantics:
        // the effective count is what matters, not the requested one).
        let t = trace(); // 40 users.
        let cfg = SystemConfig::prefetch_default(9);
        let at_pop = Simulator::run_sharded(&cfg, &t, 40, 2);
        let clamped = Simulator::run_sharded(&cfg, &t, 1_000, 3);
        assert_eq!(at_pop, clamped);
    }

    #[test]
    fn stalled_shard_does_not_change_the_merged_report() {
        // Forcing shard 0 to finish last exercises the completion
        // orderings work stealing can produce; the shard-ordered merge
        // must hide them.
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let baseline = Simulator::run_sharded(&cfg, &t, DEFAULT_SHARDS, 1);
        let stalled = Simulator::run_sharded_with_hook(&cfg, &t, DEFAULT_SHARDS, 4, |shard| {
            if shard == 0 {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
        });
        assert_eq!(baseline, stalled);
    }

    #[test]
    fn observed_runs_match_plain_runs_at_every_thread_count() {
        // `--metrics` must be invisible to simulation outcomes: the
        // observed entry point returns the bit-identical report at any
        // thread count, and the deterministic part of the registry (the
        // simulated-event counts, with wall-clock timers dropped) is the
        // same no matter how the shards were scheduled.
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 8] {
            let plain = Simulator::run_parallel(&cfg, &t, threads);
            let (observed, reg) = Simulator::run_parallel_observed(&cfg, &t, threads);
            assert_eq!(
                plain, observed,
                "metrics changed the report at {threads} threads"
            );
            snapshots.push(reg.deterministic_snapshot());
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
    }

    #[test]
    fn registry_counters_agree_with_the_report() {
        let t = trace();
        let cfg = SystemConfig::prefetch_default(9);
        let (r, reg) = Simulator::run_parallel_observed(&cfg, &t, 2);
        assert_eq!(reg.counter_value("sim.event.slot"), r.slots);
        assert_eq!(reg.counter_value("sim.slots"), r.slots);
        assert_eq!(reg.counter_value("sim.impressions"), r.impressions);
        assert_eq!(reg.counter_value("sim.syncs"), r.syncs);
        assert_eq!(
            reg.counter_value("sim.replicas_assigned"),
            r.replicas_assigned
        );
        // Gauges merge by max, so the merged value is the largest shard
        // population, not the total.
        let users = reg.gauge_value("sim.users");
        assert!(users > 0 && users <= u64::from(r.users));
        // Observed sharded runs carry the pipeline-phase timers.
        assert!(reg.time_ns("phase.event_loop") > 0);
        // The energy residency histograms cover every simulated user.
        let active = reg
            .histogram_snapshot("energy.user.active_ms")
            .expect("residency histogram published");
        assert_eq!(active.count(), u64::from(r.users));
    }

    #[test]
    fn unobserved_sequential_run_still_feeds_the_netem_report_field() {
        // `SimReport::netem` is derived from the always-on registry, so
        // the plain `run()` path (no metrics requested) must still
        // produce populated counters under a degraded network.
        let t = trace();
        let mut cfg = SystemConfig::prefetch_default(17);
        cfg.netem = adpf_netem::NetemConfig::flaky_cellular();
        let r = Simulator::new(cfg, &t).run();
        assert!(
            r.netem.sync_failures > 0,
            "degraded network should fail some syncs"
        );
    }
}
