//! End-to-end ad-prefetching system (the paper's contribution).
//!
//! This crate wires the substrates together into the system evaluated by
//! *Prefetching mobile ads: can advertising systems afford it?* (EuroSys
//! 2013):
//!
//! 1. Clients replay an app-usage trace; every session start and 30-second
//!    refresh is an **ad slot**.
//! 2. In [`config::DeliveryMode::RealTime`] (the status quo), each slot
//!    triggers an exchange auction and a radio fetch — paying the full
//!    promotion + tail energy every time.
//! 3. In [`config::DeliveryMode::Prefetch`] (the paper's scheme), each
//!    client syncs with the ad server every prefetch interval. At a sync
//!    the server (a) ingests the client's impression reports and slot
//!    observations, (b) updates the client's demand predictor, (c) sells
//!    the *predicted* slots of the upcoming interval in the exchange as
//!    advance slots with a display deadline, (d) replicates each sold ad
//!    across clients using the overbooking planner so the SLA target is
//!    met despite prediction error, and (e) delivers assigned ads in one
//!    batched radio transfer. Slots that find the cache empty fall back to
//!    a real-time fetch.
//! 4. A [`report::SimReport`] captures the three currencies the paper
//!    trades: **energy** (promotion/transfer/tail joules of ad traffic),
//!    **revenue** (billed impressions minus refunds), and **SLA
//!    violations** (sold ads that expired undisplayed), plus duplicate
//!    displays, cache hit rates, and sync costs.
//!
//! # Examples
//!
//! ```
//! use adpf_core::{Simulator, SystemConfig, DeliveryMode};
//! use adpf_traces::PopulationConfig;
//!
//! let trace = PopulationConfig::small_test(1).generate();
//! let rt = Simulator::new(SystemConfig::realtime(1), &trace).run();
//! let pf = Simulator::new(SystemConfig::prefetch_default(1), &trace).run();
//! assert!(pf.energy.total_j() < rt.energy.total_j(), "prefetch must save energy");
//! ```

pub mod client;
pub mod config;
pub mod engine;
pub mod report;
pub mod scenario;
pub mod sim;

pub use config::{DeliveryMode, PlannerKind, SystemConfig};
pub use engine::{ClientEngine, EngineEvent, EngineScratch, SlotFeed};
pub use report::{NetemCounters, ScenarioCounters, SimReport};
pub use scenario::{CellCapacity, CellPolicy, DeviceClass, ScenarioConfig};
pub use sim::{
    default_shards, shard_configs, ShardContext, Simulator, DEFAULT_SHARDS, MAX_SHARDS,
    MAX_USERS_PER_SHARD, USERS_PER_SHARD,
};
