//! The per-client decision engine, extracted from the batch simulator.
//!
//! [`ClientEngine`] owns everything the ad server decides *per client*:
//! the columnar client state ([`ClientTable`]/`AdCache`), prediction,
//! overbooked replication, marketplace hooks, netem gating, and the
//! energy accounting — everything the old monolithic simulator owned
//! except the ad-slot stream itself. Slots are the engine's only
//! *external* events; syncs, retries, expiry sweeps, and pacing ticks
//! are *internal* events the engine schedules for itself on its own
//! [`EventQueue`].
//!
//! That split is what lets two very different drivers share one engine
//! bit for bit:
//!
//! - the batch [`Simulator`](crate::Simulator) iterates a precomputed,
//!   time-sorted slot vector ([`SlotFeed`]), and
//! - the online `adpf-serve` server feeds slots as they arrive over a
//!   socket or stdin, with no end-of-stream known in advance.
//!
//! Both follow the same driving rule, and it reproduces the historical
//! single-queue event order **exactly**:
//!
//! 1. before an external slot at time `t`, drain internal events
//!    scheduled strictly *before* `t` ([`drain_internal_before`]);
//! 2. handle the slot ([`on_slot`]);
//! 3. at end of stream, drain all remaining internal events
//!    ([`drain_internal`]) and [`finalize`].
//!
//! Why this is exact: the old simulator seeded *all* slots into the
//! queue first (sequence numbers `0..S`), so at equal timestamps a slot
//! always popped before any internal event — seeded or rescheduled —
//! and equal-time slots popped in slot-stream index order. Slot
//! handlers never schedule internal events, and internal handlers only
//! schedule strictly-future internal events, so "internal strictly
//! before `t`, then the slot at `t`" is precisely the old pop order.
//! The committed smoke golden and `tests/serving.rs` pin this.
//!
//! [`drain_internal_before`]: ClientEngine::drain_internal_before
//! [`on_slot`]: ClientEngine::on_slot
//! [`drain_internal`]: ClientEngine::drain_internal
//! [`finalize`]: ClientEngine::finalize

use adpf_auction::{AdId, CampaignCatalog, Exchange, ImpressionOutcome, Ledger, SlotOffer};
use adpf_desim::feed::EventFeed;
use adpf_desim::{EventQueue, InlineVec, SimDuration, SimTime, BUCKET_SPAN_MS};
use adpf_energy::{EnergyBreakdown, Radio};
use adpf_netem::NetworkModel;
use adpf_obs::{MetricId, MetricRegistry, ObsSink};
use adpf_overbooking::availability::{AvailabilityCache, ClientAvailability};
use adpf_overbooking::planner::{ReplicationPlanner, PLAN_INLINE};
use adpf_traces::{AdSlot, AppId, UserId, UserSlots};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{CachedAd, ClientTable};
use crate::config::{DeliveryMode, SystemConfig};
use crate::report::{metric_names, NetemCounters, ScenarioCounters, SimReport};
use crate::scenario::{CellPolicy, DeviceClass, CAP_PERIOD_MS};
use crate::sim::ShardContext;

/// Upper bound on ads sold at one sync, guarding against a pathological
/// predictor output flooding the exchange.
const MAX_SELL_PER_SYNC: u32 = 256;

/// Finalizes `z` through the 64-bit mix used by splitmix64/murmur3.
///
/// Used to spread the shard's `rng_stream` index across the seed space.
/// Every operation maps zero to zero, so stream 0 leaves the master seed
/// untouched — the unsharded derivation stays bit-identical.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z ^= z >> 33;
    z = z.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    z = z.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^= z >> 33;
    z
}

/// Pre-resolved ids for the counters the engine maintains on its hot
/// path. Resolving once at construction keeps every increment an array
/// index plus an integer add. All of these count simulated events, so
/// they are deterministic and safe to keep always on — which is what
/// lets `SimReport::netem` be *derived* from the registry while
/// `--metrics` toggles only export and wall-clock spans.
struct SimIds {
    ev_slot: MetricId,
    ev_sync: MetricId,
    ev_retry: MetricId,
    ev_sweep: MetricId,
    ev_pacing: MetricId,
    pool_builds: MetricId,
    pool_scored: MetricId,
    pool_rescored: MetricId,
    netem_sync_failures: MetricId,
    netem_retries_scheduled: MetricId,
    netem_retries_succeeded: MetricId,
    netem_syncs_abandoned: MetricId,
    netem_realtime_failures: MetricId,
    netem_ads_rescued: MetricId,
    netem_rescues_unplaced: MetricId,
    /// Scenario-layer metric ids; resolved (and therefore registered)
    /// only when the scenario layer is enabled, so scenario-off runs
    /// export exactly the legacy metric set.
    scen: Option<ScenIds>,
}

/// Pre-resolved ids for the scenario layer's user-cost metrics.
struct ScenIds {
    metered_down: MetricId,
    metered_up: MetricId,
    wasted_bytes: MetricId,
    wasted_ads: MetricId,
    cap_blocked: MetricId,
    cell_dropped: MetricId,
    cell_deferred: MetricId,
    display_latency: MetricId,
}

impl SimIds {
    fn resolve(reg: &MetricRegistry, scenario_enabled: bool) -> Self {
        SimIds {
            scen: scenario_enabled.then(|| ScenIds {
                metered_down: reg.counter(metric_names::SCEN_METERED_BYTES_DOWN),
                metered_up: reg.counter(metric_names::SCEN_METERED_BYTES_UP),
                wasted_bytes: reg.counter(metric_names::SCEN_WASTED_BYTES),
                wasted_ads: reg.counter(metric_names::SCEN_WASTED_ADS),
                cap_blocked: reg.counter(metric_names::SCEN_CAP_BLOCKED_SYNCS),
                cell_dropped: reg.counter(metric_names::SCEN_CELL_DROPPED),
                cell_deferred: reg.counter(metric_names::SCEN_CELL_DEFERRED),
                display_latency: reg.histogram(metric_names::SCEN_DISPLAY_LATENCY_MS),
            }),
            ev_slot: reg.counter("sim.event.slot"),
            ev_sync: reg.counter("sim.event.sync"),
            ev_retry: reg.counter("sim.event.retry"),
            ev_sweep: reg.counter("sim.event.expiry_sweep"),
            ev_pacing: reg.counter("sim.event.pacing"),
            pool_builds: reg.counter("sim.pool.builds"),
            pool_scored: reg.counter("sim.pool.candidates_scored"),
            pool_rescored: reg.counter("sim.pool.candidates_rescored"),
            netem_sync_failures: reg.counter(metric_names::NETEM_SYNC_FAILURES),
            netem_retries_scheduled: reg.counter(metric_names::NETEM_RETRIES_SCHEDULED),
            netem_retries_succeeded: reg.counter(metric_names::NETEM_RETRIES_SUCCEEDED),
            netem_syncs_abandoned: reg.counter(metric_names::NETEM_SYNCS_ABANDONED),
            netem_realtime_failures: reg.counter(metric_names::NETEM_REALTIME_FAILURES),
            netem_ads_rescued: reg.counter(metric_names::NETEM_ADS_RESCUED),
            netem_rescues_unplaced: reg.counter(metric_names::NETEM_RESCUES_UNPLACED),
        }
    }
}

/// Engine-side scenario state: per-client class/region assignments,
/// data-cap accounting, and the per-region cell-capacity windows.
/// Built only when `config.scenario.enabled`; its absence IS the
/// scenario-off gate (no extra branches cost anything on the legacy
/// path beyond one `Option` check).
struct ScenarioState {
    /// Resolved device classes. Never empty: a scenario with no classes
    /// gets one uniform class wrapping the config's base radio.
    classes: Vec<DeviceClass>,
    /// Per-client class index.
    class_of: Vec<u16>,
    /// Per-client cell region.
    region: Vec<u32>,
    /// Per-client metered flag (classes[class_of[i]].metered, flattened
    /// for the hot path).
    metered: Vec<bool>,
    /// Per-client period cap in bytes (0 = uncapped), flattened.
    cap_bytes: Vec<u64>,
    /// Metered bytes used in the client's current billing period.
    metered_used: Vec<u64>,
    /// Billing-period index the usage above belongs to (lazy reset).
    cap_period: Vec<u64>,
    cell_on: bool,
    /// This shard's share of the population-wide per-region ceiling.
    cell_limit: u32,
    cell_window_ms: u64,
    cell_policy: CellPolicy,
    cell_queue_delay: SimDuration,
    /// Current window index per region (u64::MAX = untouched).
    cell_window: Vec<u64>,
    /// Fetches admitted per region in the current window.
    cell_used: Vec<u32>,
}

impl ScenarioState {
    fn new(config: &SystemConfig, num_users: usize) -> Self {
        let sc = &config.scenario;
        let classes: Vec<DeviceClass> = if sc.classes.is_empty() {
            vec![DeviceClass {
                name: "uniform".into(),
                radio: config.radio.clone(),
                metered: true,
                monthly_cap_bytes: 0,
                weight: 1.0,
            }]
        } else {
            sc.classes.clone()
        };
        let mut class_of = Vec::with_capacity(num_users);
        let mut region = Vec::with_capacity(num_users);
        let mut metered = Vec::with_capacity(num_users);
        let mut cap_bytes = Vec::with_capacity(num_users);
        for u in 0..num_users {
            // Assignments key on the *global* user id, so every shard
            // (and the trace generator) agrees on who is who.
            let g = sc.user_offset as u64 + u as u64;
            let k = crate::scenario::class_index(sc.assign_seed, g, &classes);
            class_of.push(k as u16);
            region.push(crate::scenario::region_index(
                sc.assign_seed,
                g,
                sc.cell.regions,
            ));
            metered.push(classes[k].metered);
            cap_bytes.push(classes[k].monthly_cap_bytes);
        }
        let regions = sc.cell.regions.max(1) as usize;
        // Scale the population-wide ceiling down to this shard's user
        // share (budget_fraction already carries exactly that ratio), so
        // sharded runs enforce the same aggregate ceiling regardless of
        // shard count.
        let cell_limit =
            (((sc.cell.fetches_per_window as f64) * config.budget_fraction).round() as u32).max(1);
        ScenarioState {
            classes,
            class_of,
            region,
            metered,
            cap_bytes,
            metered_used: vec![0; num_users],
            cap_period: vec![0; num_users],
            cell_on: sc.cell.enabled,
            cell_limit,
            cell_window_ms: sc.cell.window.as_millis().max(1),
            cell_policy: sc.cell.policy,
            cell_queue_delay: sc.cell.queue_delay,
            cell_window: vec![u64::MAX; regions],
            cell_used: vec![0; regions],
        }
    }

    /// Whether client `ci`'s data budget for the period containing `now`
    /// is exhausted. Lazily resets usage at period boundaries.
    fn cap_blocks(&mut self, ci: usize, now: SimTime) -> bool {
        let cap = self.cap_bytes[ci];
        if cap == 0 {
            return false;
        }
        let period = now.as_millis() / CAP_PERIOD_MS;
        if self.cap_period[ci] != period {
            self.cap_period[ci] = period;
            self.metered_used[ci] = 0;
        }
        self.metered_used[ci] >= cap
    }
}

/// The engine's internal event alphabet.
///
/// Ad slots are deliberately absent: they are *external* inputs, pushed
/// by whatever drives the engine ([`ClientEngine::on_slot`]). Every
/// variant here is scheduled by the engine itself, strictly into the
/// future — the invariant the driving rule relies on.
#[derive(Debug, Clone, Copy)]
pub enum EngineEvent {
    /// Client `c` performs its periodic sync.
    Sync(u32),
    /// Client `c` retries a failed sync; `attempt` counts round trips
    /// already burnt (netem only).
    Retry {
        /// Client index.
        c: u32,
        /// Round trips already burnt on this sync.
        attempt: u32,
    },
    /// Periodic server-side expiry sweep.
    ExpirySweep,
    /// Periodic pacing-controller update across all paced campaigns
    /// (reactive marketplace only).
    Pacing,
}

/// The reusable allocation set of a [`ClientEngine`]: its internal event
/// queue plus every scratch and memo buffer.
///
/// A worker thread that simulates many shards hands the buffers from one
/// finished engine ([`ClientEngine::finalize_reclaim`]) to the next
/// ([`ClientEngine::with_scratch`]) so per-shard construction stops paying
/// the allocation (and warm-up) cost of the queue ring and scratch
/// vectors. Reuse is exact: construction clears every buffer, resets the
/// queue's sequence counter and window, and zero-fills the epoch vectors —
/// and every epoch/build-id scheme in the engine starts counting at 1, so
/// a zero-filled memo can never produce a false hit.
#[derive(Default)]
pub struct EngineScratch {
    queue: EventQueue<EngineEvent>,
    lambda_epoch: Vec<u64>,
    lambda_cache: Vec<f64>,
    pool_pos: Vec<u32>,
    pool_epoch: Vec<u64>,
    scratch_slot_times: Vec<SimTime>,
    scratch_outbox: Vec<CachedAd>,
    scratch_reports: Vec<(AdId, SimTime)>,
    scratch_cands: Vec<ClientAvailability>,
    scratch_meta: Vec<(f64, f64)>,
    scratch_due: Vec<(u64, SimTime)>,
    scratch_gather: Vec<(u32, SimTime)>,
    scratch_cancel: Vec<u64>,
    scratch_batch: Vec<(SimTime, EngineEvent)>,
}

/// A feed over a precomputed, time-sorted ad-slot stream: the batch
/// simulator's view of its trace, expressed as the same [`EventFeed`]
/// the online server implements over its ingest channel.
pub struct SlotFeed<'a> {
    slots: &'a [AdSlot],
    next: usize,
}

impl<'a> SlotFeed<'a> {
    /// Wraps a slot slice; the slice must be sorted by `(time, user)`
    /// (what [`Trace::ad_slots`](adpf_traces::Trace::ad_slots) returns).
    pub fn new(slots: &'a [AdSlot]) -> Self {
        Self { slots, next: 0 }
    }
}

impl EventFeed for SlotFeed<'_> {
    type Event = (UserId, AppId);

    fn next(&mut self) -> Option<(SimTime, Self::Event)> {
        let s = self.slots.get(self.next)?;
        self.next += 1;
        Some((s.time, (s.user, s.app)))
    }
}

/// One client shard's decision core: per-client state machines,
/// prediction, overbooked replication, and marketplace hooks, driven by
/// external ad-slot events plus a self-scheduled internal event queue.
///
/// Construction precomputes per-client state; driving it (via
/// [`ClientEngine::drive`] or the `on_slot`/`drain_*` primitives) and
/// then [`ClientEngine::finalize`] produces a [`SimReport`]. Runs are
/// deterministic: the same `(config, slot stream)` pair always yields
/// the same report.
pub struct ClientEngine {
    config: SystemConfig,
    clients: ClientTable,
    horizon: SimTime,
    days: u32,
    exchange: Exchange,
    ledger: Ledger,
    tracker: adpf_overbooking::reconcile::ReplicaTracker,
    planner: Box<dyn ReplicationPlanner>,
    /// Internal (self-scheduled) events only; external slots never enter.
    queue: EventQueue<EngineEvent>,
    /// Cached time of the earliest internal event, so the per-slot
    /// "anything due before `t`?" check is a compare, not a queue scan.
    next_internal: Option<SimTime>,
    /// Drain internal events one near-lane bucket at a time instead of
    /// one event at a time. True only when `config.batched` is set AND
    /// every self-scheduling delta of this configuration is at least one
    /// bucket span, which is what makes batching *exact* (see
    /// [`ClientEngine::drain_internal_before`]).
    batched: bool,
    cand_cursor: usize,
    /// Randomness for failure injection (sync dropout).
    fault_rng: StdRng,
    syncs_dropped: u64,
    /// Per-client network channels; `None` when netem is disabled, in
    /// which case every link query short-circuits to "ideal" without
    /// consuming randomness — the legacy code path, bit for bit.
    net: Option<NetworkModel>,
    /// Scenario-layer state; `None` when the scenario is disabled, in
    /// which case every scenario query short-circuits to the legacy
    /// behavior without touching any counter — bit for bit.
    scen: Option<ScenarioState>,
    /// The run's metric registry. Always on: every value written during
    /// the run is a count of simulated events, merged shard-order like
    /// the report itself, so observability can never perturb outcomes.
    /// `SimReport::netem` is derived from it at finalize.
    pub(crate) obs: MetricRegistry,
    /// Pre-resolved ids into `obs` for the hot-path counters.
    mid: SimIds,
    /// Scratch for the rescue scan's due-ad list.
    scratch_due: Vec<(u64, SimTime)>,
    /// Memoized bursty-availability evaluator (exact, keyed on lambda
    /// bits) shared by every `place_ad` call.
    avail: AvailabilityCache,
    /// Monotone counter bumped at each `sync_body`; versions the
    /// per-client `expected_rate` memo below.
    sync_epoch: u64,
    /// `lambda_cache[j]` is valid iff `lambda_epoch[j] == sync_epoch`.
    /// Within one sync every candidate's predictor state, `next_sync`,
    /// and the sale deadline are frozen, so a client's expected rate is
    /// identical across the ads sold at that sync — computing it once
    /// per client per sync is exact, not approximate.
    lambda_epoch: Vec<u64>,
    lambda_cache: Vec<f64>,
    /// Monotone id of the last candidate-pool build; versions the
    /// `pool_pos` memo below.
    pool_build_id: u64,
    /// `pool_pos[j]` is client `j`'s index into `scratch_cands`, valid
    /// iff `pool_epoch[j] == pool_build_id` — an O(1) handle that
    /// replaces the linear pool scan when a holder must be re-scored.
    pool_pos: Vec<u32>,
    pool_epoch: Vec<u64>,
    // Scratch buffers reused across syncs so the hot path never
    // allocates: each holds the retained capacity of whatever client
    // vector it was last swapped with.
    scratch_slot_times: Vec<SimTime>,
    scratch_outbox: Vec<CachedAd>,
    scratch_reports: Vec<(AdId, SimTime)>,
    scratch_cands: Vec<ClientAvailability>,
    /// `(lambda, mean_session_slots)` per pool entry, aligned with
    /// `scratch_cands` — the inputs needed to re-score an entry.
    scratch_meta: Vec<(f64, f64)>,
    /// Per-build `(client, score-window start)` pairs from the gather
    /// phase of the pool build, aligned with `scratch_cands`.
    scratch_gather: Vec<(u32, SimTime)>,
    /// Cancellation ids drained from the tracker at a sync, without
    /// surrendering the tracker queue's allocation.
    scratch_cancel: Vec<u64>,
    /// One near-lane bucket's events, drained at a time by the batched
    /// internal-event loop.
    scratch_batch: Vec<(SimTime, EngineEvent)>,
    // Counters.
    /// External slot events seen; the engine has no slot vector of its
    /// own, so this is what `SimReport::slots` reports.
    slots_seen: u64,
    impressions: u64,
    cache_hits: u64,
    realtime_fetches: u64,
    unfilled: u64,
    syncs: u64,
    syncs_skipped: u64,
    replicas_assigned: u64,
}

impl ClientEngine {
    /// Builds an engine for `config` over a population of
    /// `slots_by_user.num_users()` clients.
    ///
    /// `slots_by_user` is consulted only by predictors that need the
    /// future slot stream at construction (the oracle); every other
    /// predictor starts cold, so online drivers — which cannot know the
    /// future — pass an empty view and must reject the oracle.
    /// `horizon` and `days` are the trace bounds the batch pipeline
    /// reads off its `Trace` and an online server reads off its stream
    /// header.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails — configurations are built in
    /// code, so an invalid one is a programming error.
    pub fn new(
        config: SystemConfig,
        slots_by_user: &UserSlots,
        horizon: SimTime,
        days: u32,
        ctx: &ShardContext,
    ) -> Self {
        Self::with_scratch(
            config,
            slots_by_user,
            horizon,
            days,
            ctx,
            EngineScratch::default(),
        )
    }

    /// [`ClientEngine::new`], recycling the allocations of a previous
    /// engine's [`EngineScratch`]. Behaviorally identical to building
    /// from a fresh scratch set.
    pub fn with_scratch(
        config: SystemConfig,
        slots_by_user: &UserSlots,
        horizon: SimTime,
        days: u32,
        ctx: &ShardContext,
        scratch: EngineScratch,
    ) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid SystemConfig: {reason}");
        }
        let EngineScratch {
            mut queue,
            mut lambda_epoch,
            mut lambda_cache,
            mut pool_pos,
            mut pool_epoch,
            mut scratch_slot_times,
            mut scratch_outbox,
            mut scratch_reports,
            mut scratch_cands,
            mut scratch_meta,
            mut scratch_due,
            mut scratch_gather,
            mut scratch_cancel,
            mut scratch_batch,
        } = scratch;
        queue.reset();
        scratch_slot_times.clear();
        scratch_outbox.clear();
        scratch_reports.clear();
        scratch_cands.clear();
        scratch_meta.clear();
        scratch_due.clear();
        scratch_gather.clear();
        scratch_cancel.clear();
        scratch_batch.clear();
        let num_users = slots_by_user.num_users();
        let scen = config
            .scenario
            .enabled
            .then(|| ScenarioState::new(&config, num_users));
        let mut clients = ClientTable::with_capacity(num_users);
        for u in 0..num_users {
            // Mixed populations bind each client the radio of its device
            // class; scenario-off keeps the config's single radio.
            let radio = match &scen {
                Some(s) => Radio::new(s.classes[s.class_of[u] as usize].radio.clone()),
                None => Radio::new(config.radio.clone()),
            };
            clients.push(radio, config.predictor.build(slots_by_user.user(u)));
        }

        // The campaign catalog is built from the master seed alone (it
        // lives in the shared context), so every shard of a sharded run
        // sees the same advertisers; only the per-run randomness (bid
        // sampling, fault injection) switches to the shard's stream, and
        // budgets shrink to the shard's population share so combined
        // spending can never exceed the global budgets.
        let stream_seed = config.seed ^ mix64(config.rng_stream);
        let mut exchange = Exchange::new(ctx.campaigns.clone(), config.seed);
        exchange.advance_discount = config.advance_discount;
        exchange.reseed_bids(stream_seed);
        exchange.scale_budgets(config.budget_fraction);
        if config.marketplace.enabled {
            // After scale_budgets: pacing schedules must cover the
            // shard's budget share, not the global budget, so the
            // shards' combined paced spend targets the global schedule.
            exchange.configure_marketplace(&config.marketplace, &ctx.campaign_types);
        }

        // Seeding order mirrors the historical single queue (slots came
        // first there; here they are external): staggered first syncs in
        // client order, then the first expiry sweep, then the first
        // pacing tick. FIFO tie-breaking preserves this relative order
        // at equal timestamps.
        if config.mode == DeliveryMode::Prefetch {
            // Stagger first syncs evenly across the interval so the server
            // load (and replica delivery opportunities) spread out.
            let interval_ms = config.prefetch_interval.as_millis();
            let n = clients.len().max(1) as u64;
            for i in 0..clients.len() {
                let offset = SimDuration::from_millis(interval_ms * (i as u64 % n) / n);
                clients.next_sync[i] = SimTime::ZERO + offset;
                queue.push(clients.next_sync[i], EngineEvent::Sync(i as u32));
            }
            queue.push(SimTime::from_hours(1), EngineEvent::ExpirySweep);
        }
        if exchange.has_pacers() {
            // Pacing applies in both delivery modes: the exchange paces
            // real-time and advance sales alike. Marketplace-off (and
            // static-marketplace) runs schedule no pacing events, so the
            // legacy event stream is untouched.
            queue.push(
                SimTime::ZERO + config.marketplace.pacing_interval,
                EngineEvent::Pacing,
            );
        }
        let next_internal = queue.peek_time();
        let batched = config.batched && Self::batching_is_exact(&config, exchange.has_pacers());

        let planner = config.planner.build();
        let fault_rng = StdRng::seed_from_u64(stream_seed ^ 0xd20_0ff);
        let avail = AvailabilityCache::new(config.availability_dispersion);
        let n_clients = clients.len();
        let candidate_pool = config.candidate_pool;
        let net = config
            .netem
            .enabled
            .then(|| NetworkModel::new(config.netem.clone(), n_clients, stream_seed));
        let obs = MetricRegistry::new();
        let mid = SimIds::resolve(&obs, config.scenario.enabled);
        lambda_epoch.clear();
        lambda_epoch.resize(n_clients, 0);
        lambda_cache.clear();
        lambda_cache.resize(n_clients, 0.0);
        pool_pos.clear();
        pool_pos.resize(n_clients, 0);
        pool_epoch.clear();
        pool_epoch.resize(n_clients, 0);
        scratch_cands.reserve(candidate_pool);
        scratch_meta.reserve(candidate_pool);
        Self {
            config,
            avail,
            sync_epoch: 0,
            lambda_epoch,
            lambda_cache,
            pool_build_id: 0,
            pool_pos,
            pool_epoch,
            scratch_slot_times,
            scratch_outbox,
            scratch_reports,
            scratch_cands,
            scratch_meta,
            scratch_gather,
            scratch_cancel,
            scratch_batch,
            clients,
            horizon,
            days,
            exchange,
            ledger: Ledger::new(),
            tracker: adpf_overbooking::reconcile::ReplicaTracker::new(),
            planner,
            queue,
            next_internal,
            batched,
            cand_cursor: 0,
            fault_rng,
            syncs_dropped: 0,
            net,
            scen,
            obs,
            mid,
            scratch_due,
            slots_seen: 0,
            impressions: 0,
            cache_hits: 0,
            realtime_fetches: 0,
            unfilled: 0,
            syncs: 0,
            syncs_skipped: 0,
            replicas_assigned: 0,
        }
    }

    /// Whether draining internal events one near-lane bucket at a time
    /// is *exactly* equivalent to popping them one at a time for this
    /// configuration.
    ///
    /// A drained bucket's events all have times inside one
    /// [`BUCKET_SPAN_MS`]-wide window, and internal handlers schedule
    /// only strictly-future events at `now + delta`. If every `delta`
    /// the configuration can produce is at least one bucket span, any
    /// newly scheduled event lands at or past the bucket's end — i.e.
    /// after every event of the batch being dispatched — and with a
    /// larger sequence number than anything already queued, so the
    /// batched dispatch order is bit-identical to the legacy pop order.
    /// The deltas to check: the sync period (sync reschedule), the
    /// pacing period (pacing reschedule), and the minimum jittered retry
    /// backoff (netem; `base × (1 − jitter/2)`, truncated to ms exactly
    /// like `NetworkModel::backoff`). The expiry sweep reschedules at a
    /// fixed one hour, always safe. Default configurations sit far above
    /// the 1.024 s span (2 h syncs, minutes-scale backoff bases);
    /// anything faster silently falls back to the one-at-a-time drain.
    fn batching_is_exact(config: &SystemConfig, has_pacers: bool) -> bool {
        if config.mode == DeliveryMode::Prefetch {
            if config.prefetch_interval.as_millis() < BUCKET_SPAN_MS {
                return false;
            }
            let retry = &config.netem.retry;
            if config.netem.enabled && retry.max_retries > 0 {
                let min_backoff_ms =
                    (retry.base.as_millis() as f64 * (1.0 - retry.jitter / 2.0)) as u64;
                if min_backoff_ms < BUCKET_SPAN_MS {
                    return false;
                }
            }
        }
        if has_pacers && config.marketplace.pacing_interval.as_millis() < BUCKET_SPAN_MS {
            return false;
        }
        true
    }

    /// Number of clients this engine owns.
    pub fn num_users(&self) -> usize {
        self.clients.len()
    }

    /// The trace horizon the engine was built against.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Drives the engine from an external slot feed to exhaustion and
    /// leaves it ready to [`ClientEngine::finalize`]: the driving rule
    /// (drain-before, slot, drain-at-end) in one place.
    pub fn drive<F: EventFeed<Event = (UserId, AppId)>>(&mut self, feed: &mut F) {
        while let Some((t, (user, app))) = feed.next() {
            self.drain_internal_before(t);
            self.on_slot(t, user, app);
        }
        self.drain_internal();
    }

    /// Runs every internal event scheduled strictly before `t`. Call
    /// immediately before handing the engine an external slot at `t`.
    ///
    /// On the batched path this pulls a whole near-lane bucket of due
    /// events out of the queue at once and dispatches them from a flat
    /// buffer — one queue traversal and re-anchor per ~thousand events
    /// instead of per event. [`ClientEngine::batching_is_exact`] is what
    /// guarantees the dispatch order (and therefore every report bit)
    /// matches the one-at-a-time pop loop.
    pub fn drain_internal_before(&mut self, t: SimTime) {
        if self.batched {
            self.drain_batched_before(t);
            return;
        }
        while self.next_internal.is_some_and(|nt| nt < t) {
            let (now, ev) = self.queue.pop().expect("next_internal was Some");
            self.dispatch(now, ev);
            self.next_internal = self.queue.peek_time();
        }
    }

    /// Batched drain loop: one head bucket per iteration. Handlers may
    /// schedule new events mid-batch, but `batching_is_exact` guarantees
    /// those land strictly past the bucket being dispatched, so the
    /// drained buffer is never stale.
    fn drain_batched_before(&mut self, t: SimTime) {
        while self.next_internal.is_some_and(|nt| nt < t) {
            let mut batch = std::mem::take(&mut self.scratch_batch);
            let n = self.queue.drain_near_bucket(t, &mut batch);
            debug_assert!(n > 0, "peek promised an event before {t:?}");
            for &(now, ev) in &batch {
                self.dispatch(now, ev);
            }
            batch.clear();
            self.scratch_batch = batch;
            self.next_internal = self.queue.peek_time();
            if n == 0 {
                break; // Defensive: never spin if the queue disagrees.
            }
        }
    }

    /// Runs all remaining internal events (end of the external stream).
    pub fn drain_internal(&mut self) {
        if self.batched {
            self.drain_batched_before(SimTime::MAX);
        }
        // Unbatched path — and, under batching, any leftover events at
        // exactly `SimTime::MAX` (excluded above by the strict bound).
        while let Some((now, ev)) = self.queue.pop() {
            self.dispatch(now, ev);
        }
        self.next_internal = None;
    }

    /// Schedules an internal event, keeping the cached earliest time.
    fn schedule(&mut self, at: SimTime, ev: EngineEvent) {
        if self.next_internal.is_none_or(|nt| at < nt) {
            self.next_internal = Some(at);
        }
        self.queue.push(at, ev);
    }

    fn dispatch(&mut self, now: SimTime, event: EngineEvent) {
        match event {
            EngineEvent::Sync(c) => {
                self.obs.inc(self.mid.ev_sync, 1);
                self.on_sync(now, c)
            }
            EngineEvent::Retry { c, attempt } => {
                self.obs.inc(self.mid.ev_retry, 1);
                self.on_retry(now, c, attempt)
            }
            EngineEvent::ExpirySweep => {
                self.obs.inc(self.mid.ev_sweep, 1);
                self.on_expiry_sweep(now)
            }
            EngineEvent::Pacing => {
                self.obs.inc(self.mid.ev_pacing, 1);
                self.on_pacing(now)
            }
        }
    }

    /// Handles one external ad-slot event: client `user` renders a slot
    /// of app `app` at `now`. The caller must present slots in
    /// non-decreasing time order and call
    /// [`ClientEngine::drain_internal_before`]`(now)` first.
    pub fn on_slot(&mut self, now: SimTime, user: UserId, app: AppId) {
        self.obs.inc(self.mid.ev_slot, 1);
        self.slots_seen += 1;
        let ci = user.0 as usize;
        let category = Self::app_category(app);
        match self.config.mode {
            DeliveryMode::RealTime => match self.cell_admit(ci, now) {
                None => self.unfilled += 1,
                Some(delay) => self.gated_realtime_fetch(ci, now, category, delay),
            },
            DeliveryMode::Prefetch => {
                self.clients.slot_times[ci].push(now);
                if let Some(ad) =
                    self.clients.cache[ci].take_displayable(now, self.config.replica_window)
                {
                    self.clients.pending_reports[ci].push((ad.id, now));
                    self.impressions += 1;
                    self.cache_hits += 1;
                    // A cached ad renders instantly: the user-facing
                    // display latency is zero.
                    if let Some(ids) = &self.mid.scen {
                        self.obs.observe_id(ids.display_latency, 0);
                    }
                } else if self.config.realtime_fallback {
                    if self.prefetch_cap_blocks(ci, now) {
                        // Data budget exhausted: the piggybacked prefetch
                        // sync may not ride along, but the slot is live
                        // now — serve it with a plain realtime fetch
                        // (which still meters).
                        match self.cell_admit(ci, now) {
                            None => self.unfilled += 1,
                            Some(delay) => self.gated_realtime_fetch(ci, now, category, delay),
                        }
                    } else if self.config.piggyback_on_fallback {
                        match self.cell_admit(ci, now) {
                            None => self.unfilled += 1,
                            Some(cell_delay) => {
                                // The radio must wake for this fetch
                                // anyway; ride the same wakeup with a
                                // full sync — if the link lets the round
                                // trip through at all.
                                match self.net.as_mut().map(|net| net.attempt(ci, now)) {
                                    Some(v) if !v.ok => {
                                        // The slot is gone; there is no
                                        // later moment to retry a display
                                        // into. The radio still pays for
                                        // the timeout.
                                        self.obs.inc(self.mid.netem_realtime_failures, 1);
                                        self.unfilled += 1;
                                        self.clients.radio[ci].stall(now, v.latency);
                                    }
                                    verdict => {
                                        // Any cell queueing delay rides
                                        // the same stall (and latency
                                        // sample) as the link's round
                                        // trip; zero on the legacy path.
                                        let latency =
                                            verdict.map(|v| v.latency).unwrap_or(SimDuration::ZERO)
                                                + cell_delay;
                                        self.sync_body(ci, now, Some(category), latency);
                                    }
                                }
                            }
                        }
                    } else {
                        match self.cell_admit(ci, now) {
                            None => self.unfilled += 1,
                            Some(delay) => self.gated_realtime_fetch(ci, now, category, delay),
                        }
                    }
                } else {
                    self.unfilled += 1;
                }
            }
        }
    }

    /// Admits a realtime fetch through the per-region cell-capacity
    /// ceiling. Returns the queueing delay to charge (zero off the
    /// ceiling or with the scenario disabled), or `None` when the region
    /// is saturated and the policy drops the fetch — the caller leaves
    /// the slot unfilled.
    fn cell_admit(&mut self, ci: usize, now: SimTime) -> Option<SimDuration> {
        let Some(s) = self.scen.as_mut() else {
            return Some(SimDuration::ZERO);
        };
        if !s.cell_on {
            return Some(SimDuration::ZERO);
        }
        let r = s.region[ci] as usize;
        let w = now.as_millis() / s.cell_window_ms;
        if s.cell_window[r] != w {
            s.cell_window[r] = w;
            s.cell_used[r] = 0;
        }
        s.cell_used[r] += 1;
        if s.cell_used[r] <= s.cell_limit {
            return Some(SimDuration::ZERO);
        }
        let ids = self
            .mid
            .scen
            .as_ref()
            .expect("scenario ids exist with state");
        match s.cell_policy {
            CellPolicy::Drop => {
                self.obs.inc(ids.cell_dropped, 1);
                None
            }
            CellPolicy::Defer => {
                self.obs.inc(ids.cell_deferred, 1);
                Some(s.cell_queue_delay)
            }
        }
    }

    /// Whether client `ci`'s data-plan budget blocks prefetch syncing
    /// right now. False whenever the scenario layer is off.
    fn prefetch_cap_blocks(&mut self, ci: usize, now: SimTime) -> bool {
        let Some(s) = self.scen.as_mut() else {
            return false;
        };
        if !s.cap_blocks(ci, now) {
            return false;
        }
        let ids = self
            .mid
            .scen
            .as_ref()
            .expect("scenario ids exist with state");
        self.obs.inc(ids.cap_blocked, 1);
        true
    }

    /// Adds a transfer to the metered-bytes accounting when the client's
    /// traffic is metered. No-op with the scenario layer off.
    fn meter(&mut self, ci: usize, down: u64, up: u64) {
        let Some(s) = self.scen.as_mut() else { return };
        if !s.metered[ci] {
            return;
        }
        let ids = self
            .mid
            .scen
            .as_ref()
            .expect("scenario ids exist with state");
        self.obs.inc(ids.metered_down, down);
        self.obs.inc(ids.metered_up, up);
        s.metered_used[ci] += down + up;
    }

    /// Records the user-facing display latency of a fetched ad: the
    /// class radio's transfer time for one creative plus any link
    /// latency and cell queueing delay (`extra`). No-op with the
    /// scenario layer off.
    fn record_display_latency(&mut self, ci: usize, extra: SimDuration) {
        let Some(s) = &self.scen else { return };
        let Some(ids) = &self.mid.scen else { return };
        let prof = &s.classes[s.class_of[ci] as usize].radio;
        let t = prof.transfer_time(self.config.ad_bytes_down, self.config.ad_bytes_up) + extra;
        self.obs.observe_id(ids.display_latency, t.as_millis());
    }

    /// Maps an app to its marketplace category for contextual targeting.
    fn app_category(app: AppId) -> u8 {
        (app.0 % CampaignCatalog::NUM_CATEGORIES as u16) as u8
    }

    /// [`ClientEngine::realtime_fetch`] gated by the network channel: on
    /// a dead link the slot goes unfilled (a display moment cannot be
    /// retried) and the radio pays a wasted timeout; on a degraded link
    /// the fetch succeeds but holds the radio for the extra latency.
    /// `extra` is a cell-capacity queueing delay to charge on top
    /// (always zero on the legacy path). With netem disabled and no
    /// delay this is exactly `realtime_fetch`.
    fn gated_realtime_fetch(&mut self, ci: usize, now: SimTime, category: u8, extra: SimDuration) {
        let mut lat = extra;
        if let Some(net) = self.net.as_mut() {
            let v = net.attempt(ci, now);
            if !v.ok {
                self.obs.inc(self.mid.netem_realtime_failures, 1);
                self.unfilled += 1;
                self.clients.radio[ci].stall(now, v.latency);
                return;
            }
            lat += v.latency;
        }
        if !lat.is_zero() {
            self.clients.radio[ci].stall(now, lat);
        }
        self.realtime_fetch(ci, now, category, lat);
    }

    /// Status-quo path: wake the radio, auction the slot in real time, and
    /// bill immediately. `extra_latency` is the link + queueing stall
    /// already charged by the caller, folded into the display-latency
    /// sample only.
    fn realtime_fetch(
        &mut self,
        ci: usize,
        now: SimTime,
        category: u8,
        extra_latency: SimDuration,
    ) {
        self.clients.radio[ci].transfer(now, self.config.ad_bytes_down, self.config.ad_bytes_up);
        self.meter(ci, self.config.ad_bytes_down, self.config.ad_bytes_up);
        self.realtime_fetches += 1;
        let offer = SlotOffer::realtime(now, Some(category));
        if let Some(sold) = self.exchange.run_auction(&offer) {
            self.ledger.record_sale(&sold);
            let outcome = self.ledger.record_impression(sold.id, now);
            debug_assert_eq!(outcome, ImpressionOutcome::Billed);
            self.impressions += 1;
            self.record_display_latency(ci, extra_latency);
        } else {
            self.unfilled += 1;
        }
    }

    fn on_sync(&mut self, now: SimTime, c: u32) {
        let ci = c as usize;
        // Failure injection: the device may be unreachable for this
        // periodic sync; everything pending simply waits for the next
        // opportunity.
        let dropped = self.config.sync_dropout > 0.0
            && self.fault_rng.gen::<f64>() < self.config.sync_dropout;
        if dropped {
            self.syncs_dropped += 1;
        } else if self.prefetch_cap_blocks(ci, now) {
            // Data-plan budget exhausted: skip this period's prefetch
            // sync entirely (no transfer, no selling). The counter was
            // bumped by the check; the next period resets the budget.
        } else {
            self.attempt_sync(ci, now, 0);
        }

        // Schedule the next periodic sync; one extra period past the
        // horizon flushes final reports.
        let next = now + self.config.prefetch_interval;
        if next <= self.horizon + self.config.prefetch_interval {
            self.clients.next_sync[ci] = next;
            self.schedule(next, EngineEvent::Sync(c));
        }
    }

    /// Runs a sync through the network channel: a failed round trip costs
    /// a wasted radio wakeup and schedules a backoff retry; a successful
    /// one proceeds to [`ClientEngine::sync_body`] carrying the link's
    /// extra latency. `attempt` is the number of round trips already
    /// burnt on this sync (0 for the periodic attempt). With netem
    /// disabled this is exactly `sync_body` on an ideal link.
    fn attempt_sync(&mut self, ci: usize, now: SimTime, attempt: u32) {
        let Some(net) = self.net.as_mut() else {
            self.sync_body(ci, now, None, SimDuration::ZERO);
            return;
        };
        let v = net.attempt(ci, now);
        if v.ok {
            if attempt > 0 {
                self.obs.inc(self.mid.netem_retries_succeeded, 1);
            }
            self.sync_body(ci, now, None, v.latency);
            return;
        }
        // The handshake went out and nothing came back: the radio woke,
        // spent the uplink overhead plus the timeout, and got nothing —
        // the wasted-wakeup energy the tail model makes expensive.
        self.obs.inc(self.mid.netem_sync_failures, 1);
        self.clients.radio[ci].transfer(now, 0, self.config.sync_overhead_bytes);
        self.meter(ci, 0, self.config.sync_overhead_bytes);
        self.clients.radio[ci].stall(now, v.latency);
        self.schedule_retry(ci, now, attempt);
    }

    /// Schedules the next backoff retry after a failed sync attempt, or
    /// gives up once the policy's retry budget is spent.
    fn schedule_retry(&mut self, ci: usize, now: SimTime, attempt: u32) {
        let Some(net) = self.net.as_mut() else { return };
        if attempt >= net.retry().max_retries {
            self.obs.inc(self.mid.netem_syncs_abandoned, 1);
            return;
        }
        let at = now + net.backoff(ci, attempt);
        // Same scheduling bound as periodic syncs: one interval past the
        // horizon still flushes reports, anything later is pointless.
        if at <= self.horizon + self.config.prefetch_interval {
            self.obs.inc(self.mid.netem_retries_scheduled, 1);
            self.clients.retry_pending[ci] = true;
            self.schedule(
                at,
                EngineEvent::Retry {
                    c: ci as u32,
                    attempt: attempt + 1,
                },
            );
        }
    }

    fn on_retry(&mut self, now: SimTime, c: u32, attempt: u32) {
        let ci = c as usize;
        // A sync completed since this retry was scheduled (periodic or
        // piggybacked); the client has nothing left to retry.
        if !self.clients.retry_pending[ci] {
            return;
        }
        self.clients.retry_pending[ci] = false;
        self.attempt_sync(ci, now, attempt);
    }

    /// One client/server sync: report, observe, cancel, deliver, sell,
    /// transfer. With `rt_fetch = Some(category)` the sync also serves the
    /// current slot via a real-time auction, sharing the radio wakeup
    /// (piggybacking). `link_latency` is the channel's extra round-trip
    /// stall, charged only if the sync actually wakes the radio.
    fn sync_body(
        &mut self,
        ci: usize,
        now: SimTime,
        rt_fetch: Option<u8>,
        link_latency: SimDuration,
    ) {
        let c = ci as u32;
        // This sync got through, so any outstanding retry is obsolete.
        self.clients.retry_pending[ci] = false;
        // New epoch: every per-client expected-rate memo entry from the
        // previous sync is now stale.
        self.sync_epoch += 1;

        // 1. Update the server-side demand model with the observed period.
        //    Swapping with the scratch buffer (instead of `mem::take`)
        //    hands the client back a vector with retained capacity, so
        //    next interval's slot pushes don't regrow from zero.
        std::mem::swap(
            &mut self.scratch_slot_times,
            &mut self.clients.slot_times[ci],
        );
        let last = self.clients.last_sync[ci];
        self.clients.predictor[ci].observe(last, now, &self.scratch_slot_times);
        self.scratch_slot_times.clear();
        self.clients.cache[ci].purge_expired(now);

        // 2. Sell the predicted slots of the next interval and place them.
        //    The sell margin scales how aggressively predictions convert
        //    into inventory; overbooking and cancellation contain the
        //    downside of overselling.
        let predicted = self.clients.predictor[ci].predict(now, self.config.prefetch_interval);
        let have = self.clients.cache[ci].primary_count() as i64;
        let want = (predicted * self.config.sell_margin).round() as i64;
        let to_sell = (((want - have).max(0)) as u32).min(MAX_SELL_PER_SYNC);
        let mut delivered_primaries = 0u64;
        // All ads sold at this sync share one deadline (`now`, config,
        // and horizon are fixed for the duration), and therefore one
        // replica-candidate pool. The pool is evaluated once, lazily, at
        // the first sale that needs replicas; later sales reuse it, with
        // only the entries whose queue depth changed re-scored through
        // the availability cache (which extends the memoized Poisson
        // series instead of recomputing it).
        let deadline = (now + self.config.deadline).min(self.horizon);
        let mut pool_built = false;
        for _ in 0..to_sell {
            // Don't sell display windows that extend beyond the trace.
            if deadline <= now {
                break;
            }
            let offer = SlotOffer::advance(now, deadline);
            let Some(sold) = self.exchange.run_auction(&offer) else {
                break; // Exchange demand exhausted.
            };
            self.ledger.record_sale(&sold);
            let holders = self.place_ad(ci, now, deadline, &mut pool_built);
            self.replicas_assigned += holders.len() as u64 - 1;
            self.tracker.register(sold.id.0, &holders, deadline);
            // The first holder in placement order is the primary copy; the
            // rest are insurance replicas that display only after the
            // holder's own primaries.
            for (rank, &h) in holders.iter().enumerate() {
                self.clients.queued[h as usize] += 1;
                let cached = CachedAd {
                    id: sold.id,
                    deadline,
                    replica: rank > 0,
                };
                if h as usize == ci {
                    self.clients.cache[ci].insert(cached);
                    delivered_primaries += 1;
                } else {
                    self.clients.outbox[h as usize].push(cached);
                }
            }
            // Re-score the pool entries of the replica holders just
            // loaded: their queue depth grew, so their availability for
            // the *next* ad of this sync shrank.
            self.refresh_pool_probs(&holders);
        }

        // 3. Serve the current slot in real time if this sync rides a
        //    fallback fetch.
        let mut rt_bytes = (0u64, 0u64);
        if let Some(category) = rt_fetch {
            self.realtime_fetches += 1;
            rt_bytes = (self.config.ad_bytes_down, self.config.ad_bytes_up);
            let offer = SlotOffer::realtime(now, Some(category));
            if let Some(sold) = self.exchange.run_auction(&offer) {
                self.ledger.record_sale(&sold);
                self.ledger.record_impression(sold.id, now);
                self.impressions += 1;
                // The user waits for the fetch inside the piggybacked
                // sync: transfer time plus the link/queue stall.
                self.record_display_latency(ci, link_latency);
            } else {
                self.unfilled += 1;
            }
        }

        // 4. Decide whether this sync transfers at all. Only things that
        //    must move now justify a radio wakeup: the fallback fetch and
        //    newly sold primaries. Replicas, cancellations, and impression
        //    reports are ride-along payload — except that reports force a
        //    transfer once the oldest has aged a full interval (they are
        //    billed by display timestamp, so bounded delay is safe within
        //    the expiry grace period).
        let reports_urgent = self.clients.pending_reports[ci]
            .first()
            .map(|&(_, t)| now.saturating_since(t) >= self.config.prefetch_interval)
            .unwrap_or(false);
        let reports_pending = !self.clients.pending_reports[ci].is_empty();
        let transfer = rt_fetch.is_some()
            || delivered_primaries > 0
            || (reports_pending && (reports_urgent || !self.config.defer_report_syncs))
            || !self.config.skip_empty_syncs;
        if !transfer {
            self.syncs_skipped += 1;
            self.clients.last_sync[ci] = now;
            return;
        }

        // 5. The radio is waking up: apply queued cancellations, deliver
        //    outstanding replicas, and ship the impression reports. The
        //    drain keeps both the tracker queue's and the scratch
        //    buffer's allocations alive across syncs.
        self.scratch_cancel.clear();
        self.tracker
            .drain_cancellations(c, &mut self.scratch_cancel);
        if !self.scratch_cancel.is_empty() {
            self.clients.cancel(ci, &self.scratch_cancel);
        }
        std::mem::swap(&mut self.scratch_outbox, &mut self.clients.outbox[ci]);
        let mut delivered_replicas = 0u64;
        for i in 0..self.scratch_outbox.len() {
            let ad = self.scratch_outbox[i];
            if ad.deadline >= now {
                self.clients.cache[ci].insert(ad);
                delivered_replicas += 1;
            }
        }
        self.scratch_outbox.clear();
        std::mem::swap(
            &mut self.scratch_reports,
            &mut self.clients.pending_reports[ci],
        );
        let report_count = self.scratch_reports.len() as u64;
        for i in 0..self.scratch_reports.len() {
            let (ad, t) = self.scratch_reports[i];
            let disposition = self.tracker.record_display(ad.0, c);
            self.ledger.record_impression(ad, t);
            if disposition == adpf_overbooking::DisplayDisposition::First {
                // Every holder's queue shrinks: the reporter consumed the
                // ad, the others will drop it on cancellation. Borrowing
                // `tracker` and mutating `clients` are disjoint field
                // accesses, so no defensive clone of the holder list.
                if let Some(holders) = self.tracker.holders(ad.0) {
                    for &h in holders {
                        let q = &mut self.clients.queued[h as usize];
                        *q = q.saturating_sub(1);
                    }
                }
            }
        }
        self.scratch_reports.clear();

        // 6. Pay for the batched transfer.
        let delivered = delivered_primaries + delivered_replicas;
        let down =
            delivered * self.config.ad_bytes_down + self.config.sync_overhead_bytes + rt_bytes.0;
        let up =
            report_count * self.config.ad_bytes_up + self.config.sync_overhead_bytes + rt_bytes.1;
        self.clients.radio[ci].transfer(now, down, up);
        self.meter(ci, down, up);
        if !link_latency.is_zero() {
            // Degraded link: the round trip holds the radio active past
            // the payload time (queued behind the transfer just issued).
            self.clients.radio[ci].stall(now, link_latency);
        }
        self.syncs += 1;
        self.clients.last_sync[ci] = now;
    }

    /// Chooses the holders of an ad sold at client `origin`'s sync: the
    /// origin always keeps the primary copy (the ad was sold against *its*
    /// predicted demand); insurance replicas are added only when the
    /// origin's own display probability falls short of the SLA target.
    ///
    /// The replica set is sized to the *residual* risk: with origin
    /// probability `p`, the replicas must jointly succeed with probability
    /// `1 - (1 - target) / (1 - p)` for the whole set to meet `target`.
    /// Replica candidates are drawn from a rotating cursor (spreading
    /// placement load) and scored over the window in which they could
    /// actually display: from the later of their next sync and the opening
    /// of the replica window, to the deadline, discounted by the ads
    /// already queued on them.
    fn place_ad(
        &mut self,
        origin: usize,
        now: SimTime,
        deadline: SimTime,
        pool_built: &mut bool,
    ) -> InlineVec<u32, { PLAN_INLINE + 1 }> {
        let lambda = self.cached_rate(origin, now, deadline);
        let queued = self.clients.queued[origin];
        let mean_session = self.clients.predictor[origin].mean_session_slots();
        let p_origin = self
            .avail
            .display_probability_bursty(lambda, queued, mean_session);
        let mut holders: InlineVec<u32, { PLAN_INLINE + 1 }> = InlineVec::new();
        holders.push(origin as u32);
        if p_origin >= self.config.sla_target {
            return holders;
        }
        // Residual success probability required from the replicas.
        let residual_target = 1.0 - (1.0 - self.config.sla_target) / (1.0 - p_origin).max(1e-9);
        if residual_target <= 0.0 {
            return holders;
        }

        if !*pool_built {
            self.build_candidate_pool(origin, now, deadline);
            *pool_built = true;
        }
        let plan = self.planner.plan(
            &self.scratch_cands,
            residual_target,
            self.config.max_replicas.saturating_sub(1),
        );
        holders.extend_from_slice(&plan.clients);
        holders
    }

    /// Evaluates the replica-candidate pool for one selling sync: the
    /// next `candidate_pool - 1` clients under the rotating cursor, each
    /// scored over the window in which it could actually display. Fills
    /// `scratch_cands` (planner input) and the aligned `scratch_meta`
    /// (the per-candidate rate inputs needed to re-score an entry when
    /// its queue depth changes mid-sync).
    /// The build is split gather → rate → score over flat SoA buffers:
    /// the cursor walk (branchy, touches `next_sync`), the predictor
    /// rate queries (virtual calls), and the Poisson-tail scoring (pure
    /// float math over `scratch_meta`) each run as their own tight loop
    /// instead of one interleaved pass. Every per-candidate computation
    /// is pure and memoized on its own inputs, so the phase split
    /// produces bit-identical probabilities in the identical pool order.
    fn build_candidate_pool(&mut self, origin: usize, now: SimTime, deadline: SimTime) {
        self.scratch_cands.clear();
        self.scratch_meta.clear();
        self.scratch_gather.clear();
        self.pool_build_id += 1;
        self.obs.inc(self.mid.pool_builds, 1);
        let n = self.clients.len();
        if n <= 1 {
            return;
        }
        let want = (self.config.candidate_pool - 1).min(n - 1);
        let mut taken = 0;
        // A replica can only display inside the final `replica_window`
        // of the ad's life, and only after the holder has received it at
        // a sync. Loop-invariant: hoisted out of the candidate scan.
        let window_open = deadline.saturating_sub(self.config.replica_window).max(now);
        // Gather: advance the rotating cursor, keeping candidates that
        // could receive the ad in time.
        while taken < want {
            self.cand_cursor = (self.cand_cursor + 1) % n;
            let j = self.cand_cursor;
            if j == origin {
                continue;
            }
            taken += 1;
            let start = self.clients.next_sync[j].max(window_open);
            if start >= deadline {
                continue; // Cannot receive the ad in time; skip the
                          // rate evaluation entirely.
            }
            self.scratch_gather.push((j as u32, start));
        }
        // Rate: one (epoch-memoized) expected-rate query per candidate.
        for idx in 0..self.scratch_gather.len() {
            let (j, start) = self.scratch_gather[idx];
            let lambda_j = self.cached_rate(j as usize, start, deadline);
            let mean_session_j = self.clients.predictor[j as usize].mean_session_slots();
            self.scratch_meta.push((lambda_j, mean_session_j));
        }
        // Score: Poisson-tail availability over the flat meta array,
        // stamping each client's O(1) position handle as we go.
        for idx in 0..self.scratch_gather.len() {
            let (j, _) = self.scratch_gather[idx];
            let (lambda_j, mean_session_j) = self.scratch_meta[idx];
            let queued_j = self.clients.queued[j as usize];
            let prob = self
                .avail
                .display_probability_bursty(lambda_j, queued_j, mean_session_j);
            self.scratch_cands
                .push(ClientAvailability { client: j, prob });
            self.pool_pos[j as usize] = idx as u32;
            self.pool_epoch[j as usize] = self.pool_build_id;
        }
        self.obs
            .inc(self.mid.pool_scored, self.scratch_cands.len() as u64);
    }

    /// Re-scores the pool entries of freshly chosen replica holders
    /// (their `queued` just grew). The rate inputs come from
    /// `scratch_meta`; only the Poisson tail is re-evaluated, and the
    /// availability cache serves it from the already-memoized series.
    /// Replica holders always come out of the current build's pool, so
    /// the `pool_pos`/`pool_epoch` handle resolves each one in O(1) —
    /// the linear `position` scan this replaces was the planner loop's
    /// last per-holder pool traversal.
    fn refresh_pool_probs(&mut self, holders: &[u32]) {
        // holders[0] is the origin, which is never in the pool.
        for &h in holders.iter().skip(1) {
            if self.pool_epoch[h as usize] != self.pool_build_id {
                continue;
            }
            let pos = self.pool_pos[h as usize] as usize;
            debug_assert_eq!(self.scratch_cands[pos].client, h);
            let (lambda, mean_session) = self.scratch_meta[pos];
            let queued = self.clients.queued[h as usize];
            self.scratch_cands[pos].prob =
                self.avail
                    .display_probability_bursty(lambda, queued, mean_session);
            self.obs.inc(self.mid.pool_rescored, 1);
        }
    }

    /// `expected_rate` for client `j`, memoized per sync epoch.
    ///
    /// Valid because nothing a rate depends on — the client's predictor
    /// state, its `next_sync`, the sale deadline — changes between the
    /// ads sold at one sync (only `queued` moves, which feeds the
    /// availability cache separately). The origin and candidates never
    /// collide on an entry: `place_ad` skips `j == origin`.
    fn cached_rate(&mut self, j: usize, start: SimTime, deadline: SimTime) -> f64 {
        if self.lambda_epoch[j] == self.sync_epoch {
            return self.lambda_cache[j];
        }
        let rate = self.clients.predictor[j].expected_rate(start, deadline.saturating_since(start));
        self.lambda_epoch[j] = self.sync_epoch;
        self.lambda_cache[j] = rate;
        rate
    }

    fn on_expiry_sweep(&mut self, now: SimTime) {
        // Bill by display timestamp: a displayed-but-unreported ad is not
        // a violation, so the sweep waits out the worst-case report delay
        // (one interval of deferral plus one interval to the next sync)
        // before declaring one.
        let grace = self.config.prefetch_interval.saturating_mul(2);
        self.expire(now.saturating_sub(grace));
        if self.net.is_some() {
            self.rescue_dark_ads(now);
        }
        let next = now + SimDuration::from_hours(1);
        if next <= self.horizon + self.config.deadline + grace {
            self.schedule(next, EngineEvent::ExpirySweep);
        }
    }

    /// One pacing-controller update, rescheduling itself every
    /// `marketplace.pacing_interval` until the trace horizon. Runs on
    /// the engine's event queue, so controller updates happen at
    /// deterministic simulated times interleaved with the auction
    /// stream — identical at any thread count.
    fn on_pacing(&mut self, now: SimTime) {
        self.exchange.pacing_tick(now, self.horizon);
        let next = now + self.config.marketplace.pacing_interval;
        if next <= self.horizon {
            self.schedule(next, EngineEvent::Pacing);
        }
    }

    /// Deadline rescue (netem only): ads due within the next prefetch
    /// interval whose holders have *all* gone dark get one extra replica
    /// on a reachable client that will sync before the deadline. Without
    /// this, a regional outage turns every ad it strands into an SLA
    /// violation even though connected clients could still display it.
    fn rescue_dark_ads(&mut self, now: SimTime) {
        let n = self.clients.len();
        if n == 0 {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        self.tracker
            .undisplayed_due_before(now + self.config.prefetch_interval, &mut due);
        // The tracker iterates a HashMap; sort so rescue order (and the
        // rotating cursor it advances) is deterministic.
        due.sort_unstable();
        for &(ad, deadline) in &due {
            if deadline <= now {
                continue; // Too late for any new holder to display it.
            }
            let Some(net) = self.net.as_mut() else { break };
            // Copy the holder set out so the tracker can be mutated below.
            let holders: InlineVec<u32, { PLAN_INLINE + 1 }> = match self.tracker.holders(ad) {
                Some(h) => InlineVec::from_slice(h),
                None => continue,
            };
            // Reachability only consults the link trajectory (no failure
            // coin), so the scan cannot perturb later attempt outcomes.
            if holders.iter().any(|&h| net.reachable(h as usize, now)) {
                continue; // Some holder can still sync in time.
            }
            // Every holder is dark: scan from the rotating cursor for a
            // reachable client whose next sync lands before the deadline.
            let mut target = None;
            for _ in 0..self.config.candidate_pool.min(n) {
                self.cand_cursor = (self.cand_cursor + 1) % n;
                let j = self.cand_cursor;
                if holders.as_slice().contains(&(j as u32)) {
                    continue;
                }
                if self.clients.next_sync[j] < deadline && net.reachable(j, now) {
                    target = Some(j as u32);
                    break;
                }
            }
            match target {
                Some(t) if self.tracker.rescue_to(ad, t) => {
                    self.obs.inc(self.mid.netem_ads_rescued, 1);
                    self.replicas_assigned += 1;
                    self.clients.queued[t as usize] += 1;
                    self.clients.outbox[t as usize].push(CachedAd {
                        id: AdId(ad),
                        deadline,
                        replica: true,
                    });
                }
                _ => self.obs.inc(self.mid.netem_rescues_unplaced, 1),
            }
        }
        self.scratch_due = due;
    }

    fn expire(&mut self, now: SimTime) {
        for (ad, campaign, price) in self.ledger.expire_due(now) {
            self.exchange.refund(campaign, price);
            if !self.tracker.is_displayed(ad.0) {
                // A prefetched ad nobody displayed: the bytes that moved
                // it were pure user cost. One creative download is the
                // lower bound (replicas of the same ad add more).
                if let Some(ids) = &self.mid.scen {
                    self.obs.inc(ids.wasted_ads, 1);
                    self.obs.inc(ids.wasted_bytes, self.config.ad_bytes_down);
                }
                if let Some(holders) = self.tracker.holders(ad.0) {
                    // Disjoint field borrows: read `tracker`, write
                    // `clients` — no clone needed.
                    for &h in holders {
                        let q = &mut self.clients.queued[h as usize];
                        *q = q.saturating_sub(1);
                    }
                }
            }
            self.tracker.remove(ad.0);
        }
    }

    /// Settles all outstanding state and produces the run's report plus
    /// its metric registry. Call after the external stream ended and
    /// [`ClientEngine::drain_internal`] ran.
    pub fn finalize(self) -> (SimReport, MetricRegistry) {
        let (report, obs, _) = self.finalize_reclaim();
        (report, obs)
    }

    /// [`ClientEngine::finalize`], additionally handing back the
    /// engine's allocation set for reuse by the next engine on this
    /// thread (see [`EngineScratch`]).
    pub fn finalize_reclaim(mut self) -> (SimReport, MetricRegistry, EngineScratch) {
        // Flush reports that never made it to a final sync (trace ended
        // first); without this, genuinely displayed ads would be
        // misclassified as SLA violations.
        for ci in 0..self.clients.len() {
            let reports = std::mem::take(&mut self.clients.pending_reports[ci]);
            for (ad, t) in reports {
                self.tracker.record_display(ad.0, ci as u32);
                self.ledger.record_impression(ad, t);
            }
        }
        // Settle everything still pending.
        self.expire(self.horizon + self.config.deadline + SimDuration::from_millis(1));

        let mut energy = EnergyBreakdown::default();
        let mut per_user = Vec::with_capacity(self.clients.len());
        // Mixed populations flush at the longest class tail so no class
        // loses end-of-trace tail energy; scenario-off keeps the single
        // config radio (bit-identical legacy path).
        let tail = match &self.scen {
            Some(s) => s
                .classes
                .iter()
                .map(|c| c.radio.tail_duration())
                .max()
                .unwrap_or_else(|| self.config.radio.tail_duration()),
            None => self.config.radio.tail_duration(),
        };
        let flush_at = self.horizon + tail;
        for radio in &mut self.clients.radio {
            let e = radio.finish(flush_at);
            per_user.push(e.total_j());
            e.publish_residency(&self.obs);
            energy.absorb(&e);
        }

        // Fold the domain-layer stats into the registry so one snapshot
        // covers the whole stack. All of these count simulated events, so
        // they stay deterministic regardless of whether metrics export is
        // requested.
        self.tracker.publish(&self.obs);
        self.exchange.publish(&self.obs);
        if let Some(net) = &self.net {
            net.publish(&self.obs);
        }
        let slots = self.slots_seen;
        self.obs.add("sim.slots", slots);
        self.obs.add("sim.impressions", self.impressions);
        self.obs.add("sim.cache_hits", self.cache_hits);
        self.obs.add("sim.realtime_fetches", self.realtime_fetches);
        self.obs.add("sim.unfilled", self.unfilled);
        self.obs.add("sim.syncs", self.syncs);
        self.obs.add("sim.syncs_skipped", self.syncs_skipped);
        self.obs.add("sim.syncs_dropped", self.syncs_dropped);
        self.obs
            .add("sim.replicas_assigned", self.replicas_assigned);
        self.obs.gauge_max("sim.users", self.clients.len() as u64);

        // `SimReport::netem` is *derived* from the registry: the counters
        // are the single source of truth, the report field only preserves
        // the serialized shape (and hash inputs) of earlier revisions.
        let netem = NetemCounters::from_metrics(&self.obs);
        // Same derivation for the scenario layer: an engine that never
        // registered scenario metrics reads back the all-default value.
        let scenario = ScenarioCounters::from_metrics(&self.obs);

        let report = SimReport {
            config: self.config.describe(),
            users: self.clients.len() as u32,
            days: self.days,
            slots,
            impressions: self.impressions,
            cache_hits: self.cache_hits,
            realtime_fetches: self.realtime_fetches,
            unfilled: self.unfilled,
            energy,
            syncs: self.syncs,
            syncs_skipped: self.syncs_skipped,
            syncs_dropped: self.syncs_dropped,
            replicas_assigned: self.replicas_assigned,
            netem,
            scenario,
            per_user_energy_j: per_user,
            ledger: self.ledger.totals(),
        };
        let scratch = EngineScratch {
            queue: self.queue,
            lambda_epoch: self.lambda_epoch,
            lambda_cache: self.lambda_cache,
            pool_pos: self.pool_pos,
            pool_epoch: self.pool_epoch,
            scratch_slot_times: self.scratch_slot_times,
            scratch_outbox: self.scratch_outbox,
            scratch_reports: self.scratch_reports,
            scratch_cands: self.scratch_cands,
            scratch_meta: self.scratch_meta,
            scratch_due: self.scratch_due,
            scratch_gather: self.scratch_gather,
            scratch_cancel: self.scratch_cancel,
            scratch_batch: self.scratch_batch,
        };
        (report, self.obs, scratch)
    }
}
