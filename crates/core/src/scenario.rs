//! Scenario-layer configuration: heterogeneous device classes with
//! data-plan caps, an AdCell-style per-region cell-capacity ceiling, and
//! the switch that turns user-cost accounting on.
//!
//! [`ScenarioConfig`] is the *engine-side* view of a scenario: which
//! device class each user belongs to (radio profile, metered-traffic
//! flag, monthly data budget), which cell region each user lives in, and
//! the per-region fetch ceiling. Trace-side composition (per-class
//! session shapes, churn, flash crowds) lives in the `adpf-scenario`
//! crate; both sides derive class and region assignments from the same
//! pure mixing functions here, so the trace generator and the engine
//! always agree on who is who regardless of sharding.
//!
//! Scenario-off configurations take exactly the legacy code path: no
//! extra RNG draws, no extra metrics registered, byte-identical
//! `describe()` — the committed smoke golden is pinned by CI at every
//! thread count.

use adpf_desim::SimDuration;
use adpf_energy::{profiles, RadioProfile};

/// Milliseconds in one data-plan billing period (28 days, matching the
/// trace presets' four-week horizon).
pub const CAP_PERIOD_MS: u64 = 28 * 24 * 60 * 60 * 1_000;

const CLASS_SALT: u64 = 0x5ce0_a11c_c1a5_5e5d;
const REGION_SALT: u64 = 0x5ce0_a11c_4e61_0000;
/// Salt for churn arrival times (used by the `adpf-scenario` crate).
pub const ARRIVAL_SALT: u64 = 0x5ce0_a11c_a441_4a1d;
/// Salt for churn departure times (used by the `adpf-scenario` crate).
pub const DEPART_SALT: u64 = 0x5ce0_a11c_de9a_4470;
/// Salt for flash-crowd session streams (used by the `adpf-scenario` crate).
pub const BURST_SALT: u64 = 0x5ce0_a11c_b045_7000;

/// A stable per-user coordinate in `[0, 1)`, derived from a seed, a
/// purpose salt, and the *global* user id. Pure and shard-independent:
/// the trace generator and every engine shard compute identical values.
pub fn unit_coord(seed: u64, salt: u64, user: u64) -> f64 {
    let mut z = seed
        ^ salt
        ^ user
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x2545_f491_4f6c_dd1d);
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^= z >> 33;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// One device class of a mixed population: the radio its users carry,
/// whether their traffic is metered, and their monthly data budget.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceClass {
    /// Human-readable class name (shows up in per-class experiment rows).
    pub name: String,
    /// Radio profile bound to every user of this class.
    pub radio: RadioProfile,
    /// Whether this class's traffic counts toward `metered_bytes` and
    /// the data-plan cap (WiFi-heavy users are unmetered).
    pub metered: bool,
    /// Data budget per 28-day billing period, in bytes; `0` = uncapped.
    /// Once exhausted, prefetch syncs are blocked until the next period
    /// (realtime fallback still runs, and still meters).
    pub monthly_cap_bytes: u64,
    /// Relative population share (normalized against the other classes).
    pub weight: f64,
}

impl DeviceClass {
    /// WiFi-heavy users: unmetered, uncapped.
    pub fn wifi_heavy(weight: f64) -> Self {
        DeviceClass {
            name: "wifi-heavy".into(),
            radio: profiles::wifi(),
            metered: false,
            monthly_cap_bytes: 0,
            weight,
        }
    }

    /// LTE users on a generous plan: metered but effectively uncapped
    /// for ad traffic.
    pub fn lte(weight: f64) -> Self {
        DeviceClass {
            name: "lte".into(),
            radio: profiles::lte(),
            metered: true,
            monthly_cap_bytes: 0,
            weight,
        }
    }

    /// 3G users on a tight budget plan: metered, with a small monthly
    /// ad-traffic allowance that a prefetching client can exhaust.
    pub fn budget_3g(weight: f64, cap_bytes: u64) -> Self {
        DeviceClass {
            name: "3g-budget".into(),
            radio: profiles::umts_3g(),
            metered: true,
            monthly_cap_bytes: cap_bytes,
            weight,
        }
    }
}

/// What to do with a realtime fetch that arrives while its cell region
/// is over the per-window ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPolicy {
    /// Reject the fetch; the slot goes unfilled.
    Drop,
    /// Queue the fetch behind the backlog: it proceeds after a fixed
    /// queueing delay, charged as radio stall time and added to the
    /// ad's display latency.
    Defer,
}

/// AdCell-style per-region cell-capacity ceiling: each region admits at
/// most `fetches_per_window` realtime fetches per `window` across the
/// whole population; the overflow is dropped or deferred per `policy`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCapacity {
    /// Master switch for the ceiling.
    pub enabled: bool,
    /// Number of cell regions users are hashed into.
    pub regions: u32,
    /// Population-wide fetch budget per region per window. Each engine
    /// shard enforces its proportional share (scaled by the shard's
    /// user fraction), so the ceiling is thread-count invariant.
    pub fetches_per_window: u32,
    /// Length of one capacity-accounting window.
    pub window: SimDuration,
    /// Overflow policy.
    pub policy: CellPolicy,
    /// Queueing delay charged per deferred fetch (Defer policy only).
    pub queue_delay: SimDuration,
}

impl CellCapacity {
    /// The disabled ceiling (scenario default).
    pub fn disabled() -> Self {
        CellCapacity {
            enabled: false,
            regions: 4,
            fetches_per_window: 1_000,
            window: SimDuration::from_mins(1),
            policy: CellPolicy::Drop,
            queue_delay: SimDuration::from_millis(500),
        }
    }

    /// An enabled ceiling with the given shape and the Drop policy.
    pub fn capped(regions: u32, fetches_per_window: u32, window: SimDuration) -> Self {
        CellCapacity {
            enabled: true,
            regions,
            fetches_per_window,
            window,
            ..CellCapacity::disabled()
        }
    }
}

/// Engine-side scenario configuration, carried on `SystemConfig`.
///
/// `enabled: false` (the default) is the legacy path: the engine builds
/// no scenario state, registers no scenario metrics, and produces
/// bit-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Master switch for the whole scenario layer.
    pub enabled: bool,
    /// Scenario name (appears in `describe()`, and therefore in the
    /// report hash).
    pub name: String,
    /// Seed for class/region assignment. Shared with the trace-side
    /// generator so session shaping and radio binding agree per user.
    pub assign_seed: u64,
    /// Device classes; empty means one uniform class using the config's
    /// base radio (metered, uncapped).
    pub classes: Vec<DeviceClass>,
    /// Per-region cell-capacity ceiling.
    pub cell: CellCapacity,
    /// Global id of this engine's first user. Set by shard derivation
    /// (`shard_configs`), like `rng_stream`; excluded from `describe()`
    /// so sharded and unsharded configs hash identically.
    pub user_offset: u32,
}

impl ScenarioConfig {
    /// The scenario-off default.
    pub fn disabled() -> Self {
        ScenarioConfig {
            enabled: false,
            name: String::new(),
            assign_seed: 0,
            classes: Vec::new(),
            cell: CellCapacity::disabled(),
            user_offset: 0,
        }
    }

    /// The canonical mixed population: 40% WiFi-heavy, 35% LTE, 25%
    /// budget 3G with a 1 MiB/period ad-traffic cap.
    pub fn mixed(assign_seed: u64) -> Self {
        ScenarioConfig {
            enabled: true,
            name: "mixed".into(),
            assign_seed,
            classes: vec![
                DeviceClass::wifi_heavy(0.40),
                DeviceClass::lte(0.35),
                DeviceClass::budget_3g(0.25, 1 << 20),
            ],
            cell: CellCapacity::disabled(),
            user_offset: 0,
        }
    }

    /// Class index for a global user id via weighted hashing. With no
    /// classes configured, everyone is class 0 (the uniform fallback).
    pub fn class_of(&self, global_user: u64) -> usize {
        class_index(self.assign_seed, global_user, &self.classes)
    }

    /// Cell region for a global user id.
    pub fn region_of(&self, global_user: u64) -> u32 {
        region_index(self.assign_seed, global_user, self.cell.regions)
    }

    /// Validates scenario parameters; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        for c in &self.classes {
            if !c.weight.is_finite() || c.weight <= 0.0 {
                return Err(format!("class `{}` weight must be positive", c.name));
            }
        }
        if !self.classes.is_empty() && (!total.is_finite() || total <= 0.0) {
            return Err("class weights must sum to a positive value".into());
        }
        if self.cell.enabled {
            if self.cell.regions == 0 {
                return Err("cell.regions must be >= 1".into());
            }
            if self.cell.fetches_per_window == 0 {
                return Err("cell.fetches_per_window must be >= 1".into());
            }
            if self.cell.window.is_zero() {
                return Err("cell.window must be positive".into());
            }
            if self.cell.policy == CellPolicy::Defer && self.cell.queue_delay.is_zero() {
                return Err("cell.queue_delay must be positive under Defer".into());
            }
        }
        Ok(())
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig::disabled()
    }
}

/// Weighted class assignment for a global user id. Pure: every shard
/// and the trace generator agree. Returns 0 when `classes` is empty.
pub fn class_index(seed: u64, user: u64, classes: &[DeviceClass]) -> usize {
    if classes.len() <= 1 {
        return 0;
    }
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    let x = unit_coord(seed, CLASS_SALT, user) * total;
    let mut acc = 0.0;
    for (i, c) in classes.iter().enumerate() {
        acc += c.weight;
        if x < acc {
            return i;
        }
    }
    classes.len() - 1
}

/// Cell-region assignment for a global user id.
pub fn region_index(seed: u64, user: u64, regions: u32) -> u32 {
    let n = regions.max(1);
    let r = (unit_coord(seed, REGION_SALT, user) * n as f64) as u32;
    r.min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_coord_is_stable_and_in_range() {
        let a = unit_coord(42, CLASS_SALT, 7);
        let b = unit_coord(42, CLASS_SALT, 7);
        assert_eq!(a, b);
        for u in 0..1_000u64 {
            let x = unit_coord(42, REGION_SALT, u);
            assert!((0.0..1.0).contains(&x), "coord {x} out of range");
        }
        // Different salts decorrelate the coordinates.
        assert_ne!(
            unit_coord(42, CLASS_SALT, 7),
            unit_coord(42, REGION_SALT, 7)
        );
    }

    #[test]
    fn class_assignment_tracks_weights() {
        let sc = ScenarioConfig::mixed(99);
        let mut counts = [0usize; 3];
        let n = 10_000u64;
        for u in 0..n {
            counts[sc.class_of(u)] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((shares[0] - 0.40).abs() < 0.03, "wifi share {}", shares[0]);
        assert!((shares[1] - 0.35).abs() < 0.03, "lte share {}", shares[1]);
        assert!((shares[2] - 0.25).abs() < 0.03, "3g share {}", shares[2]);
    }

    #[test]
    fn empty_classes_fall_back_to_class_zero() {
        let sc = ScenarioConfig {
            enabled: true,
            name: "uniform".into(),
            ..ScenarioConfig::disabled()
        };
        for u in 0..100u64 {
            assert_eq!(sc.class_of(u), 0);
        }
        sc.validate().expect("uniform scenario validates");
    }

    #[test]
    fn region_assignment_covers_all_regions() {
        let mut seen = [false; 8];
        for u in 0..1_000u64 {
            seen[region_index(5, u, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 regions populated");
        assert_eq!(region_index(5, 3, 1), 0);
        assert_eq!(region_index(5, 3, 0), 0); // clamped, no panic
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut sc = ScenarioConfig::mixed(1);
        sc.classes[0].weight = -1.0;
        assert!(sc.validate().is_err());

        let mut sc = ScenarioConfig::mixed(1);
        sc.cell = CellCapacity::capped(0, 10, SimDuration::from_mins(1));
        assert!(sc.validate().is_err());

        let mut sc = ScenarioConfig::mixed(1);
        sc.cell = CellCapacity::capped(4, 10, SimDuration::ZERO);
        assert!(sc.validate().is_err());

        let mut sc = ScenarioConfig::mixed(1);
        sc.cell = CellCapacity::capped(4, 10, SimDuration::from_mins(1));
        sc.cell.policy = CellPolicy::Defer;
        sc.cell.queue_delay = SimDuration::ZERO;
        assert!(sc.validate().is_err());

        // Disabled scenarios validate unconditionally.
        let mut off = ScenarioConfig::disabled();
        off.classes.push(DeviceClass::wifi_heavy(-5.0));
        off.validate().expect("disabled scenario skips validation");
    }
}
