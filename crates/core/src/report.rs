//! Simulation reports.

use adpf_auction::LedgerTotals;
use adpf_energy::EnergyBreakdown;
use adpf_obs::{Histogram, MetricRegistry};

/// Registry names of the metrics the simulator maintains as the source
/// of truth for [`NetemCounters`] and [`ScenarioCounters`]. The report
/// fields are *derived* from these at finalize, never incremented
/// directly.
pub mod metric_names {
    pub const NETEM_SYNC_FAILURES: &str = "netem.sync_failures";
    pub const NETEM_RETRIES_SCHEDULED: &str = "netem.retries_scheduled";
    pub const NETEM_RETRIES_SUCCEEDED: &str = "netem.retries_succeeded";
    pub const NETEM_SYNCS_ABANDONED: &str = "netem.syncs_abandoned";
    pub const NETEM_REALTIME_FAILURES: &str = "netem.realtime_failures";
    pub const NETEM_ADS_RESCUED: &str = "netem.ads_rescued";
    pub const NETEM_RESCUES_UNPLACED: &str = "netem.rescues_unplaced";
    pub const SCEN_METERED_BYTES_DOWN: &str = "scenario.metered_bytes_down";
    pub const SCEN_METERED_BYTES_UP: &str = "scenario.metered_bytes_up";
    pub const SCEN_WASTED_BYTES: &str = "scenario.prefetch_wasted_bytes";
    pub const SCEN_WASTED_ADS: &str = "scenario.prefetch_wasted_ads";
    pub const SCEN_CAP_BLOCKED_SYNCS: &str = "scenario.cap_blocked_syncs";
    pub const SCEN_CELL_DROPPED: &str = "scenario.cell_dropped_fetches";
    pub const SCEN_CELL_DEFERRED: &str = "scenario.cell_deferred_fetches";
    pub const SCEN_DISPLAY_LATENCY_MS: &str = "scenario.display_latency_ms";
}

/// Counters produced by network-condition emulation. All zero when netem
/// is disabled, so legacy (netem-less) reports compare and hash equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetemCounters {
    /// Sync round trips that failed on the link (before any retry).
    pub sync_failures: u64,
    /// Client-side retries placed on the event queue.
    pub retries_scheduled: u64,
    /// Retries whose round trip then succeeded.
    pub retries_succeeded: u64,
    /// Sync attempts abandoned after exhausting the retry budget.
    pub syncs_abandoned: u64,
    /// Real-time fetches (status quo or fallback) lost to the link; the
    /// slot goes unfilled — there is no later moment to retry into.
    pub realtime_failures: u64,
    /// Ads re-replicated by the deadline-rescue path because every
    /// holder had gone dark.
    pub ads_rescued: u64,
    /// Rescue attempts that found no reachable client syncing before the
    /// ad's deadline.
    pub rescues_unplaced: u64,
}

impl NetemCounters {
    /// Reads the counters back out of a metric registry (the simulator's
    /// source of truth — see [`metric_names`]). Metrics a run never
    /// touched read as zero, so a netem-less registry derives the
    /// default counters and legacy reports keep comparing equal.
    pub fn from_metrics(reg: &MetricRegistry) -> Self {
        NetemCounters {
            sync_failures: reg.counter_value(metric_names::NETEM_SYNC_FAILURES),
            retries_scheduled: reg.counter_value(metric_names::NETEM_RETRIES_SCHEDULED),
            retries_succeeded: reg.counter_value(metric_names::NETEM_RETRIES_SUCCEEDED),
            syncs_abandoned: reg.counter_value(metric_names::NETEM_SYNCS_ABANDONED),
            realtime_failures: reg.counter_value(metric_names::NETEM_REALTIME_FAILURES),
            ads_rescued: reg.counter_value(metric_names::NETEM_ADS_RESCUED),
            rescues_unplaced: reg.counter_value(metric_names::NETEM_RESCUES_UNPLACED),
        }
    }

    /// Adds another run's counters into this one.
    pub fn absorb(&mut self, other: &NetemCounters) {
        self.sync_failures += other.sync_failures;
        self.retries_scheduled += other.retries_scheduled;
        self.retries_succeeded += other.retries_succeeded;
        self.syncs_abandoned += other.syncs_abandoned;
        self.realtime_failures += other.realtime_failures;
        self.ads_rescued += other.ads_rescued;
        self.rescues_unplaced += other.rescues_unplaced;
    }
}

/// User-cost counters produced by the scenario layer: bytes over metered
/// networks, prefetch traffic that never turned into a display, data-cap
/// and cell-capacity interventions, and the ad-display-latency
/// distribution. All default (zero) when the scenario layer is disabled,
/// so legacy reports compare and hash equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioCounters {
    /// Downlink bytes moved over metered links (ad payloads, sync
    /// overhead, realtime fetches — everything the plan bills for).
    pub metered_bytes_down: u64,
    /// Uplink bytes moved over metered links.
    pub metered_bytes_up: u64,
    /// Downlink bytes spent prefetching ads that expired undisplayed
    /// (one `ad_bytes_down` per wasted ad — a lower bound; replicas of
    /// the same ad add more).
    pub prefetch_wasted_bytes: u64,
    /// Prefetched ads that expired without a single display.
    pub prefetch_wasted_ads: u64,
    /// Prefetch syncs blocked because the user's data-plan budget for
    /// the current period was exhausted.
    pub cap_blocked_syncs: u64,
    /// Realtime fetches rejected by a saturated cell region (the slot
    /// went unfilled).
    pub cell_dropped_fetches: u64,
    /// Realtime fetches queued behind a saturated cell region (charged
    /// the configured queueing delay).
    pub cell_deferred_fetches: u64,
    /// Ad display latency in milliseconds, one sample per displayed ad:
    /// zero for cache hits, fetch transfer time (plus link latency and
    /// any cell queueing delay) for realtime paths.
    pub display_latency_ms: Histogram,
}

impl ScenarioCounters {
    /// Reads the counters back out of a metric registry (the engine's
    /// source of truth — see [`metric_names`]). Metrics a run never
    /// touched read as zero/empty, so a scenario-less registry derives
    /// the default counters and legacy reports keep comparing equal.
    pub fn from_metrics(reg: &MetricRegistry) -> Self {
        ScenarioCounters {
            metered_bytes_down: reg.counter_value(metric_names::SCEN_METERED_BYTES_DOWN),
            metered_bytes_up: reg.counter_value(metric_names::SCEN_METERED_BYTES_UP),
            prefetch_wasted_bytes: reg.counter_value(metric_names::SCEN_WASTED_BYTES),
            prefetch_wasted_ads: reg.counter_value(metric_names::SCEN_WASTED_ADS),
            cap_blocked_syncs: reg.counter_value(metric_names::SCEN_CAP_BLOCKED_SYNCS),
            cell_dropped_fetches: reg.counter_value(metric_names::SCEN_CELL_DROPPED),
            cell_deferred_fetches: reg.counter_value(metric_names::SCEN_CELL_DEFERRED),
            display_latency_ms: reg
                .histogram_snapshot(metric_names::SCEN_DISPLAY_LATENCY_MS)
                .unwrap_or_default(),
        }
    }

    /// Adds another run's counters into this one (histogram merges
    /// bucket-wise, so shard-order merging is order-independent here).
    pub fn absorb(&mut self, other: &ScenarioCounters) {
        self.metered_bytes_down += other.metered_bytes_down;
        self.metered_bytes_up += other.metered_bytes_up;
        self.prefetch_wasted_bytes += other.prefetch_wasted_bytes;
        self.prefetch_wasted_ads += other.prefetch_wasted_ads;
        self.cap_blocked_syncs += other.cap_blocked_syncs;
        self.cell_dropped_fetches += other.cell_dropped_fetches;
        self.cell_deferred_fetches += other.cell_deferred_fetches;
        self.display_latency_ms.merge(&other.display_latency_ms);
    }

    /// Total bytes over metered links.
    pub fn metered_bytes(&self) -> u64 {
        self.metered_bytes_down + self.metered_bytes_up
    }

    /// Upper bound on the display-latency quantile `q` in milliseconds;
    /// `0` with no samples.
    pub fn display_latency_p(&self, q: f64) -> u64 {
        self.display_latency_ms.quantile_upper_bound(q)
    }
}

/// Everything one simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Configuration summary (from [`crate::SystemConfig::describe`]).
    pub config: String,
    /// Users simulated.
    pub users: u32,
    /// Trace length in days.
    pub days: u32,
    /// Total ad slots that occurred.
    pub slots: u64,
    /// Slots filled with a paid ad (cache hit or real-time fetch).
    pub impressions: u64,
    /// Slots served from the prefetch cache.
    pub cache_hits: u64,
    /// Slots served by a real-time fallback fetch.
    pub realtime_fetches: u64,
    /// Slots left unfilled (auction produced no buyer).
    pub unfilled: u64,
    /// Aggregate ad-related radio energy across all clients.
    pub energy: EnergyBreakdown,
    /// Syncs that actually woke the radio.
    pub syncs: u64,
    /// Syncs skipped because there was nothing to move.
    pub syncs_skipped: u64,
    /// Periodic syncs lost to injected faults (device unreachable).
    pub syncs_dropped: u64,
    /// Insurance replicas assigned across all sold ads (holders beyond
    /// the primary).
    pub replicas_assigned: u64,
    /// Network-emulation counters; all zero when netem is disabled.
    pub netem: NetemCounters,
    /// Scenario-layer user-cost counters; all default when the scenario
    /// layer is disabled.
    pub scenario: ScenarioCounters,
    /// Per-user total ad radio energy in joules, indexed by user id — the
    /// raw series behind the paper's per-user savings CDF.
    pub per_user_energy_j: Vec<f64>,
    /// Exchange/billing totals.
    pub ledger: LedgerTotals,
}

impl SimReport {
    /// The identity element of [`SimReport::merge`]: a report of zero
    /// users over zero slots, with every counter at zero.
    pub fn empty() -> Self {
        SimReport {
            config: String::new(),
            users: 0,
            days: 0,
            slots: 0,
            impressions: 0,
            cache_hits: 0,
            realtime_fetches: 0,
            unfilled: 0,
            energy: EnergyBreakdown::default(),
            syncs: 0,
            syncs_skipped: 0,
            syncs_dropped: 0,
            replicas_assigned: 0,
            netem: NetemCounters::default(),
            scenario: ScenarioCounters::default(),
            per_user_energy_j: Vec::new(),
            ledger: LedgerTotals::default(),
        }
    }

    /// Accumulates another (disjoint) run's results into this report.
    ///
    /// This is the reduction step of sharded simulation: every additive
    /// field — users, slots, impressions, sync counters, energy terms,
    /// ledger totals — sums exactly, `days` takes the maximum (shards
    /// share one horizon), and `per_user_energy_j` concatenates, so
    /// merging shards in shard order rebuilds the original user indexing
    /// (shards hold contiguous user ranges). Merging in a fixed order
    /// also fixes the floating-point summation order, which keeps merged
    /// reports deterministic. An empty `config` adopts the other's, so
    /// [`SimReport::empty`] is a true identity.
    pub fn merge(&mut self, other: &SimReport) {
        if self.config.is_empty() {
            self.config = other.config.clone();
        }
        self.users += other.users;
        self.days = self.days.max(other.days);
        self.slots += other.slots;
        self.impressions += other.impressions;
        self.cache_hits += other.cache_hits;
        self.realtime_fetches += other.realtime_fetches;
        self.unfilled += other.unfilled;
        self.energy.absorb(&other.energy);
        self.syncs += other.syncs;
        self.syncs_skipped += other.syncs_skipped;
        self.syncs_dropped += other.syncs_dropped;
        self.replicas_assigned += other.replicas_assigned;
        self.netem.absorb(&other.netem);
        self.scenario.absorb(&other.scenario);
        self.per_user_energy_j
            .extend_from_slice(&other.per_user_energy_j);
        self.ledger.merge(&other.ledger);
    }

    /// Pre-sizes the per-user accumulator for a merge over `users` total
    /// users, so a shard-ordered reduction appends into one allocation
    /// instead of regrowing per shard.
    pub fn reserve_users(&mut self, users: usize) {
        self.per_user_energy_j.reserve_exact(users);
    }

    /// Ad energy per displayed impression, in joules; `0.0` with no
    /// impressions.
    pub fn energy_per_impression_j(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.energy.total_j() / self.impressions as f64
        }
    }

    /// Fraction of slots served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.slots as f64
        }
    }

    /// SLA violation rate over pre-sold ads.
    pub fn sla_violation_rate(&self) -> f64 {
        self.ledger.sla_violation_rate()
    }

    /// Fraction of displayed impressions that were replication
    /// duplicates; `0.0` when nothing was displayed.
    pub fn duplicate_rate(&self) -> f64 {
        let displays = self.impressions + self.ledger.duplicates;
        if displays == 0 {
            0.0
        } else {
            self.ledger.duplicates as f64 / displays as f64
        }
    }

    /// Radio-waking syncs per user per day; `0.0` for an empty report
    /// (no users or no days) rather than NaN.
    pub fn syncs_per_user_day(&self) -> f64 {
        let user_days = self.users as f64 * self.days as f64;
        if user_days == 0.0 {
            0.0
        } else {
            self.syncs as f64 / user_days
        }
    }

    /// Billed revenue.
    pub fn revenue(&self) -> f64 {
        self.ledger.revenue
    }

    /// Energy saved relative to a baseline run, as a fraction of the
    /// baseline's energy (the paper's headline metric). Negative when this
    /// run used more energy.
    pub fn energy_savings_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.energy.total_j();
        if base <= 0.0 {
            0.0
        } else {
            1.0 - self.energy.total_j() / base
        }
    }

    /// Per-user energy savings relative to a baseline run: one fraction
    /// per user with nonzero baseline energy (users whose ads never cost
    /// anything have no meaningful savings ratio).
    pub fn per_user_savings_vs(&self, baseline: &SimReport) -> Vec<f64> {
        self.per_user_energy_j
            .iter()
            .zip(baseline.per_user_energy_j.iter())
            .filter(|&(_, &base)| base > 0.0)
            .map(|(&mine, &base)| 1.0 - mine / base)
            .collect()
    }

    /// Revenue lost relative to a baseline run, as a fraction of the
    /// baseline's revenue. Negative when this run earned more.
    pub fn revenue_loss_vs(&self, baseline: &SimReport) -> f64 {
        let base = baseline.revenue();
        if base <= 0.0 {
            0.0
        } else {
            1.0 - self.revenue() / base
        }
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}\n  users={} days={} slots={} impressions={} (cache {:.1}%, realtime {}, unfilled {})\n  energy={:.1} J (promo {:.1} / xfer {:.1} / tail {:.1}; {:.3} J/impression)\n  syncs={} (+{} skipped)\n  revenue=${:.2} sold={} billed={} expired={} (SLA viol {:.3}%) duplicates={}",
            self.config,
            self.users,
            self.days,
            self.slots,
            self.impressions,
            self.cache_hit_rate() * 100.0,
            self.realtime_fetches,
            self.unfilled,
            self.energy.total_j(),
            self.energy.promotion_j,
            self.energy.transfer_j,
            self.energy.tail_j,
            self.energy_per_impression_j(),
            self.syncs,
            self.syncs_skipped,
            self.revenue(),
            self.ledger.sold,
            self.ledger.billed,
            self.ledger.expired,
            self.sla_violation_rate() * 100.0,
            self.ledger.duplicates,
        );
        if self.netem != NetemCounters::default() {
            let n = &self.netem;
            s.push_str(&format!(
                "\n  netem: sync failures={} retries={}/{} abandoned={} rt failures={} rescued={} (+{} unplaced)",
                n.sync_failures,
                n.retries_succeeded,
                n.retries_scheduled,
                n.syncs_abandoned,
                n.realtime_failures,
                n.ads_rescued,
                n.rescues_unplaced,
            ));
        }
        if self.scenario != ScenarioCounters::default() {
            let sc = &self.scenario;
            s.push_str(&format!(
                "\n  scenario: metered={:.2} MB (down {:.2} / up {:.2}) wasted={:.2} MB ({} ads) cap-blocked={} cell drop/defer={}/{} display-lat p50/p95/p99={}/{}/{} ms",
                sc.metered_bytes() as f64 / 1e6,
                sc.metered_bytes_down as f64 / 1e6,
                sc.metered_bytes_up as f64 / 1e6,
                sc.prefetch_wasted_bytes as f64 / 1e6,
                sc.prefetch_wasted_ads,
                sc.cap_blocked_syncs,
                sc.cell_dropped_fetches,
                sc.cell_deferred_fetches,
                sc.display_latency_p(0.50),
                sc.display_latency_p(0.95),
                sc.display_latency_p(0.99),
            ));
        }
        s
    }

    /// FNV-1a over a canonical byte serialization of every report field.
    ///
    /// Any change to any simulated outcome — a counter, a float bit, a
    /// per-user energy entry — changes this hash, which is what makes it
    /// a cheap determinism witness: the bench baseline records it, ci.sh
    /// gates on it, and the serve smoke gate compares a live server's
    /// final report against the batch golden through it. Stable across
    /// platforms and dependency-free by construction.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.config.as_bytes());
        h.write_u64(self.users as u64);
        h.write_u64(self.days as u64);
        h.write_u64(self.slots);
        h.write_u64(self.impressions);
        h.write_u64(self.cache_hits);
        h.write_u64(self.realtime_fetches);
        h.write_u64(self.unfilled);
        h.write_f64(self.energy.promotion_j);
        h.write_f64(self.energy.transfer_j);
        h.write_f64(self.energy.tail_j);
        h.write_u64(self.energy.transfers);
        h.write_u64(self.energy.promotions);
        h.write_u64(self.energy.bytes_down);
        h.write_u64(self.energy.bytes_up);
        h.write_u64(self.energy.active_time.as_millis());
        h.write_u64(self.syncs);
        h.write_u64(self.syncs_skipped);
        h.write_u64(self.syncs_dropped);
        h.write_u64(self.replicas_assigned);
        // Netem counters fold in only when any is nonzero: netem-off runs
        // keep the exact pre-netem byte stream, so recorded golden hashes
        // (e.g. the ci.sh smoke golden) stay valid.
        if self.netem != NetemCounters::default() {
            h.write_u64(self.netem.sync_failures);
            h.write_u64(self.netem.retries_scheduled);
            h.write_u64(self.netem.retries_succeeded);
            h.write_u64(self.netem.syncs_abandoned);
            h.write_u64(self.netem.realtime_failures);
            h.write_u64(self.netem.ads_rescued);
            h.write_u64(self.netem.rescues_unplaced);
        }
        // Scenario counters gate the same way: scenario-off runs keep the
        // exact pre-scenario byte stream and the smoke golden survives.
        if self.scenario != ScenarioCounters::default() {
            let sc = &self.scenario;
            h.write_u64(sc.metered_bytes_down);
            h.write_u64(sc.metered_bytes_up);
            h.write_u64(sc.prefetch_wasted_bytes);
            h.write_u64(sc.prefetch_wasted_ads);
            h.write_u64(sc.cap_blocked_syncs);
            h.write_u64(sc.cell_dropped_fetches);
            h.write_u64(sc.cell_deferred_fetches);
            let hist = &sc.display_latency_ms;
            h.write_u64(hist.count());
            h.write_u64(hist.sum());
            h.write_u64(hist.min());
            h.write_u64(hist.max());
            for (i, n) in hist.nonzero_buckets() {
                h.write_u64(i as u64);
                h.write_u64(n);
            }
        }
        h.write_u64(self.per_user_energy_j.len() as u64);
        for &e in &self.per_user_energy_j {
            h.write_f64(e);
        }
        h.write_u64(self.ledger.sold);
        h.write_u64(self.ledger.billed);
        h.write_f64(self.ledger.revenue);
        h.write_f64(self.ledger.sold_value);
        h.write_u64(self.ledger.expired);
        h.write_f64(self.ledger.refunded);
        h.write_u64(self.ledger.duplicates);
        h.write_u64(self.ledger.late_displays);
        h.finish()
    }
}

/// 64-bit FNV-1a, dependency-free and stable across platforms.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(energy_j: f64, revenue: f64, impressions: u64) -> SimReport {
        SimReport {
            config: "test".into(),
            users: 1,
            days: 1,
            slots: impressions,
            impressions,
            cache_hits: 0,
            realtime_fetches: impressions,
            unfilled: 0,
            energy: EnergyBreakdown {
                transfer_j: energy_j,
                ..EnergyBreakdown::default()
            },
            syncs: 0,
            syncs_skipped: 0,
            syncs_dropped: 0,
            replicas_assigned: 0,
            netem: NetemCounters::default(),
            scenario: ScenarioCounters::default(),
            per_user_energy_j: vec![energy_j],
            ledger: LedgerTotals {
                revenue,
                ..LedgerTotals::default()
            },
        }
    }

    #[test]
    fn savings_and_loss_are_relative() {
        let base = report(100.0, 10.0, 50);
        let better = report(40.0, 9.5, 50);
        assert!((better.energy_savings_vs(&base) - 0.6).abs() < 1e-12);
        assert!((better.revenue_loss_vs(&base) - 0.05).abs() < 1e-12);
        assert!(base.energy_savings_vs(&better) < 0.0);
    }

    #[test]
    fn zero_baselines_are_safe() {
        let base = report(0.0, 0.0, 0);
        let other = report(10.0, 1.0, 5);
        assert_eq!(other.energy_savings_vs(&base), 0.0);
        assert_eq!(other.revenue_loss_vs(&base), 0.0);
        assert_eq!(base.energy_per_impression_j(), 0.0);
        assert_eq!(base.cache_hit_rate(), 0.0);
    }

    #[test]
    fn empty_report_ratios_are_zero_not_nan() {
        // Regression: every ratio accessor must return 0.0 (not NaN or a
        // panic) on the all-zero report, so tables and summaries render
        // sanely for degenerate runs.
        let e = SimReport::empty();
        assert_eq!(e.energy_per_impression_j(), 0.0);
        assert_eq!(e.cache_hit_rate(), 0.0);
        assert_eq!(e.sla_violation_rate(), 0.0);
        assert_eq!(e.duplicate_rate(), 0.0);
        assert_eq!(e.syncs_per_user_day(), 0.0);
        assert!(!e.summary().contains("NaN"));
    }

    #[test]
    fn ratio_accessors_compute_expected_values() {
        let mut r = report(10.0, 1.0, 8);
        r.ledger.duplicates = 2;
        assert!((r.duplicate_rate() - 0.2).abs() < 1e-12);
        r.users = 4;
        r.days = 2;
        r.syncs = 24;
        assert!((r.syncs_per_user_day() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_concatenates_users() {
        let mut a = report(100.0, 10.0, 50);
        a.cache_hits = 30;
        a.syncs = 7;
        a.ledger.sold = 40;
        let mut b = report(40.0, 4.0, 20);
        b.cache_hits = 10;
        b.syncs = 3;
        b.ledger.sold = 15;
        b.days = 3;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.users, 2);
        assert_eq!(merged.days, 3, "days take the max, not the sum");
        assert_eq!(merged.slots, 70);
        assert_eq!(merged.impressions, 70);
        assert_eq!(merged.cache_hits, 40);
        assert_eq!(merged.syncs, 10);
        assert_eq!(merged.ledger.sold, 55);
        assert!((merged.energy.total_j() - 140.0).abs() < 1e-9);
        assert_eq!(merged.per_user_energy_j, vec![100.0, 40.0]);
        assert!((merged.revenue() - 14.0).abs() < 1e-12);
        assert_eq!(merged.config, a.config, "first config wins");
    }

    #[test]
    fn merge_sums_netem_counters_and_summary_gates_on_them() {
        let mut a = report(1.0, 1.0, 1);
        assert!(
            !a.summary().contains("netem"),
            "all-zero netem stays out of the summary"
        );
        a.netem.sync_failures = 3;
        a.netem.retries_scheduled = 2;
        let mut b = report(1.0, 1.0, 1);
        b.netem.sync_failures = 4;
        b.netem.ads_rescued = 1;
        a.merge(&b);
        assert_eq!(a.netem.sync_failures, 7);
        assert_eq!(a.netem.retries_scheduled, 2);
        assert_eq!(a.netem.ads_rescued, 1);
        assert!(a.summary().contains("netem"));
    }

    #[test]
    fn netem_absorb_equals_registry_merge() {
        // The registry is the source of truth for NetemCounters; folding
        // per-shard registries and then deriving must equal deriving
        // per shard and absorbing — the equivalence the hash-stable
        // SimReport field rests on.
        use adpf_obs::ObsSink;

        let fill = |values: [u64; 7]| {
            let reg = MetricRegistry::new();
            let names = [
                metric_names::NETEM_SYNC_FAILURES,
                metric_names::NETEM_RETRIES_SCHEDULED,
                metric_names::NETEM_RETRIES_SUCCEEDED,
                metric_names::NETEM_SYNCS_ABANDONED,
                metric_names::NETEM_REALTIME_FAILURES,
                metric_names::NETEM_ADS_RESCUED,
                metric_names::NETEM_RESCUES_UNPLACED,
            ];
            for (name, v) in names.iter().zip(values) {
                reg.add(name, v);
            }
            reg
        };
        let shard_a = fill([3, 2, 1, 0, 5, 1, 0]);
        let shard_b = fill([4, 0, 0, 2, 1, 0, 3]);

        let mut absorbed = NetemCounters::from_metrics(&shard_a);
        absorbed.absorb(&NetemCounters::from_metrics(&shard_b));

        let mut merged = MetricRegistry::new();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(absorbed, NetemCounters::from_metrics(&merged));

        // An untouched registry derives the all-zero default.
        assert_eq!(
            NetemCounters::from_metrics(&MetricRegistry::new()),
            NetemCounters::default()
        );
    }

    #[test]
    fn scenario_absorb_equals_registry_merge() {
        // Same equivalence as netem: per-shard derive + absorb must equal
        // registry-merge + derive, counters and histogram alike.
        use adpf_obs::ObsSink;

        let fill = |counters: [u64; 7], lat_samples: &[u64]| {
            let reg = MetricRegistry::new();
            let names = [
                metric_names::SCEN_METERED_BYTES_DOWN,
                metric_names::SCEN_METERED_BYTES_UP,
                metric_names::SCEN_WASTED_BYTES,
                metric_names::SCEN_WASTED_ADS,
                metric_names::SCEN_CAP_BLOCKED_SYNCS,
                metric_names::SCEN_CELL_DROPPED,
                metric_names::SCEN_CELL_DEFERRED,
            ];
            for (name, v) in names.iter().zip(counters) {
                reg.add(name, v);
            }
            for &s in lat_samples {
                reg.observe(metric_names::SCEN_DISPLAY_LATENCY_MS, s);
            }
            reg
        };
        let shard_a = fill([4096, 512, 8192, 2, 1, 0, 3], &[0, 120, 450]);
        let shard_b = fill([1024, 128, 0, 0, 4, 2, 0], &[0, 0, 900]);

        let mut absorbed = ScenarioCounters::from_metrics(&shard_a);
        absorbed.absorb(&ScenarioCounters::from_metrics(&shard_b));

        let mut merged = MetricRegistry::new();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(absorbed, ScenarioCounters::from_metrics(&merged));
        assert_eq!(absorbed.metered_bytes(), 4096 + 512 + 1024 + 128);
        assert_eq!(absorbed.display_latency_ms.count(), 6);
        assert!(absorbed.display_latency_p(0.99) >= 900);

        // An untouched registry derives the all-zero default.
        assert_eq!(
            ScenarioCounters::from_metrics(&MetricRegistry::new()),
            ScenarioCounters::default()
        );
    }

    #[test]
    fn scenario_counters_gate_summary_and_hash() {
        let plain = report(1.0, 1.0, 1);
        assert!(
            !plain.summary().contains("scenario"),
            "all-default scenario stays out of the summary"
        );
        let mut with = plain.clone();
        with.scenario.metered_bytes_down = 4096;
        with.scenario.prefetch_wasted_ads = 1;
        with.scenario.display_latency_ms.record(250);
        assert!(with.summary().contains("scenario"));
        assert_ne!(
            plain.stable_hash(),
            with.stable_hash(),
            "populated scenario counters change the hash"
        );
        let mut merged = plain.clone();
        merged.merge(&with);
        assert_eq!(merged.scenario.metered_bytes_down, 4096);
        assert_eq!(merged.scenario.display_latency_ms.count(), 1);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let r = report(55.0, 5.0, 12);
        let mut left = SimReport::empty();
        left.merge(&r);
        assert_eq!(left, r, "empty.merge(r) == r, config adopted");
        let mut right = r.clone();
        right.merge(&SimReport::empty());
        assert_eq!(right, r, "r.merge(empty) == r");
    }

    #[test]
    fn summary_contains_key_numbers() {
        let r = report(123.0, 4.5, 10);
        let s = r.summary();
        assert!(s.contains("energy=123.0 J"));
        assert!(s.contains("revenue=$4.50"));
    }
}
