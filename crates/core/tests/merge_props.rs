//! Property tests for the sharded-report reduction: `SimReport::merge`
//! must behave like a sum over disjoint shard populations.

use adpf_auction::LedgerTotals;
use adpf_core::SimReport;
use adpf_energy::EnergyBreakdown;
use proptest::prelude::*;

/// Builds a report from a compact tuple of generated scalars.
fn report(
    counters: (u64, u64, u64, u64, u64),
    money: (f64, f64, f64),
    energy: (f64, f64, f64),
    per_user: Vec<f64>,
    days: u32,
) -> SimReport {
    let (slots, impressions, cache_hits, syncs, sold) = counters;
    let (revenue, sold_value, refunded) = money;
    let (promotion_j, transfer_j, tail_j) = energy;
    let mut r = SimReport::empty();
    r.config = "prop".into();
    r.users = per_user.len() as u32;
    r.days = days;
    r.slots = slots;
    r.impressions = impressions;
    r.cache_hits = cache_hits;
    r.realtime_fetches = impressions.saturating_sub(cache_hits);
    r.unfilled = slots.saturating_sub(impressions);
    r.energy = EnergyBreakdown {
        promotion_j,
        transfer_j,
        tail_j,
        transfers: syncs,
        promotions: syncs,
        bytes_down: slots * 4096,
        bytes_up: impressions * 512,
        ..EnergyBreakdown::default()
    };
    r.syncs = syncs;
    r.syncs_skipped = syncs / 2;
    r.syncs_dropped = syncs / 7;
    r.replicas_assigned = sold / 3;
    r.per_user_energy_j = per_user;
    r.ledger = LedgerTotals {
        sold,
        billed: sold / 2,
        revenue,
        sold_value,
        expired: sold - sold / 2,
        refunded,
        duplicates: sold / 5,
        late_displays: sold / 9,
    };
    r
}

/// One strategy drawing a whole report. Counters stay below 2^32 so sums
/// of three reports cannot overflow u64; money/energy stay positive and
/// well-scaled.
fn arb_report() -> impl Strategy<Value = SimReport> {
    (
        (
            0u64..1 << 32,
            0u64..1 << 32,
            0u64..1 << 32,
            0u64..1 << 32,
            0u64..1 << 32,
        ),
        (0.0f64..1e6, 0.0f64..1e6, 0.0f64..1e6),
        (0.0f64..1e9, 0.0f64..1e9, 0.0f64..1e9),
        prop::collection::vec(0.0f64..1e4, 0..8),
        0u32..64,
    )
        .prop_map(|(counters, money, energy, per_user, days)| {
            report(counters, money, energy, per_user, days)
        })
}

/// Exact equality on the integer (counting) fields, which must merge
/// without any tolerance.
fn int_fields(r: &SimReport) -> Vec<u64> {
    vec![
        r.users as u64,
        r.days as u64,
        r.slots,
        r.impressions,
        r.cache_hits,
        r.realtime_fetches,
        r.unfilled,
        r.syncs,
        r.syncs_skipped,
        r.syncs_dropped,
        r.replicas_assigned,
        r.energy.transfers,
        r.energy.promotions,
        r.energy.bytes_down,
        r.energy.bytes_up,
        r.ledger.sold,
        r.ledger.billed,
        r.ledger.expired,
        r.ledger.duplicates,
        r.ledger.late_displays,
    ]
}

/// The floating-point (additive) fields.
fn float_fields(r: &SimReport) -> Vec<f64> {
    vec![
        r.energy.promotion_j,
        r.energy.transfer_j,
        r.energy.tail_j,
        r.ledger.revenue,
        r.ledger.sold_value,
        r.ledger.refunded,
    ]
}

fn close(a: &[f64], b: &[f64], rel: f64) -> bool {
    a.iter()
        .zip(b)
        .all(|(&x, &y)| (x - y).abs() <= rel * x.abs().max(y.abs()).max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_with_empty_is_identity(a in arb_report()) {
        let mut left = SimReport::empty();
        left.merge(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&SimReport::empty());
        prop_assert_eq!(&right, &a);
    }

    #[test]
    fn merge_is_commutative_on_additive_fields(a in arb_report(), b in arb_report()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(int_fields(&ab), int_fields(&ba));
        // IEEE-754 addition is exactly commutative, so even the float
        // fields must match bit-for-bit.
        prop_assert_eq!(float_fields(&ab), float_fields(&ba));
        // The per-user series is order-sensitive by design (shard order
        // encodes user indexing), but its contents are permutations.
        let mut pa = ab.per_user_energy_j.clone();
        let mut pb = ba.per_user_energy_j.clone();
        pa.sort_by(f64::total_cmp);
        pb.sort_by(f64::total_cmp);
        prop_assert_eq!(pa, pb);
    }

    #[test]
    fn merge_is_associative_on_additive_fields(
        a in arb_report(),
        b in arb_report(),
        c in arb_report(),
    ) {
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(int_fields(&left), int_fields(&right));
        // Float addition is not exactly associative; the totals must
        // agree to rounding error.
        prop_assert!(
            close(&float_fields(&left), &float_fields(&right), 1e-12),
            "{:?} vs {:?}",
            float_fields(&left),
            float_fields(&right)
        );
        // Concatenation, however, is exactly associative.
        prop_assert_eq!(&left.per_user_energy_j, &right.per_user_energy_j);
        prop_assert_eq!(left.users, right.users);
    }

    #[test]
    fn merge_accumulates_user_series_in_order(a in arb_report(), b in arb_report()) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert_eq!(m.users as usize, m.per_user_energy_j.len());
        let expected: Vec<f64> = a
            .per_user_energy_j
            .iter()
            .chain(b.per_user_energy_j.iter())
            .copied()
            .collect();
        prop_assert_eq!(m.per_user_energy_j, expected);
    }
}
