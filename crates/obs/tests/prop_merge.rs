//! Property tests for registry merging: the per-shard merge must be
//! order-insensitive for counters/gauges and bucket-exact for
//! histograms, mirroring the `SimReport::merge` determinism contract.

use adpf_obs::{Histogram, MetricRegistry, ObsSink};
use proptest::prelude::*;

const COUNTERS: [&str; 3] = ["c.syncs", "c.retries", "c.failures"];
const GAUGES: [&str; 2] = ["g.peak_a", "g.peak_b"];
const HISTS: [&str; 2] = ["h.delay_ms", "h.depth"];

/// One generated update: (shard, metric family, metric index, value).
type Op = (usize, u8, usize, u64);

fn apply(reg: &MetricRegistry, &(_, family, idx, value): &Op) {
    match family % 3 {
        0 => reg.add(COUNTERS[idx % COUNTERS.len()], value % 1_000),
        1 => reg.gauge_max(GAUGES[idx % GAUGES.len()], value),
        _ => reg.observe(HISTS[idx % HISTS.len()], value),
    }
}

fn shard_registries(ops: &[Op], shards: usize) -> Vec<MetricRegistry> {
    let regs: Vec<MetricRegistry> = (0..shards).map(|_| MetricRegistry::new()).collect();
    for op in ops {
        apply(&regs[op.0 % shards], op);
    }
    regs
}

fn merge_in_order(regs: &[MetricRegistry], order: impl Iterator<Item = usize>) -> MetricRegistry {
    let mut merged = MetricRegistry::new();
    for i in order {
        merged.merge(&regs[i]);
    }
    merged
}

proptest! {
    #[test]
    fn merge_is_order_insensitive(
        ops in prop::collection::vec((0usize..5, 0u8..3, 0usize..3, 0u64..2_000_000), 1..250),
        shards in 2usize..6,
    ) {
        let regs = shard_registries(&ops, shards);
        let fwd = merge_in_order(&regs, 0..shards);
        let rev = merge_in_order(&regs, (0..shards).rev());
        // An arbitrary rotation as a third order.
        let rot = merge_in_order(&regs, (0..shards).map(|i| (i + shards / 2) % shards));
        prop_assert_eq!(fwd.snapshot(), rev.snapshot());
        prop_assert_eq!(fwd.snapshot(), rot.snapshot());
    }

    #[test]
    fn merged_shards_are_bucket_exact_vs_a_single_registry(
        ops in prop::collection::vec((0usize..5, 0u8..3, 0usize..3, 0u64..2_000_000), 1..250),
        shards in 1usize..6,
    ) {
        // Applying every op to one registry must equal sharding the ops
        // and merging: histograms bucket-for-bucket, counters exactly.
        let whole = MetricRegistry::new();
        for op in &ops {
            apply(&whole, op);
        }
        let merged = merge_in_order(&shard_registries(&ops, shards), 0..shards);
        prop_assert_eq!(whole.snapshot(), merged.snapshot());
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in prop::collection::vec(0u64..u64::MAX, 0..100),
        split in 0usize..100,
    ) {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        let cut = split % (xs.len() + 1);
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i < cut {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right;
        rl.merge(&left);
        prop_assert_eq!(&lr, &all);
        prop_assert_eq!(&rl, &all);
    }
}
