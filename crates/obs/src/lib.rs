//! Deterministic observability for the ad-prefetching simulator.
//!
//! Three layers, smallest possible surface:
//!
//! - [`MetricRegistry`]: counters, high-water gauges, and fixed
//!   log-linear-bucket [`Histogram`]s behind pre-resolved [`MetricId`]s, so the
//!   hot path is an array index and an integer add — no allocation, no
//!   string hashing, no floating point. All metric state is integral,
//!   which makes [`MetricRegistry::merge`] exactly associative and
//!   commutative for counters, histograms, and gauges: per-shard
//!   registries merged in shard order (mirroring `SimReport::merge`)
//!   produce the same values regardless of how work was scheduled.
//! - [`ObsSink`]: the trait instrumented code writes through when it
//!   cannot (or need not) pre-resolve ids. [`NoopSink`] reports
//!   `enabled() == false` and has empty inline bodies, so monomorphized
//!   call sites compile to nothing measurable.
//! - [`Span`]: an RAII wall-clock timer that records into a sink on
//!   drop and skips the clock read entirely when the sink is disabled.
//!
//! Determinism rule of thumb: anything derived from simulated state
//! (counts, simulated durations, sizes) may feed counters/gauges/
//! histograms and will be bit-identical across thread counts; wall-clock
//! time goes only into `time` metrics, which are expected to vary and
//! must never feed back into simulation decisions.

pub mod export;
pub mod hist;
pub mod registry;
pub mod rss;
pub mod sink;
pub mod span;

pub use export::{render_table, to_json_lines, validate_json_lines};
pub use hist::{Histogram, NUM_BUCKETS};
pub use registry::{MetricId, MetricKind, MetricRegistry, MetricSnapshot, MetricValue};
pub use rss::{current_rss_kb, peak_rss_kb, record_peak_rss, PEAK_RSS_METRIC, PROC_PREFIX};
pub use sink::{NoopSink, ObsSink};
pub use span::Span;
