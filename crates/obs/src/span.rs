//! RAII wall-clock timers.

use std::time::Instant;

use crate::sink::ObsSink;

/// Times a scope and records the elapsed nanoseconds into a `Time`
/// metric when dropped. When the sink is disabled the clock is never
/// read, so a span over a [`NoopSink`](crate::NoopSink) costs one
/// inlined boolean check.
///
/// ```
/// use adpf_obs::{MetricRegistry, ObsSink, Span};
/// let reg = MetricRegistry::new();
/// {
///     let _span = Span::enter(&reg, "phase.example");
///     // ... work ...
/// }
/// assert_eq!(reg.snapshot().len(), 1);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a, S: ObsSink + ?Sized> {
    sink: &'a S,
    name: &'static str,
    start: Option<Instant>,
}

impl<'a, S: ObsSink + ?Sized> Span<'a, S> {
    #[inline]
    pub fn enter(sink: &'a S, name: &'static str) -> Self {
        let start = sink.enabled().then(Instant::now);
        Span { sink, name, start }
    }
}

impl<S: ObsSink + ?Sized> Drop for Span<'_, S> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.sink
                .add_time_ns(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;
    use crate::sink::NoopSink;

    #[test]
    fn span_records_elapsed_time_on_drop() {
        let reg = MetricRegistry::new();
        {
            let _span = Span::enter(&reg, "phase.test");
            std::hint::black_box(0u64);
        }
        // Monotonic clocks can report 0ns for trivial scopes; the slot
        // must exist either way.
        assert!(reg.snapshot().iter().any(|m| m.name == "phase.test"));
    }

    #[test]
    fn span_over_noop_sink_never_reads_the_clock() {
        let sink = NoopSink;
        let span = Span::enter(&sink, "phase.skipped");
        assert!(span.start.is_none());
    }

    #[test]
    fn nested_spans_accumulate_into_the_same_metric() {
        let reg = MetricRegistry::new();
        for _ in 0..3 {
            let _span = Span::enter(&reg, "phase.loop");
        }
        assert_eq!(
            reg.snapshot()
                .iter()
                .filter(|m| m.name == "phase.loop")
                .count(),
            1
        );
    }
}
