//! The sink trait instrumented code writes through, and its no-op.

use crate::hist::Histogram;

/// Destination for metric updates keyed by static names.
///
/// Code that sits on a hot path should pre-resolve
/// [`MetricId`](crate::MetricId)s against a concrete
/// [`MetricRegistry`](crate::MetricRegistry) instead; this trait is for
/// the seams — publish-at-finalize helpers and generic engine hooks —
/// where the concrete sink is a type parameter and [`NoopSink`] must
/// erase the instrumentation entirely.
///
/// All methods take `&self`: sinks are expected to use interior
/// mutability so a long-lived [`Span`](crate::Span) borrow never locks
/// out other updates.
pub trait ObsSink {
    /// Whether updates go anywhere. Callers may skip expensive
    /// preparation (e.g. reading the wall clock) when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Add to a counter.
    fn add(&self, name: &'static str, delta: u64);

    /// Raise a high-water gauge to at least `value`.
    fn gauge_max(&self, name: &'static str, value: u64);

    /// Record one histogram sample.
    fn observe(&self, name: &'static str, value: u64);

    /// Record `n` identical histogram samples in one update.
    fn observe_n(&self, name: &'static str, value: u64, n: u64);

    /// Fold a pre-aggregated histogram into the named histogram.
    fn merge_histogram(&self, name: &'static str, hist: &Histogram);

    /// Add wall-clock nanoseconds to a time metric.
    fn add_time_ns(&self, name: &'static str, nanos: u64);
}

/// The disabled sink: every method is an empty `#[inline]` body and
/// `enabled()` is `false`, so instrumentation monomorphized against it
/// compiles to nothing measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl ObsSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn add(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge_max(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn observe(&self, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn observe_n(&self, _name: &'static str, _value: u64, _n: u64) {}

    #[inline(always)]
    fn merge_histogram(&self, _name: &'static str, _hist: &Histogram) {}

    #[inline(always)]
    fn add_time_ns(&self, _name: &'static str, _nanos: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let s = NoopSink;
        assert!(!s.enabled());
        s.add("x", 1);
        s.gauge_max("x", 1);
        s.observe("x", 1);
        s.observe_n("x", 1, 2);
        s.merge_histogram("x", &Histogram::new());
        s.add_time_ns("x", 1);
    }
}
