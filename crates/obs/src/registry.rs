//! The metric registry: named slots behind pre-resolved ids.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::hist::Histogram;
use crate::sink::ObsSink;

/// What a metric slot holds and how it merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// Monotone sum; merges by addition.
    Counter,
    /// High-water mark; merges by max.
    Gauge,
    /// Log₂-bucket histogram; merges bucket-wise.
    Histogram,
    /// Accumulated wall-clock nanoseconds; merges by addition.
    /// The one kind whose values are *not* deterministic across runs.
    Time,
}

impl MetricKind {
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Time => "time",
        }
    }
}

/// Pre-resolved handle to a slot in one specific registry. Updating
/// through an id is an array index plus an integer add — the hot path
/// never hashes a name or allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(u32);

#[derive(Debug)]
enum Slot {
    Counter(u64),
    Gauge(u64),
    Hist(Box<Histogram>),
    Time(u64),
}

#[derive(Default, Debug)]
struct Inner {
    /// Names and kinds in registration order, parallel to `slots`.
    names: Vec<(&'static str, MetricKind)>,
    slots: Vec<Slot>,
    index: HashMap<(&'static str, MetricKind), u32>,
}

impl Inner {
    fn register(&mut self, name: &'static str, kind: MetricKind) -> MetricId {
        if let Some(&i) = self.index.get(&(name, kind)) {
            return MetricId(i);
        }
        let i = self.slots.len() as u32;
        self.names.push((name, kind));
        self.slots.push(match kind {
            MetricKind::Counter => Slot::Counter(0),
            MetricKind::Gauge => Slot::Gauge(0),
            MetricKind::Histogram => Slot::Hist(Box::default()),
            MetricKind::Time => Slot::Time(0),
        });
        self.index.insert((name, kind), i);
        MetricId(i)
    }
}

/// A set of named metrics with deterministic merge semantics.
///
/// Interior mutability (`RefCell`) keeps all update methods `&self`, so
/// a registry can serve as an [`ObsSink`] while spans and instrumented
/// components hold shared references to it. Registries are `Send` but
/// not `Sync`; parallel runs keep one per shard and merge them in shard
/// order, exactly like `SimReport::merge`.
#[derive(Default, Debug)]
pub struct MetricRegistry {
    inner: RefCell<Inner>,
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    // ---- registration --------------------------------------------------

    pub fn counter(&self, name: &'static str) -> MetricId {
        self.inner.borrow_mut().register(name, MetricKind::Counter)
    }

    pub fn gauge(&self, name: &'static str) -> MetricId {
        self.inner.borrow_mut().register(name, MetricKind::Gauge)
    }

    pub fn histogram(&self, name: &'static str) -> MetricId {
        self.inner
            .borrow_mut()
            .register(name, MetricKind::Histogram)
    }

    pub fn timer(&self, name: &'static str) -> MetricId {
        self.inner.borrow_mut().register(name, MetricKind::Time)
    }

    // ---- hot-path updates by id ---------------------------------------

    #[inline]
    pub fn inc(&self, id: MetricId, delta: u64) {
        if let Slot::Counter(v) = &mut self.inner.borrow_mut().slots[id.0 as usize] {
            *v += delta;
        }
    }

    #[inline]
    pub fn gauge_max_id(&self, id: MetricId, value: u64) {
        if let Slot::Gauge(v) = &mut self.inner.borrow_mut().slots[id.0 as usize] {
            *v = (*v).max(value);
        }
    }

    #[inline]
    pub fn observe_id(&self, id: MetricId, value: u64) {
        if let Slot::Hist(h) = &mut self.inner.borrow_mut().slots[id.0 as usize] {
            h.record(value);
        }
    }

    #[inline]
    pub fn add_time_ns_id(&self, id: MetricId, nanos: u64) {
        if let Slot::Time(v) = &mut self.inner.borrow_mut().slots[id.0 as usize] {
            *v += nanos;
        }
    }

    // ---- readers -------------------------------------------------------

    /// Value of a counter, or 0 if it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.find(name, MetricKind::Counter) {
            Some(MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Value of a gauge, or 0 if it was never registered.
    pub fn gauge_value(&self, name: &str) -> u64 {
        match self.find(name, MetricKind::Gauge) {
            Some(MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// Accumulated nanoseconds of a time metric, or 0 if absent.
    pub fn time_ns(&self, name: &str) -> u64 {
        match self.find(name, MetricKind::Time) {
            Some(MetricValue::Time { nanos }) => nanos,
            _ => 0,
        }
    }

    /// Copy of a histogram, or `None` if absent.
    pub fn histogram_snapshot(&self, name: &str) -> Option<Histogram> {
        match self.find(name, MetricKind::Histogram) {
            Some(MetricValue::Histogram(h)) => Some(*h),
            _ => None,
        }
    }

    fn find(&self, name: &str, kind: MetricKind) -> Option<MetricValue> {
        let inner = self.inner.borrow();
        // Linear scan: keys are `&'static str` so a borrowed `&str`
        // cannot index the map; readers run at finalize/export time
        // where O(metric count) is irrelevant.
        let i = inner
            .names
            .iter()
            .position(|&(n, k)| n == name && k == kind)?;
        Some(MetricValue::from_slot(&inner.slots[i]))
    }

    pub fn len(&self) -> usize {
        self.inner.borrow().slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- merge & snapshot ---------------------------------------------

    /// Fold another registry into this one: counters and times add,
    /// gauges take the max, histograms sum bucket-wise. Metrics absent
    /// on either side are treated as zero-valued, so merging is exactly
    /// associative and commutative for every kind.
    pub fn merge(&mut self, other: &MetricRegistry) {
        let mut inner = self.inner.borrow_mut();
        let other = other.inner.borrow();
        for ((name, kind), slot) in other.names.iter().zip(other.slots.iter()) {
            let id = inner.register(name, *kind);
            match (&mut inner.slots[id.0 as usize], slot) {
                (Slot::Counter(a), Slot::Counter(b)) => *a += b,
                (Slot::Gauge(a), Slot::Gauge(b)) => *a = (*a).max(*b),
                (Slot::Hist(a), Slot::Hist(b)) => a.merge(b),
                (Slot::Time(a), Slot::Time(b)) => *a += b,
                _ => unreachable!("register() returned a slot of the wrong kind"),
            }
        }
    }

    /// All metrics, sorted by `(name, kind)` for deterministic export
    /// regardless of registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let inner = self.inner.borrow();
        let mut out: Vec<MetricSnapshot> = inner
            .names
            .iter()
            .zip(inner.slots.iter())
            .map(|(&(name, kind), slot)| MetricSnapshot {
                name,
                kind,
                value: MetricValue::from_slot(slot),
            })
            .collect();
        out.sort_by_key(|m| (m.name, m.kind));
        out
    }

    /// Snapshot restricted to deterministic metrics: wall-clock `Time`
    /// entries and host-fact metrics (the [`crate::rss::PROC_PREFIX`]
    /// namespace — process RSS and friends, which vary run to run even
    /// on identical workloads) are dropped. Two runs of the same
    /// workload must produce equal deterministic snapshots at any
    /// thread count.
    pub fn deterministic_snapshot(&self) -> Vec<MetricSnapshot> {
        self.snapshot()
            .into_iter()
            .filter(|m| m.kind != MetricKind::Time && !m.name.starts_with(crate::rss::PROC_PREFIX))
            .collect()
    }
}

/// Point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    pub name: &'static str,
    pub kind: MetricKind,
    pub value: MetricValue,
}

#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Time { nanos: u64 },
    // Boxed: a histogram is ~550 bytes and would otherwise dominate the
    // size of every snapshot entry.
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn from_slot(slot: &Slot) -> Self {
        match slot {
            Slot::Counter(v) => MetricValue::Counter(*v),
            Slot::Gauge(v) => MetricValue::Gauge(*v),
            Slot::Hist(h) => MetricValue::Histogram(h.clone()),
            Slot::Time(v) => MetricValue::Time { nanos: *v },
        }
    }
}

/// A registry is itself a sink: the dynamic-name path registers (or
/// finds) the slot and updates it. Used at publish-at-finalize seams;
/// hot paths should hold [`MetricId`]s instead.
impl ObsSink for MetricRegistry {
    fn add(&self, name: &'static str, delta: u64) {
        let id = self.counter(name);
        self.inc(id, delta);
    }

    fn gauge_max(&self, name: &'static str, value: u64) {
        let id = self.gauge(name);
        self.gauge_max_id(id, value);
    }

    fn observe(&self, name: &'static str, value: u64) {
        let id = self.histogram(name);
        self.observe_id(id, value);
    }

    fn observe_n(&self, name: &'static str, value: u64, n: u64) {
        let id = self.histogram(name);
        if let Slot::Hist(h) = &mut self.inner.borrow_mut().slots[id.0 as usize] {
            h.record_n(value, n);
        }
    }

    fn merge_histogram(&self, name: &'static str, hist: &Histogram) {
        let id = self.histogram(name);
        if let Slot::Hist(h) = &mut self.inner.borrow_mut().slots[id.0 as usize] {
            h.merge(hist);
        }
    }

    fn add_time_ns(&self, name: &'static str, nanos: u64) {
        let id = self.timer(name);
        self.add_time_ns_id(id, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_update_their_slots() {
        let r = MetricRegistry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h");
        let t = r.timer("t");
        r.inc(c, 2);
        r.inc(c, 3);
        r.gauge_max_id(g, 7);
        r.gauge_max_id(g, 4);
        r.observe_id(h, 100);
        r.add_time_ns_id(t, 1_000);
        assert_eq!(r.counter_value("c"), 5);
        assert_eq!(r.gauge_value("g"), 7);
        assert_eq!(r.histogram_snapshot("h").unwrap().count(), 1);
        assert_eq!(r.time_ns("t"), 1_000);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn reregistration_returns_the_same_id() {
        let r = MetricRegistry::new();
        assert_eq!(r.counter("x"), r.counter("x"));
        // Same name, different kind: a distinct slot.
        let _ = r.timer("x");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn absent_metrics_read_as_zero() {
        let r = MetricRegistry::new();
        assert_eq!(r.counter_value("nope"), 0);
        assert_eq!(r.gauge_value("nope"), 0);
        assert_eq!(r.time_ns("nope"), 0);
        assert!(r.histogram_snapshot("nope").is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn sink_impl_registers_on_demand() {
        let r = MetricRegistry::new();
        assert!(r.enabled());
        r.add("a", 1);
        r.add("a", 2);
        r.gauge_max("b", 9);
        r.observe("c", 3);
        r.observe_n("c", 5, 2);
        let mut pre = Histogram::new();
        pre.record(8);
        r.merge_histogram("c", &pre);
        r.add_time_ns("d", 50);
        assert_eq!(r.counter_value("a"), 3);
        assert_eq!(r.gauge_value("b"), 9);
        let h = r.histogram_snapshot("c").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3 + 10 + 8);
        assert_eq!(r.time_ns("d"), 50);
    }

    #[test]
    fn merge_combines_by_kind_and_tolerates_disjoint_names() {
        let mut a = MetricRegistry::new();
        let b = MetricRegistry::new();
        a.add("shared.count", 1);
        b.add("shared.count", 10);
        a.gauge_max("peak", 3);
        b.gauge_max("peak", 8);
        a.observe("lat", 4);
        b.observe("lat", 1024);
        b.add("only.b", 5);
        a.add_time_ns("wall", 100);
        b.add_time_ns("wall", 200);
        a.merge(&b);
        assert_eq!(a.counter_value("shared.count"), 11);
        assert_eq!(a.gauge_value("peak"), 8);
        assert_eq!(a.counter_value("only.b"), 5);
        assert_eq!(a.time_ns("wall"), 300);
        let h = a.histogram_snapshot("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic_filter_drops_time() {
        let r = MetricRegistry::new();
        r.add("zz", 1);
        r.add_time_ns("aa.wall", 5);
        r.add("mm", 2);
        let snap = r.snapshot();
        let names: Vec<_> = snap.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["aa.wall", "mm", "zz"]);
        let det = r.deterministic_snapshot();
        assert!(det.iter().all(|m| m.kind != MetricKind::Time));
        assert_eq!(det.len(), 2);
    }
}
