//! Metric export: JSON-lines for machines, a table for humans.
//!
//! The JSON-lines schema is one object per line:
//!
//! ```text
//! {"label":"smoke","name":"sim.event.slot","kind":"counter","value":1234}
//! {"label":"smoke","name":"overbooking.peak_tracked","kind":"gauge","value":17}
//! {"label":"smoke","name":"phase.merge","kind":"time","nanos":52100}
//! {"label":"smoke","name":"energy.user.tail_ms","kind":"histogram",
//!  "count":40,"sum":9000,"min":100,"max":400,"buckets":[[7,12],[8,28]]}
//! ```
//!
//! `label` is omitted when empty. Histogram `buckets` are
//! `[bucket_index, count]` pairs for non-empty buckets only, in the
//! log-linear layout of [`crate::hist::Histogram::bucket_index`]
//! (bucket 0 holds zeros, values below 8 index themselves, then 4
//! linear sub-buckets per power-of-two octave).
//! Lines are sorted by `(name, kind)`, so a given registry always
//! exports byte-identically.

use std::fmt::Write as _;

use crate::registry::{MetricRegistry, MetricValue};

/// Serialize every metric as one JSON object per line.
pub fn to_json_lines(reg: &MetricRegistry, label: &str) -> String {
    let mut out = String::new();
    for m in reg.snapshot() {
        out.push('{');
        if !label.is_empty() {
            let _ = write!(out, "\"label\":\"{}\",", escape(label));
        }
        let _ = write!(
            out,
            "\"name\":\"{}\",\"kind\":\"{}\"",
            m.name,
            m.kind.label()
        );
        match &m.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            MetricValue::Time { nanos } => {
                let _ = write!(out, ",\"nanos\":{nanos}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                );
                for (i, (bucket, n)) in h.nonzero_buckets().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{bucket},{n}]");
                }
                out.push(']');
            }
        }
        out.push_str("}\n");
    }
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Render metrics as an aligned human-readable table, sorted by name.
pub fn render_table(reg: &MetricRegistry) -> String {
    let snap = reg.snapshot();
    if snap.is_empty() {
        return "  (no metrics recorded)\n".to_string();
    }
    let rows: Vec<(String, &'static str, String)> = snap
        .iter()
        .map(|m| {
            let summary = match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => v.to_string(),
                MetricValue::Time { nanos } => format!("{:.3} ms", *nanos as f64 / 1e6),
                MetricValue::Histogram(h) => format!(
                    "n={} mean={:.1} min={} p95<={} max={}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.quantile_upper_bound(0.95),
                    h.max()
                ),
            };
            (m.name.to_string(), m.kind.label(), summary)
        })
        .collect();
    let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let kind_w = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, kind, summary) in rows {
        let _ = writeln!(out, "  {name:<name_w$}  {kind:<kind_w$}  {summary}");
    }
    out
}

/// Structural validation of a JSON-lines metrics file as produced by
/// [`to_json_lines`]. Returns the number of metric lines on success.
///
/// This is a schema check, not a JSON parser: each non-empty line must
/// be a single object carrying `name` and a known `kind`, plus the
/// value keys that kind requires.
pub fn validate_json_lines(contents: &str) -> Result<usize, String> {
    let mut n = 0;
    for (lineno, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fail = |why: &str| Err(format!("line {}: {why}: {line}", lineno + 1));
        if !(line.starts_with('{') && line.ends_with('}')) {
            return fail("not a JSON object");
        }
        if !line.contains("\"name\":\"") {
            return fail("missing \"name\"");
        }
        let kind = ["counter", "gauge", "histogram", "time"]
            .iter()
            .find(|k| line.contains(&format!("\"kind\":\"{k}\"")));
        let required: &[&str] = match kind {
            Some(&"counter") | Some(&"gauge") => &["\"value\":"],
            Some(&"time") => &["\"nanos\":"],
            Some(&"histogram") => &[
                "\"count\":",
                "\"sum\":",
                "\"min\":",
                "\"max\":",
                "\"buckets\":[",
            ],
            _ => return fail("missing or unknown \"kind\""),
        };
        for key in required {
            if !line.contains(key) {
                return Err(format!("line {}: missing {key}: {line}", lineno + 1));
            }
        }
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsSink;

    fn sample_registry() -> MetricRegistry {
        let reg = MetricRegistry::new();
        reg.add("z.count", 12);
        reg.gauge_max("a.peak", 7);
        reg.observe("m.hist", 0);
        reg.observe("m.hist", 300);
        reg.add_time_ns("p.wall", 1_500_000);
        reg
    }

    #[test]
    fn json_lines_round_trip_through_the_validator() {
        let reg = sample_registry();
        let text = to_json_lines(&reg, "unit");
        assert_eq!(validate_json_lines(&text), Ok(4));
        assert!(text.starts_with("{\"label\":\"unit\",\"name\":\"a.peak\""));
        assert!(text.contains("\"name\":\"m.hist\",\"kind\":\"histogram\",\"count\":2"));
        // 300 sits in the first quarter of the [256, 512) octave:
        // bucket 8 + 5*4 = 28.
        assert!(text.contains("\"buckets\":[[0,1],[28,1]]"));
        // Empty label omits the key entirely.
        let unlabeled = to_json_lines(&reg, "");
        assert!(!unlabeled.contains("label"));
        assert_eq!(validate_json_lines(&unlabeled), Ok(4));
    }

    #[test]
    fn export_is_deterministic_under_registration_order() {
        let a = sample_registry();
        let b = MetricRegistry::new();
        b.add_time_ns("p.wall", 1_500_000);
        b.observe("m.hist", 300);
        b.observe("m.hist", 0);
        b.gauge_max("a.peak", 7);
        b.add("z.count", 12);
        assert_eq!(to_json_lines(&a, "x"), to_json_lines(&b, "x"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_json_lines("not json").is_err());
        assert!(validate_json_lines("{\"kind\":\"counter\",\"value\":1}").is_err());
        assert!(validate_json_lines("{\"name\":\"x\",\"kind\":\"wat\",\"value\":1}").is_err());
        assert!(validate_json_lines("{\"name\":\"x\",\"kind\":\"counter\"}").is_err());
        assert!(
            validate_json_lines("{\"name\":\"x\",\"kind\":\"histogram\",\"count\":1}").is_err()
        );
        assert_eq!(validate_json_lines("\n\n"), Ok(0));
    }

    #[test]
    fn table_renders_every_metric_once() {
        let reg = sample_registry();
        let table = render_table(&reg);
        for name in ["z.count", "a.peak", "m.hist", "p.wall"] {
            assert_eq!(table.matches(name).count(), 1, "{name} in:\n{table}");
        }
        assert!(render_table(&MetricRegistry::new()).contains("no metrics"));
    }
}
