//! Process-memory high-water instrumentation.
//!
//! The streaming shard pipeline's whole claim is a *memory* bound —
//! peak RSS stays O(users-per-shard × threads) instead of
//! O(population) — so the bench layer needs a way to observe the bound
//! it advertises. This module reads the kernel's resident-set
//! accounting from `/proc/self/status` and publishes it as a gauge.
//!
//! Host facts are not simulation outcomes: every metric published here
//! lives under the [`PROC_PREFIX`] namespace, which
//! [`crate::MetricRegistry::deterministic_snapshot`] excludes, so RSS
//! gauges never participate in determinism or hash-equivalence checks.

use crate::sink::ObsSink;

/// Name prefix of host-fact metrics (process memory, and anything else
/// read from the OS rather than computed by the simulation). Excluded
/// from deterministic snapshots.
pub const PROC_PREFIX: &str = "proc.";

/// Gauge holding the process's lifetime peak resident set size, in KiB.
pub const PEAK_RSS_METRIC: &str = "proc.peak_rss_kb";

/// The process's peak resident set size ("VmHWM") in KiB, or `None`
/// where no `/proc` filesystem exposes it (non-Linux hosts).
///
/// VmHWM is a lifetime high-water mark maintained by the kernel: it
/// only ever grows, so a measurement taken after a workload bounds the
/// memory that workload (plus everything before it in the process) ever
/// held resident.
pub fn peak_rss_kb() -> Option<u64> {
    read_status_kb("VmHWM:")
}

/// The process's current resident set size ("VmRSS") in KiB, or `None`
/// where unavailable.
pub fn current_rss_kb() -> Option<u64> {
    read_status_kb("VmRSS:")
}

/// Records the current peak RSS into `sink` as the [`PEAK_RSS_METRIC`]
/// gauge (merge-by-max, matching the kernel's own high-water
/// semantics); returns the value in KiB. A no-op returning `None` where
/// RSS is unavailable.
pub fn record_peak_rss(sink: &dyn ObsSink) -> Option<u64> {
    let kb = peak_rss_kb()?;
    sink.gauge_max(PEAK_RSS_METRIC, kb);
    Some(kb)
}

/// Parses one `kB`-valued field out of `/proc/self/status`.
fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line[field.len()..]
        .trim()
        .trim_end_matches(" kB")
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    #[test]
    fn peak_rss_is_positive_and_at_least_current() {
        // On Linux (the only CI target) /proc must be readable; both
        // gauges are in KiB and the high-water mark bounds the current
        // value by definition.
        let (Some(peak), Some(current)) = (peak_rss_kb(), current_rss_kb()) else {
            return; // Non-procfs host: nothing to check.
        };
        assert!(peak > 0);
        assert!(peak >= current);
    }

    #[test]
    fn recorded_gauge_is_excluded_from_deterministic_snapshots() {
        let reg = MetricRegistry::new();
        reg.add("sim.slots", 3);
        let Some(kb) = record_peak_rss(&reg) else {
            return;
        };
        assert_eq!(reg.gauge_value(PEAK_RSS_METRIC), kb);
        let det = reg.deterministic_snapshot();
        assert!(
            det.iter().all(|m| !m.name.starts_with(PROC_PREFIX)),
            "host facts must not enter determinism checks"
        );
        assert!(det.iter().any(|m| m.name == "sim.slots"));
    }

    #[test]
    fn peak_rss_grows_monotonically() {
        let Some(before) = peak_rss_kb() else { return };
        // Touch a few MiB so the high-water mark has a chance to move;
        // whether it moves or not, it can never shrink.
        let ballast = vec![1u8; 4 << 20];
        std::hint::black_box(&ballast);
        let after = peak_rss_kb().expect("still readable");
        assert!(after >= before);
    }
}
