//! Fixed log-linear-bucket histogram.
//!
//! Bucket `0` holds the value zero and buckets `1..=7` hold their own
//! value exactly; from 8 up, each power-of-two octave `[2^(b-1), 2^b)`
//! is split into 4 linear steps of width `2^(b-3)` (the two bits after
//! the leading one select the step). Quantile upper bounds are
//! therefore within 25% of the true sample value instead of within a
//! full power of two — enough resolution for latency percentiles to be
//! meaningful near saturation. The bucket array is a fixed
//! `[u64; 252]`, so recording is branch-light (a `leading_zeros`, two
//! shifts and an indexed add) and merging is a bucket-wise integer
//! sum — exactly associative and commutative, which is what the
//! registry's determinism guarantee rests on.

/// One bucket for zero, seven exact buckets for `1..=7`, then 4 linear
/// sub-buckets per octave for bit lengths `4..=64`: `8 + 61 * 4 = 252`.
pub const NUM_BUCKETS: usize = 252;

/// Fixed-size log-linear histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: values below 8 index themselves;
    /// otherwise 4 sub-buckets per bit length, selected by the two bits
    /// after the leading one.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value < 8 {
            value as usize
        } else {
            let b = (64 - value.leading_zeros()) as usize; // bit length, >= 4
            let sub = ((value >> (b - 3)) & 3) as usize;
            8 + (b - 4) * 4 + sub
        }
    }

    /// Inclusive upper bound of the values a bucket can hold.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index < 8 {
            index as u64
        } else {
            let b = 4 + (index - 8) / 4;
            let sub = ((index - 8) % 4) as u64;
            // For the very last bucket (b = 64, sub = 3) the exact bound
            // is 2^64 - 1; the wrapping ops land on u64::MAX.
            (1u64 << (b - 1))
                .wrapping_add((sub + 1) << (b - 3))
                .wrapping_sub(1)
        }
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value` in one update.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise sum; min/max/count/sum combine exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile sample
    /// (`q` in `[0, 1]`). A log-linear approximation: exact below 8 and
    /// within 25% of the true sample value above.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_exact_below_eight() {
        for v in 0..8u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_splits_octaves_in_four() {
        // Octave [8, 16): width-2 steps.
        assert_eq!(Histogram::bucket_index(8), 8);
        assert_eq!(Histogram::bucket_index(9), 8);
        assert_eq!(Histogram::bucket_index(10), 9);
        assert_eq!(Histogram::bucket_index(14), 11);
        assert_eq!(Histogram::bucket_index(15), 11);
        // Octave [256, 512): width-64 steps.
        assert_eq!(Histogram::bucket_index(256), 8 + 5 * 4);
        assert_eq!(Histogram::bucket_index(319), 8 + 5 * 4);
        assert_eq!(Histogram::bucket_index(320), 8 + 5 * 4 + 1);
        assert_eq!(Histogram::bucket_index(511), 8 + 5 * 4 + 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            7,
            8,
            9,
            10,
            15,
            16,
            100,
            1023,
            1024,
            32_767,
            1 << 62,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let b = Histogram::bucket_index(v);
            assert!(b < NUM_BUCKETS);
            assert!(v <= Histogram::bucket_upper_bound(b), "v={v} b={b}");
            if b > 0 {
                assert!(v > Histogram::bucket_upper_bound(b - 1), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn bounds_are_strictly_monotone() {
        for i in 1..NUM_BUCKETS {
            assert!(
                Histogram::bucket_upper_bound(i) > Histogram::bucket_upper_bound(i - 1),
                "bucket {i}"
            );
        }
        assert_eq!(Histogram::bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_within_a_quarter() {
        // The defining property of the 4-steps-per-octave layout: the
        // bucket upper bound never overstates a sample by more than 25%.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for x in [v, v + v / 3, v + v / 2] {
                let bound = Histogram::bucket_upper_bound(Histogram::bucket_index(x));
                assert!(bound >= x);
                assert!(bound - x <= x / 4 + 1, "x={x} bound={bound}");
            }
            v = v.wrapping_mul(3) + 1;
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        h.record_n(7, 3);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 2 + 3 + 100 + 21);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 127.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn record_n_zero_is_a_noop() {
        let mut h = Histogram::new();
        h.record_n(42, 0);
        assert_eq!(h, Histogram::new());
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (i, v) in [0u64, 1, 5, 9, 1000, 65_536, 3].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            whole.record(*v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // And the other order.
        let mut merged_rev = b;
        merged_rev.merge(&a);
        assert_eq!(merged_rev, whole);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [10, 11], bound 11
        }
        h.record(1_000_000);
        assert_eq!(h.quantile_upper_bound(0.5), 11);
        assert_eq!(h.quantile_upper_bound(0.99), 11);
        assert_eq!(h.quantile_upper_bound(1.0), 1_000_000); // capped at max
    }

    #[test]
    fn saturation_median_resolves_below_a_power_of_two() {
        // The regression this layout fixes: a pile of ~20k-us latencies
        // used to report p50 = 32767 (the whole [16384, 32768) octave).
        let mut h = Histogram::new();
        for v in [20_000u64, 21_000, 22_000, 23_000] {
            h.record_n(v, 25);
        }
        let p50 = h.quantile_upper_bound(0.5);
        assert!(p50 < 24_576, "p50={p50} should resolve sub-octave");
        assert!(p50 >= 21_000);
    }
}
