//! Fixed log₂-bucket histogram.
//!
//! Bucket `0` holds the value zero; bucket `b > 0` holds values whose
//! bit length is `b`, i.e. the half-open range `[2^(b-1), 2^b)`. The
//! bucket array is a fixed `[u64; 65]`, so recording is branch-free
//! (a `leading_zeros` and an indexed add) and merging is a bucket-wise
//! integer sum — exactly associative and commutative, which is what the
//! registry's determinism guarantee rests on.

/// One bucket for zero plus one per possible bit length of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// Fixed-size log-scale histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; NUM_BUCKETS],
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: 0 for 0, otherwise the bit length.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of the values a bucket can hold.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` occurrences of `value` in one update.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise sum; min/max/count/sum combine exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile sample
    /// (`q` in `[0, 1]`). A log-bucket approximation: exact to within
    /// one power of two.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(b));
            if b > 0 {
                assert!(v > Histogram::bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        h.record_n(7, 3);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 2 + 3 + 100 + 21);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 127.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn record_n_zero_is_a_noop() {
        let mut h = Histogram::new();
        h.record_n(42, 0);
        assert_eq!(h, Histogram::new());
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for (i, v) in [0u64, 1, 5, 9, 1000, 65_536, 3].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            whole.record(*v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // And the other order.
        let mut merged_rev = b;
        merged_rev.merge(&a);
        assert_eq!(merged_rev, whole);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4, bound 15
        }
        h.record(1_000_000);
        assert_eq!(h.quantile_upper_bound(0.5), 15);
        assert_eq!(h.quantile_upper_bound(0.99), 15);
        assert_eq!(h.quantile_upper_bound(1.0), 1_000_000); // capped at max
    }
}
