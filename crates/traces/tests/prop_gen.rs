//! Property-based tests for trace generation and serialization.

use adpf_desim::SimDuration;
use adpf_traces::{csv, PopulationConfig, Trace};
use proptest::prelude::*;

/// A small but varied population configuration.
fn arb_config() -> impl Strategy<Value = PopulationConfig> {
    (
        1u32..20,       // users
        1u32..6,        // days
        1u16..40,       // apps
        0.0f64..2.0,    // zipf exponent
        1.0f64..30.0,   // sessions/day
        20.0f64..400.0, // session secs
        any::<u64>(),   // seed
    )
        .prop_map(
            |(users, days, apps, zipf, rate, secs, seed)| PopulationConfig {
                num_users: users,
                days,
                num_apps: apps,
                app_zipf_exponent: zipf,
                mean_sessions_per_day: rate,
                mean_session_secs: secs,
                seed,
                ..PopulationConfig::small_test(0)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces satisfy their structural invariants for any
    /// (sane) configuration.
    #[test]
    fn generated_traces_are_well_formed(cfg in arb_config()) {
        let trace = cfg.generate();
        prop_assert_eq!(trace.num_users(), cfg.num_users);
        // Sorted by start time, all inside the horizon, valid ids.
        let mut last = None;
        for s in trace.sessions() {
            if let Some(prev) = last {
                prop_assert!(s.start >= prev);
            }
            last = Some(s.start);
            prop_assert!(s.end() <= trace.horizon());
            prop_assert!(s.user.0 < cfg.num_users);
            prop_assert!(s.app.0 < cfg.num_apps);
            prop_assert!(!s.duration.is_zero());
        }
    }

    /// Slot derivation: every session contributes 1 + floor((len-1)/refresh)
    /// slots, and per-user partitions cover the whole stream.
    #[test]
    fn slot_derivation_counts(cfg in arb_config(), refresh_s in 5u64..120) {
        let trace = cfg.generate();
        let refresh = SimDuration::from_secs(refresh_s);
        let slots = trace.ad_slots(refresh);
        let expected: usize = trace
            .sessions()
            .iter()
            .map(|s| {
                let len = s.duration.as_millis();
                1 + ((len.saturating_sub(1)) / refresh.as_millis()) as usize
            })
            .sum();
        prop_assert_eq!(slots.len(), expected);
        let by_user = trace.slots_by_user(refresh);
        let partition_total: usize = by_user.iter().map(|v| v.len()).sum();
        prop_assert_eq!(partition_total, slots.len());
    }

    /// CSV round-trips preserve the exact trace for any generated input.
    #[test]
    fn csv_round_trip(cfg in arb_config()) {
        let trace = cfg.generate();
        let mut buf = Vec::new();
        csv::write_trace(&trace, &mut buf).unwrap();
        let back: Trace = csv::read_trace(&buf[..]).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Window counts conserve the number of in-horizon slots.
    #[test]
    fn window_counts_conserve(cfg in arb_config(), window_h in 1u64..48) {
        let trace = cfg.generate();
        let refresh = SimDuration::from_secs(30);
        let by_user = trace.slots_by_user(refresh);
        let window = SimDuration::from_hours(window_h);
        for series in &by_user {
            let counts = Trace::window_counts(series, window, trace.horizon());
            let total: u32 = counts.iter().sum();
            let in_horizon = series.iter().filter(|&&t| t < trace.horizon()).count();
            prop_assert_eq!(total as usize, in_horizon);
        }
    }
}
