//! Trace summaries for the dataset table and predictability figures.

use adpf_desim::SimDuration;
use adpf_stats::hist::HourProfile;
use adpf_stats::summary::Summary;
use adpf_stats::Ecdf;

use crate::model::{Trace, UserId};

/// Aggregate statistics of one trace (the paper's dataset table).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Population size.
    pub users: u32,
    /// Users with at least one session.
    pub active_users: u32,
    /// Trace length in days.
    pub days: u32,
    /// Total sessions.
    pub sessions: usize,
    /// Total derived ad slots at the configured refresh interval.
    pub slots: usize,
    /// Distribution of per-user sessions per day.
    pub sessions_per_user_day: Summary,
    /// Distribution of per-user ad slots per day.
    pub slots_per_user_day: Summary,
    /// Distribution of session durations, in seconds.
    pub session_secs: Summary,
    /// Hour-of-day profile of slot demand.
    pub slot_hours: HourProfile,
}

impl TraceStats {
    /// Computes statistics with the given ad refresh interval.
    pub fn compute(trace: &Trace, refresh: SimDuration) -> Self {
        let days = trace.days().max(1);
        let n = trace.num_users() as usize;
        let mut sessions_per_user = vec![0u32; n];
        let mut durations = Vec::with_capacity(trace.sessions().len());
        for s in trace.sessions() {
            if (s.user.0 as usize) < n {
                sessions_per_user[s.user.0 as usize] += 1;
            }
            durations.push(s.duration.as_secs_f64());
        }
        let slots = trace.ad_slots(refresh);
        let mut slots_per_user = vec![0u32; n];
        let mut slot_hours = HourProfile::new();
        for slot in &slots {
            if (slot.user.0 as usize) < n {
                slots_per_user[slot.user.0 as usize] += 1;
            }
            slot_hours.add(slot.time.hour_of_day(), 1.0);
        }
        let active_users = sessions_per_user.iter().filter(|&&c| c > 0).count() as u32;
        let per_day = |counts: &[u32]| -> Vec<f64> {
            counts.iter().map(|&c| c as f64 / days as f64).collect()
        };
        Self {
            users: trace.num_users(),
            active_users,
            days,
            sessions: trace.sessions().len(),
            slots: slots.len(),
            sessions_per_user_day: Summary::from_slice(&per_day(&sessions_per_user)),
            slots_per_user_day: Summary::from_slice(&per_day(&slots_per_user)),
            session_secs: Summary::from_slice(&durations),
            slot_hours,
        }
    }
}

/// ECDF of per-user slots per day — the predictability figure's x-axis.
pub fn slots_per_day_ecdf(trace: &Trace, refresh: SimDuration) -> Ecdf {
    let days = trace.days().max(1) as f64;
    let mut per_user = vec![0u32; trace.num_users() as usize];
    for slot in trace.ad_slots(refresh) {
        let i = slot.user.0 as usize;
        if i < per_user.len() {
            per_user[i] += 1;
        }
    }
    Ecdf::new(per_user.iter().map(|&c| c as f64 / days).collect())
}

/// Lag-`k`-days autocorrelation of one user's daily slot counts; measures
/// how much yesterday predicts today (the basis of the paper's client
/// models).
pub fn daily_autocorrelation(trace: &Trace, user: UserId, refresh: SimDuration, lag: usize) -> f64 {
    let days = trace.days() as usize;
    let mut daily = vec![0.0f64; days];
    for slot in trace.ad_slots(refresh) {
        if slot.user == user {
            let d = slot.time.day_index() as usize;
            if d < days {
                daily[d] += 1.0;
            }
        }
    }
    adpf_stats::autocorrelation(&daily, lag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::PopulationConfig;

    #[test]
    fn stats_are_consistent() {
        let trace = PopulationConfig::small_test(23).generate();
        let stats = TraceStats::compute(&trace, SimDuration::from_secs(30));
        assert_eq!(stats.users, 40);
        assert!(stats.active_users <= stats.users);
        assert!(stats.active_users > 30, "most users should be active");
        assert_eq!(stats.sessions, trace.sessions().len());
        assert!(stats.slots >= stats.sessions);
        assert!(stats.slots_per_user_day.mean >= stats.sessions_per_user_day.mean);
        assert!(stats.session_secs.mean > 0.0);
        // The diurnal profile peaks in the evening.
        assert!((18..=22).contains(&stats.slot_hours.peak_hour()));
    }

    #[test]
    fn ecdf_covers_population() {
        let trace = PopulationConfig::small_test(29).generate();
        let e = slots_per_day_ecdf(&trace, SimDuration::from_secs(30));
        assert_eq!(e.len(), 40);
        assert!(e.quantile(0.5) > 0.0);
    }

    #[test]
    fn autocorrelation_is_bounded() {
        let trace = PopulationConfig::small_test(31).generate();
        let ac = daily_autocorrelation(&trace, UserId(0), SimDuration::from_secs(30), 1);
        assert!((-1.0..=1.0).contains(&ac));
    }
}
