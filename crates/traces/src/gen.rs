//! Synthetic population generator.
//!
//! Generates per-user app-session traces with the statistical structure the
//! paper's mechanisms exploit and are stressed by:
//!
//! - **Diurnal rhythm**: sessions concentrate in waking hours with lunch and
//!   evening peaks, so slot demand is time-of-day predictable.
//! - **Weekday/weekend modulation**: weekend activity differs by a
//!   configurable factor.
//! - **User heterogeneity**: per-user session rates are lognormal, so a few
//!   heavy users contribute a large share of slots (heavy tail).
//! - **Burstiness**: daily session counts are Poisson around the user's
//!   modulated rate, and session lengths are lognormal, making short-window
//!   slot counts genuinely hard to predict — which is what forces the
//!   overbooking machinery to earn its keep.
//!
//! Every draw comes from a per-user RNG seeded from the population seed and
//! the user id, so traces are reproducible and stable under population-size
//! changes (user 7's sessions do not change when users 8.. are added).

use std::sync::Mutex;

use adpf_desim::{SimDuration, SimTime, WorkQueue};
use adpf_stats::dist::{Discrete, Distribution, LogNormal, Poisson, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{shard_ranges, AppId, Session, Trace, UserId};

/// Population-wide sampling model, prebuilt once per generation run and
/// shared read-only across worker threads (all fields are plain data).
struct GenModel {
    horizon: SimTime,
    rate_dist: LogNormal,
    duration_dist: LogNormal,
    app_dist: Zipf,
    jitter: Option<LogNormal>,
}

/// Configuration of a synthetic user population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Number of users.
    pub num_users: u32,
    /// Trace length in days.
    pub days: u32,
    /// Number of distinct apps in the marketplace.
    pub num_apps: u16,
    /// Zipf exponent of app popularity.
    pub app_zipf_exponent: f64,
    /// Population-mean app sessions per user per weekday.
    pub mean_sessions_per_day: f64,
    /// Coefficient of variation of per-user session rates (heterogeneity).
    pub user_rate_cv: f64,
    /// Mean session duration in seconds.
    pub mean_session_secs: f64,
    /// Coefficient of variation of session durations.
    pub session_cv: f64,
    /// Relative weight of each hour of day for session starts.
    pub hour_weights: [f64; 24],
    /// Multiplier applied to weekend session rates.
    pub weekend_factor: f64,
    /// Coefficient of variation of per-user perturbation of the hour
    /// profile (0 disables personalization).
    pub user_hour_jitter_cv: f64,
    /// Master seed.
    pub seed: u64,
}

impl PopulationConfig {
    /// A waking-hours profile with lunch and evening peaks.
    pub fn default_hour_weights() -> [f64; 24] {
        [
            0.2, 0.1, 0.05, 0.05, 0.05, 0.1, // 00–05: night.
            0.4, 0.9, 1.3, 1.2, 1.1, 1.4, // 06–11: morning ramp.
            1.8, 1.5, 1.2, 1.2, 1.3, 1.6, // 12–17: lunch peak, afternoon.
            2.0, 2.4, 2.6, 2.2, 1.4, 0.6, // 18–23: evening peak.
        ]
    }

    /// Population shaped like the paper's iPhone dataset: 1,693 users.
    pub fn iphone_like(seed: u64) -> Self {
        Self {
            num_users: 1_693,
            days: 28,
            num_apps: 300,
            app_zipf_exponent: 1.0,
            mean_sessions_per_day: 11.0,
            user_rate_cv: 1.0,
            mean_session_secs: 110.0,
            session_cv: 1.3,
            hour_weights: Self::default_hour_weights(),
            weekend_factor: 1.15,
            user_hour_jitter_cv: 0.4,
            seed,
        }
    }

    /// Population shaped like the paper's Windows Phone in-lab dataset:
    /// a few dozen users logged over several weeks.
    pub fn windows_phone_like(seed: u64) -> Self {
        Self {
            num_users: 60,
            days: 28,
            num_apps: 120,
            app_zipf_exponent: 1.1,
            mean_sessions_per_day: 14.0,
            user_rate_cv: 0.8,
            mean_session_secs: 130.0,
            session_cv: 1.2,
            hour_weights: Self::default_hour_weights(),
            weekend_factor: 1.2,
            user_hour_jitter_cv: 0.35,
            seed,
        }
    }

    /// A small population for unit tests and examples (fast to generate).
    pub fn small_test(seed: u64) -> Self {
        Self {
            num_users: 40,
            days: 7,
            num_apps: 30,
            app_zipf_exponent: 1.0,
            mean_sessions_per_day: 10.0,
            user_rate_cv: 0.8,
            mean_session_secs: 100.0,
            session_cv: 1.0,
            hour_weights: Self::default_hour_weights(),
            weekend_factor: 1.1,
            user_hour_jitter_cv: 0.3,
            seed,
        }
    }

    /// Generates the trace described by this configuration.
    ///
    /// A zero-user population yields an empty trace over the configured
    /// horizon (the identity of sharded merging), so degenerate sweeps
    /// and property tests don't need a special case.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is statistically degenerate (zero
    /// days, zero apps, or non-positive means) — configurations are
    /// constructed by code, not parsed from input, so this is a
    /// programming error.
    pub fn generate(&self) -> Trace {
        self.generate_parallel(1)
    }

    /// [`PopulationConfig::generate`] fanned across `threads` OS threads.
    ///
    /// Every user's session stream is a pure function of
    /// `(seed, user index)` — the per-user RNG never sees another user's
    /// draws — so users can be generated in any order on any thread. The
    /// per-user streams are assembled in user-index order before the
    /// final [`Trace::new`] (whose sort is stable), which makes the
    /// result **byte-identical** to the sequential path at every thread
    /// count. `threads` is a scheduling choice, never a semantic one.
    pub fn generate_parallel(&self, threads: usize) -> Trace {
        assert!(self.days > 0, "trace needs at least one day");
        assert!(self.num_apps > 0, "marketplace needs at least one app");
        let model = self.model();
        let users = self.num_users as usize;
        let threads = threads.clamp(1, users.max(1));

        if threads == 1 {
            let mut sessions = Vec::new();
            for user in 0..self.num_users {
                self.user_sessions(user, &model, &mut sessions);
            }
            return Trace::new(sessions, self.num_users, model.horizon);
        }

        // Workers claim user indices from an atomic queue (cheap users
        // don't serialize behind heavy ones) and park each user's stream
        // in its own slot; slots are then concatenated in user order,
        // reproducing the sequential emission order exactly.
        let queue = WorkQueue::new(users);
        let slots: Vec<Mutex<Vec<Session>>> = (0..users).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    while let Some(u) = queue.claim() {
                        let mut out = Vec::new();
                        self.user_sessions(u as u32, &model, &mut out);
                        *slots[u].lock().expect("generator slot poisoned") = out;
                    }
                });
            }
        });
        let mut sessions = Vec::new();
        for slot in slots {
            sessions.append(&mut slot.into_inner().expect("generator slot poisoned"));
        }
        Trace::new(sessions, self.num_users, model.horizon)
    }

    /// Generates the trace of one shard of an `n_shards`-way balanced
    /// split — the streaming pipeline's unit of work.
    ///
    /// Covers the users of [`shard_ranges`]`(self.num_users, n_shards)[shard]`,
    /// remapped to dense local ids `0..len`, with the *global* horizon.
    /// The result is **byte-identical** to
    /// `self.generate().split_users(n_shards)[shard]` without ever
    /// materializing the full population: sessions are clipped to the
    /// configured horizon, so the global trace horizon equals the model
    /// horizon used here; each user's stream is a pure function of
    /// `(config, user)`; and [`Trace::new`]'s stable sort keys on
    /// `(start, user, app)`, so ties (always within one user) keep the
    /// same emission order both paths produce. Peak memory is
    /// O(users-per-shard), not O(population).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for the clamped shard count.
    pub fn generate_shard(&self, shard: usize, n_shards: usize) -> Trace {
        let ranges = shard_ranges(self.num_users, n_shards);
        self.generate_user_range(ranges[shard].clone())
    }

    /// Generates the sub-trace of users `[users.start, users.end)`,
    /// remapped to dense local ids `0..len`, with the global horizon.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the population or the configuration is
    /// degenerate (see [`PopulationConfig::generate`]).
    pub fn generate_user_range(&self, users: core::ops::Range<u32>) -> Trace {
        assert!(self.days > 0, "trace needs at least one day");
        assert!(self.num_apps > 0, "marketplace needs at least one app");
        assert!(
            users.start <= users.end && users.end <= self.num_users,
            "user range {users:?} exceeds population {}",
            self.num_users
        );
        let model = self.model();
        let mut sessions = Vec::new();
        for user in users.clone() {
            let before = sessions.len();
            self.user_sessions(user, &model, &mut sessions);
            for s in &mut sessions[before..] {
                s.user = UserId(user - users.start);
            }
        }
        Trace::new(sessions, users.end - users.start, model.horizon)
    }

    /// Builds the population-wide sampling model shared (read-only) by
    /// every user's generator.
    fn model(&self) -> GenModel {
        GenModel {
            horizon: SimTime::from_days(self.days as u64),
            rate_dist: LogNormal::from_mean_cv(self.mean_sessions_per_day, self.user_rate_cv)
                .expect("valid session-rate parameters"),
            duration_dist: LogNormal::from_mean_cv(self.mean_session_secs, self.session_cv)
                .expect("valid session-duration parameters"),
            app_dist: Zipf::new(self.num_apps as usize, self.app_zipf_exponent)
                .expect("valid app Zipf"),
            jitter: if self.user_hour_jitter_cv > 0.0 {
                Some(LogNormal::from_mean_cv(1.0, self.user_hour_jitter_cv).expect("valid jitter"))
            } else {
                None
            },
        }
    }

    /// Generates one user's sessions into `out`, in emission order.
    ///
    /// All randomness comes from the user's own RNG stream, so the output
    /// depends only on `(config, user)` — the invariant parallel
    /// generation rests on.
    fn user_sessions(&self, user: u32, model: &GenModel, out: &mut Vec<Session>) {
        let mut rng = self.user_rng(user);
        let rate = model.rate_dist.sample(&mut rng).clamp(0.2, 250.0);

        // Personalized diurnal profile.
        let mut weights = self.hour_weights;
        if let Some(j) = &model.jitter {
            for w in &mut weights {
                *w *= j.sample(&mut rng);
            }
        }
        let hour_dist = Discrete::new(&weights).expect("hour weights are valid");

        for day in 0..self.days as u64 {
            let day_start = SimTime::from_days(day);
            let factor = if day_start.is_weekend() {
                self.weekend_factor
            } else {
                1.0
            };
            let n = Poisson::clamped(rate * factor).sample(&mut rng);
            for _ in 0..n {
                let hour = hour_dist.sample(&mut rng) as u64;
                let offset_ms = rng.gen_range(0..adpf_desim::time::MILLIS_PER_HOUR);
                let start =
                    day_start + SimDuration::from_hours(hour) + SimDuration::from_millis(offset_ms);
                let dur_secs = model
                    .duration_dist
                    .sample(&mut rng)
                    .clamp(5.0, 4.0 * 3600.0);
                let mut duration = SimDuration::from_secs_f64(dur_secs);
                // Clip to the horizon so the trace stays bounded.
                if start + duration > model.horizon {
                    duration = model.horizon.saturating_since(start);
                }
                if duration.is_zero() {
                    continue;
                }
                let app = AppId((model.app_dist.sample(&mut rng) - 1) as u16);
                out.push(Session {
                    user: UserId(user),
                    app,
                    start,
                    duration,
                });
            }
        }
    }

    /// Per-user RNG derived from the master seed; stable across population
    /// size changes.
    fn user_rng(&self, user: u32) -> StdRng {
        // SplitMix64-style mixing of (seed, user) into a 64-bit stream id.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(user as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = PopulationConfig::small_test(7).generate();
        let b = PopulationConfig::small_test(7).generate();
        assert_eq!(a, b);
        let c = PopulationConfig::small_test(8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn adding_users_preserves_existing_streams() {
        let mut small = PopulationConfig::small_test(3);
        small.num_users = 10;
        let mut big = small.clone();
        big.num_users = 20;
        let ts = small.generate();
        let tb = big.generate();
        for u in 0..10 {
            let a: Vec<_> = ts.sessions_for(UserId(u)).collect();
            let b: Vec<_> = tb.sessions_for(UserId(u)).collect();
            assert_eq!(a, b, "user {u} changed when the population grew");
        }
    }

    #[test]
    fn sessions_respect_horizon() {
        let t = PopulationConfig::small_test(11).generate();
        for s in t.sessions() {
            assert!(s.end() <= t.horizon());
            assert!(!s.duration.is_zero());
        }
    }

    #[test]
    fn mean_rate_is_calibrated() {
        let cfg = PopulationConfig {
            num_users: 300,
            days: 14,
            ..PopulationConfig::small_test(5)
        };
        let t = cfg.generate();
        let per_day = t.sessions().len() as f64 / (300.0 * 14.0);
        // Weekends push the mean slightly above the weekday rate.
        assert!(
            (per_day - cfg.mean_sessions_per_day).abs() < cfg.mean_sessions_per_day * 0.25,
            "sessions/user/day = {per_day}"
        );
    }

    #[test]
    fn diurnal_profile_shows_up() {
        let t = PopulationConfig::small_test(9).generate();
        let mut night = 0u32;
        let mut evening = 0u32;
        for s in t.sessions() {
            match s.start.hour_of_day() {
                1..=4 => night += 1,
                19..=21 => evening += 1,
                _ => {}
            }
        }
        assert!(
            evening > 5 * night,
            "evening {evening} should dwarf night {night}"
        );
    }

    #[test]
    fn app_popularity_is_skewed() {
        let t = PopulationConfig::small_test(13).generate();
        let mut counts = [0u32; 30];
        for s in t.sessions() {
            counts[s.app.0 as usize] += 1;
        }
        let top: u32 = counts[..3].iter().sum();
        let bottom: u32 = counts[27..].iter().sum();
        assert!(top > 5 * bottom.max(1), "top {top} bottom {bottom}");
    }

    #[test]
    fn user_heterogeneity_is_heavy_tailed() {
        let cfg = PopulationConfig {
            num_users: 200,
            ..PopulationConfig::small_test(21)
        };
        let t = cfg.generate();
        let mut per_user = vec![0u32; 200];
        for s in t.sessions() {
            per_user[s.user.0 as usize] += 1;
        }
        per_user.sort_unstable();
        let median = per_user[100] as f64;
        let p95 = per_user[190] as f64;
        assert!(p95 > 2.0 * median, "p95 {p95} median {median}");
    }

    #[test]
    fn zero_users_yield_an_empty_trace() {
        let mut cfg = PopulationConfig::small_test(1);
        cfg.num_users = 0;
        let t = cfg.generate();
        assert_eq!(t.num_users(), 0);
        assert!(t.sessions().is_empty());
        assert_eq!(t.horizon(), SimTime::from_days(7));
    }

    /// A population with the iPhone dataset's statistical shape but sized
    /// for a unit test (the real preset is 1,693 users over 28 days).
    fn iphone_shaped() -> PopulationConfig {
        PopulationConfig {
            num_users: 120,
            days: 7,
            ..PopulationConfig::iphone_like(2013)
        }
    }

    #[test]
    fn parallel_generation_matches_serial_iphone_shape() {
        let cfg = iphone_shaped();
        let serial = cfg.generate();
        for threads in [2, 3, 8] {
            assert_eq!(
                serial,
                cfg.generate_parallel(threads),
                "{threads}-thread generation diverged from serial"
            );
        }
    }

    #[test]
    fn parallel_generation_matches_serial_windows_phone_shape() {
        let mut cfg = PopulationConfig::windows_phone_like(7);
        cfg.days = 7;
        let serial = cfg.generate();
        assert_eq!(serial, cfg.generate_parallel(4));
    }

    #[test]
    fn parallel_generation_matches_serial_for_empty_population() {
        let mut cfg = PopulationConfig::small_test(1);
        cfg.num_users = 0;
        assert_eq!(cfg.generate(), cfg.generate_parallel(4));
    }

    #[test]
    fn oversubscribed_thread_counts_are_clamped_to_the_population() {
        let mut cfg = PopulationConfig::small_test(5);
        cfg.num_users = 3;
        assert_eq!(cfg.generate(), cfg.generate_parallel(64));
    }

    #[test]
    fn shard_generation_matches_materialize_then_split() {
        // The streaming pipeline's core identity: generating shard i
        // directly is byte-identical to materializing the population and
        // splitting it. Covers uneven splits (7 % 3 != 0) and the
        // n > users clamp.
        let cfg = iphone_shaped();
        let whole = cfg.generate();
        for n in [1usize, 3, 7, 200] {
            let split = whole.split_users(n);
            assert_eq!(split.len(), shard_ranges(cfg.num_users, n).len());
            for (i, expected) in split.iter().enumerate() {
                assert_eq!(
                    &cfg.generate_shard(i, n),
                    expected,
                    "shard {i} of {n} diverged from materialize-then-split"
                );
            }
        }
    }

    #[test]
    fn shard_generation_covers_degenerate_populations() {
        let mut cfg = PopulationConfig::small_test(5);
        cfg.num_users = 0;
        assert_eq!(cfg.generate_shard(0, 4), cfg.generate().split_users(4)[0]);
        cfg.num_users = 1;
        assert_eq!(cfg.generate_shard(0, 8), cfg.generate().split_users(8)[0]);
    }

    #[test]
    fn user_range_generation_is_offset_invariant() {
        // A range's sessions depend only on which users it covers, not on
        // where it sits — the guarantee that lets shards generate lazily.
        let cfg = PopulationConfig::small_test(17);
        let full = cfg.generate_user_range(0..cfg.num_users);
        assert_eq!(full, cfg.generate());
        let tail = cfg.generate_user_range(30..40);
        for s in tail.sessions() {
            let original: Vec<_> = full
                .sessions_for(UserId(s.user.0 + 30))
                .map(|o| (o.app, o.start, o.duration))
                .collect();
            assert!(original.contains(&(s.app, s.start, s.duration)));
        }
        assert_eq!(
            tail.sessions().len(),
            (30..40)
                .map(|u| full.sessions_for(UserId(u)).count())
                .sum::<usize>()
        );
    }
}
