//! App-usage traces: data model, synthetic generation, I/O, statistics.
//!
//! The paper evaluates on proprietary traces of 1,700+ iPhone and Windows
//! Phone users (app foreground sessions over several weeks). Those traces
//! are not available, so this crate provides:
//!
//! - [`model`]: the trace data model — users, apps, foreground
//!   [`Session`]s, and the derived [`AdSlot`] stream (one slot at session
//!   start plus one per refresh interval while the app stays foreground).
//! - [`gen`]: a seeded synthetic population generator reproducing the
//!   statistical structure the paper's mechanisms rely on: diurnal rhythm,
//!   weekday/weekend modulation, heavy-tailed per-user activity, Zipf app
//!   popularity, and lognormal session lengths. Presets
//!   [`gen::PopulationConfig::iphone_like`] and
//!   [`gen::PopulationConfig::windows_phone_like`] match the populations in
//!   the paper's dataset table.
//! - [`csv`]: a plain-text trace format so real traces can be dropped in.
//! - [`stats`]: per-trace summaries used by the dataset table and the
//!   predictability figures.
//!
//! # Examples
//!
//! ```
//! use adpf_desim::SimDuration;
//! use adpf_traces::gen::PopulationConfig;
//!
//! let trace = PopulationConfig::small_test(42).generate();
//! assert!(trace.sessions().len() > 0);
//! let slots = trace.ad_slots(SimDuration::from_secs(30));
//! assert!(slots.len() >= trace.sessions().len());
//! ```

pub mod csv;
pub mod gen;
pub mod model;
pub mod stats;
pub mod transform;

pub use gen::PopulationConfig;
pub use model::{shard_ranges, AdSlot, AppId, Session, Trace, UserId, UserSlots};
pub use stats::TraceStats;
