//! Plain-text trace serialization.
//!
//! Format: a header line `user,app,start_ms,duration_ms` followed by one
//! session per line. The format is deliberately trivial so that real usage
//! traces (the paper's proprietary datasets, or any modern equivalent) can
//! be converted and dropped into the simulator without code changes.

use std::io::{BufRead, BufReader, Read, Write};

use adpf_desim::{SimDuration, SimTime};

use crate::model::{AppId, Session, Trace, UserId};

/// Header line of the trace format.
pub const HEADER: &str = "user,app,start_ms,duration_ms";

/// Errors produced while reading a trace.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content at a specific (1-based) line.
    Parse {
        /// Line number of the offending record.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "trace I/O error: {e}"),
            CsvError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a trace to `w` in the CSV format.
///
/// A `#meta` comment line carries the population size and horizon, which
/// cannot be reconstructed from the sessions alone (trailing silent users
/// and trailing idle time would be lost).
pub fn write_trace<W: Write>(trace: &Trace, w: &mut W) -> Result<(), CsvError> {
    writeln!(w, "{HEADER}")?;
    writeln!(
        w,
        "#meta,users={},horizon_ms={}",
        trace.num_users(),
        trace.horizon().as_millis()
    )?;
    for s in trace.sessions() {
        writeln!(
            w,
            "{},{},{},{}",
            s.user.0,
            s.app.0,
            s.start.as_millis(),
            s.duration.as_millis()
        )?;
    }
    Ok(())
}

/// What one pass over a trace file learns besides the sessions
/// themselves: the `#meta` declarations and the inferred bounds.
struct ScanMeta {
    meta_users: Option<u32>,
    meta_horizon: Option<u64>,
    max_user: u32,
    saw_session: bool,
}

impl ScanMeta {
    /// Population size: declared, widened to cover every seen user id.
    fn num_users(&self) -> u32 {
        let inferred = if self.saw_session {
            self.max_user + 1
        } else {
            0
        };
        self.meta_users.unwrap_or(inferred).max(inferred)
    }
}

/// One streaming pass over the CSV format, handing each parsed session
/// to `on_session` instead of materializing a vector. The shared core
/// of [`read_trace`] (collect everything), [`trace_dims`] (collect
/// nothing), and [`read_trace_shard`] (collect one user range).
fn scan<R: Read>(r: R, mut on_session: impl FnMut(Session)) -> Result<ScanMeta, CsvError> {
    let reader = BufReader::new(r);
    let mut meta = ScanMeta {
        meta_users: None,
        meta_horizon: None,
        max_user: 0,
        saw_session: false,
    };
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("#meta,") {
            for field in rest.split(',') {
                if let Some(v) = field.strip_prefix("users=") {
                    meta.meta_users = Some(parse_field(v, "users", line_no)?);
                } else if let Some(v) = field.strip_prefix("horizon_ms=") {
                    meta.meta_horizon = Some(parse_field(v, "horizon_ms", line_no)?);
                }
            }
            continue;
        }
        if trimmed.starts_with('#') {
            continue; // Other comments are ignored.
        }
        if idx == 0 {
            if trimmed != HEADER {
                return Err(CsvError::Parse {
                    line: line_no,
                    reason: format!("expected header `{HEADER}`, got `{trimmed}`"),
                });
            }
            continue;
        }
        let mut fields = trimmed.split(',');
        let mut next_field = |name: &str| {
            fields.next().ok_or_else(|| CsvError::Parse {
                line: line_no,
                reason: format!("missing field `{name}`"),
            })
        };
        let user: u32 = parse_field(next_field("user")?, "user", line_no)?;
        let app: u16 = parse_field(next_field("app")?, "app", line_no)?;
        let start: u64 = parse_field(next_field("start_ms")?, "start_ms", line_no)?;
        let duration: u64 = parse_field(next_field("duration_ms")?, "duration_ms", line_no)?;
        if fields.next().is_some() {
            return Err(CsvError::Parse {
                line: line_no,
                reason: "too many fields".to_string(),
            });
        }
        meta.max_user = meta.max_user.max(user);
        meta.saw_session = true;
        on_session(Session {
            user: UserId(user),
            app: AppId(app),
            start: SimTime::from_millis(start),
            duration: SimDuration::from_millis(duration),
        });
    }
    Ok(meta)
}

/// Reads a trace from `r`.
///
/// When the `#meta` line is absent (hand-authored files), the population
/// size is inferred as `max(user id) + 1` and the horizon as the last
/// session end; both can be widened by rebuilding with [`Trace::new`].
pub fn read_trace<R: Read>(r: R) -> Result<Trace, CsvError> {
    let mut sessions = Vec::new();
    let meta = scan(r, |s| sessions.push(s))?;
    let horizon = SimTime::from_millis(meta.meta_horizon.unwrap_or(0));
    Ok(Trace::new(sessions, meta.num_users(), horizon))
}

/// Scans a trace file for its population size and horizon (in
/// milliseconds) without materializing any session.
///
/// This is the recorded-trace counterpart of knowing a
/// `PopulationConfig`'s `num_users`/`days` up front: it is all the
/// streaming pipeline needs to derive shard ranges before any shard's
/// sessions exist in memory. The horizon matches what
/// [`read_trace`]`(r)?.horizon()` would report — the declared `#meta`
/// horizon widened to cover the last session end.
pub fn trace_dims<R: Read>(r: R) -> Result<(u32, u64), CsvError> {
    let mut last_end_ms = 0u64;
    let meta = scan(r, |s| last_end_ms = last_end_ms.max(s.end().as_millis()))?;
    let horizon_ms = meta.meta_horizon.unwrap_or(0).max(last_end_ms);
    Ok((meta.num_users(), horizon_ms))
}

/// Reads only the users of `range` from a trace file, renumbered to
/// shard-local ids (`user - range.start`) — byte-identical to
/// [`read_trace`]`(r)?.split_users(n)[i]` when `range` is shard `i` of
/// a [`crate::shard_ranges`] split and `horizon_ms` comes from
/// [`trace_dims`].
///
/// Peak memory is O(sessions-in-range), which is what lets the
/// streaming pipeline replay recorded traces far larger than RAM: each
/// worker re-reads the file but keeps only its own shard's sessions.
pub fn read_trace_shard<R: Read>(
    r: R,
    range: core::ops::Range<u32>,
    horizon_ms: u64,
) -> Result<Trace, CsvError> {
    let mut sessions = Vec::new();
    scan(r, |s| {
        if range.contains(&s.user.0) {
            sessions.push(Session {
                user: UserId(s.user.0 - range.start),
                ..s
            });
        }
    })?;
    Ok(Trace::new(
        sessions,
        range.end - range.start,
        SimTime::from_millis(horizon_ms),
    ))
}

fn parse_field<T: std::str::FromStr>(s: &str, name: &str, line: usize) -> Result<T, CsvError> {
    s.trim().parse().map_err(|_| CsvError::Parse {
        line,
        reason: format!("invalid `{name}` value `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::PopulationConfig;

    #[test]
    fn round_trip_preserves_trace() {
        let trace = PopulationConfig::small_test(17).generate();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back, "metadata line preserves users and horizon");
    }

    #[test]
    fn shard_round_trip_preserves_each_shard() {
        // A shard is a first-class trace: it serializes and re-parses
        // identically, including its (possibly session-free) population
        // size and the global horizon carried by the #meta line.
        let trace = PopulationConfig::small_test(23).generate();
        for shard in trace.split_users(4) {
            let mut buf = Vec::new();
            write_trace(&shard, &mut buf).unwrap();
            let back = read_trace(&buf[..]).unwrap();
            assert_eq!(shard, back);
        }
    }

    #[test]
    fn files_without_meta_are_inferred() {
        let data = format!("{HEADER}\n3,1,1000,2000\n");
        let t = read_trace(data.as_bytes()).unwrap();
        assert_eq!(t.num_users(), 4);
        assert_eq!(t.horizon().as_millis(), 3000);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace("nope\n1,2,3,4\n".as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_missing_fields() {
        let data = format!("{HEADER}\n1,2,3\n");
        let err = read_trace(data.as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("duration_ms"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_extra_fields_and_garbage() {
        let data = format!("{HEADER}\n1,2,3,4,5\n");
        assert!(read_trace(data.as_bytes()).is_err());
        let data = format!("{HEADER}\nx,2,3,4\n");
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = format!("{HEADER}\n\n0,1,1000,2000\n\n");
        let t = read_trace(data.as_bytes()).unwrap();
        assert_eq!(t.sessions().len(), 1);
        assert_eq!(t.num_users(), 1);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let t = read_trace("".as_bytes()).unwrap();
        assert_eq!(t.sessions().len(), 0);
        assert_eq!(t.num_users(), 0);
    }

    #[test]
    fn trace_dims_matches_full_read() {
        let trace = PopulationConfig::small_test(31).generate();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let (users, horizon_ms) = trace_dims(&buf[..]).unwrap();
        assert_eq!(users, trace.num_users());
        assert_eq!(horizon_ms, trace.horizon().as_millis());
        // Meta-free files infer both bounds, like read_trace does.
        let data = format!("{HEADER}\n3,1,1000,2000\n");
        let (users, horizon_ms) = trace_dims(data.as_bytes()).unwrap();
        assert_eq!(users, 4);
        assert_eq!(horizon_ms, 3000);
    }

    #[test]
    fn shard_reads_match_split_users() {
        // The streaming-input contract: per-shard file reads must be
        // byte-identical to materializing the whole trace and splitting
        // it, for every shard of the same shard_ranges cut.
        let trace = PopulationConfig::small_test(29).generate();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let (users, horizon_ms) = trace_dims(&buf[..]).unwrap();
        for n in [1, 3, 7] {
            let split = trace.split_users(n);
            let ranges = crate::shard_ranges(users, n);
            assert_eq!(split.len(), ranges.len());
            for (shard, range) in split.iter().zip(ranges) {
                let streamed = read_trace_shard(&buf[..], range, horizon_ms).unwrap();
                assert_eq!(*shard, streamed);
            }
        }
    }

    #[test]
    fn shard_read_of_empty_range_is_an_empty_population() {
        let data = format!("{HEADER}\n#meta,users=10,horizon_ms=5000\n3,1,1000,2000\n");
        let t = read_trace_shard(data.as_bytes(), 5..8, 5000).unwrap();
        assert_eq!(t.num_users(), 3);
        assert_eq!(t.sessions().len(), 0);
        assert_eq!(t.horizon().as_millis(), 5000);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse {
            line: 3,
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
