//! Plain-text trace serialization.
//!
//! Format: a header line `user,app,start_ms,duration_ms` followed by one
//! session per line. The format is deliberately trivial so that real usage
//! traces (the paper's proprietary datasets, or any modern equivalent) can
//! be converted and dropped into the simulator without code changes.

use std::io::{BufRead, BufReader, Read, Write};

use adpf_desim::{SimDuration, SimTime};

use crate::model::{AppId, Session, Trace, UserId};

/// Header line of the trace format.
pub const HEADER: &str = "user,app,start_ms,duration_ms";

/// Errors produced while reading a trace.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content at a specific (1-based) line.
    Parse {
        /// Line number of the offending record.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "trace I/O error: {e}"),
            CsvError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a trace to `w` in the CSV format.
///
/// A `#meta` comment line carries the population size and horizon, which
/// cannot be reconstructed from the sessions alone (trailing silent users
/// and trailing idle time would be lost).
pub fn write_trace<W: Write>(trace: &Trace, w: &mut W) -> Result<(), CsvError> {
    writeln!(w, "{HEADER}")?;
    writeln!(
        w,
        "#meta,users={},horizon_ms={}",
        trace.num_users(),
        trace.horizon().as_millis()
    )?;
    for s in trace.sessions() {
        writeln!(
            w,
            "{},{},{},{}",
            s.user.0,
            s.app.0,
            s.start.as_millis(),
            s.duration.as_millis()
        )?;
    }
    Ok(())
}

/// Reads a trace from `r`.
///
/// When the `#meta` line is absent (hand-authored files), the population
/// size is inferred as `max(user id) + 1` and the horizon as the last
/// session end; both can be widened by rebuilding with [`Trace::new`].
pub fn read_trace<R: Read>(r: R) -> Result<Trace, CsvError> {
    let reader = BufReader::new(r);
    let mut sessions = Vec::new();
    let mut max_user = 0u32;
    let mut meta_users: Option<u32> = None;
    let mut meta_horizon: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("#meta,") {
            for field in rest.split(',') {
                if let Some(v) = field.strip_prefix("users=") {
                    meta_users = Some(parse_field(v, "users", line_no)?);
                } else if let Some(v) = field.strip_prefix("horizon_ms=") {
                    meta_horizon = Some(parse_field(v, "horizon_ms", line_no)?);
                }
            }
            continue;
        }
        if trimmed.starts_with('#') {
            continue; // Other comments are ignored.
        }
        if idx == 0 {
            if trimmed != HEADER {
                return Err(CsvError::Parse {
                    line: line_no,
                    reason: format!("expected header `{HEADER}`, got `{trimmed}`"),
                });
            }
            continue;
        }
        let mut fields = trimmed.split(',');
        let mut next_field = |name: &str| {
            fields.next().ok_or_else(|| CsvError::Parse {
                line: line_no,
                reason: format!("missing field `{name}`"),
            })
        };
        let user: u32 = parse_field(next_field("user")?, "user", line_no)?;
        let app: u16 = parse_field(next_field("app")?, "app", line_no)?;
        let start: u64 = parse_field(next_field("start_ms")?, "start_ms", line_no)?;
        let duration: u64 = parse_field(next_field("duration_ms")?, "duration_ms", line_no)?;
        if fields.next().is_some() {
            return Err(CsvError::Parse {
                line: line_no,
                reason: "too many fields".to_string(),
            });
        }
        max_user = max_user.max(user);
        sessions.push(Session {
            user: UserId(user),
            app: AppId(app),
            start: SimTime::from_millis(start),
            duration: SimDuration::from_millis(duration),
        });
    }
    let inferred_users = if sessions.is_empty() { 0 } else { max_user + 1 };
    let num_users = meta_users.unwrap_or(inferred_users).max(inferred_users);
    let horizon = SimTime::from_millis(meta_horizon.unwrap_or(0));
    Ok(Trace::new(sessions, num_users, horizon))
}

fn parse_field<T: std::str::FromStr>(s: &str, name: &str, line: usize) -> Result<T, CsvError> {
    s.trim().parse().map_err(|_| CsvError::Parse {
        line,
        reason: format!("invalid `{name}` value `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::PopulationConfig;

    #[test]
    fn round_trip_preserves_trace() {
        let trace = PopulationConfig::small_test(17).generate();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back, "metadata line preserves users and horizon");
    }

    #[test]
    fn shard_round_trip_preserves_each_shard() {
        // A shard is a first-class trace: it serializes and re-parses
        // identically, including its (possibly session-free) population
        // size and the global horizon carried by the #meta line.
        let trace = PopulationConfig::small_test(23).generate();
        for shard in trace.split_users(4) {
            let mut buf = Vec::new();
            write_trace(&shard, &mut buf).unwrap();
            let back = read_trace(&buf[..]).unwrap();
            assert_eq!(shard, back);
        }
    }

    #[test]
    fn files_without_meta_are_inferred() {
        let data = format!("{HEADER}\n3,1,1000,2000\n");
        let t = read_trace(data.as_bytes()).unwrap();
        assert_eq!(t.num_users(), 4);
        assert_eq!(t.horizon().as_millis(), 3000);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace("nope\n1,2,3,4\n".as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_missing_fields() {
        let data = format!("{HEADER}\n1,2,3\n");
        let err = read_trace(data.as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("duration_ms"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_extra_fields_and_garbage() {
        let data = format!("{HEADER}\n1,2,3,4,5\n");
        assert!(read_trace(data.as_bytes()).is_err());
        let data = format!("{HEADER}\nx,2,3,4\n");
        assert!(read_trace(data.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let data = format!("{HEADER}\n\n0,1,1000,2000\n\n");
        let t = read_trace(data.as_bytes()).unwrap();
        assert_eq!(t.sessions().len(), 1);
        assert_eq!(t.num_users(), 1);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let t = read_trace("".as_bytes()).unwrap();
        assert_eq!(t.sessions().len(), 0);
        assert_eq!(t.num_users(), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Parse {
            line: 3,
            reason: "bad".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
