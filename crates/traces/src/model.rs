//! Trace data model.

use core::fmt;

use adpf_desim::{SimDuration, SimTime};

/// Identifier of one device/user in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// Identifier of one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u16);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// One foreground app session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// Who used the app.
    pub user: UserId,
    /// Which app was in the foreground.
    pub app: AppId,
    /// Foreground start time.
    pub start: SimTime,
    /// Foreground duration.
    pub duration: SimDuration,
}

impl Session {
    /// End of the session.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// One displayable ad slot: the app showed (or could show) an ad at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdSlot {
    /// The user whose screen shows the ad.
    pub user: UserId,
    /// The app hosting the ad.
    pub app: AppId,
    /// When the slot occurs.
    pub time: SimTime,
}

/// The balanced contiguous user-id ranges of an `n_shards`-way population
/// split.
///
/// This is the single source of truth for shard boundaries: both
/// [`Trace::split_users`] (materialized splitting) and the streaming
/// generator (`PopulationConfig::generate_shard`) use it, which is what
/// makes the two pipelines cover byte-identical user ranges. Shard sizes
/// differ by at most one user, with the earlier shards taking the
/// remainder. `n_shards` is clamped to `[1, num_users]`; an empty
/// population yields a single empty range.
pub fn shard_ranges(num_users: u32, n_shards: usize) -> Vec<core::ops::Range<u32>> {
    let users = num_users as usize;
    // An empty population falls through to one 0..0 range: n clamps to
    // 1, base and extra are both 0.
    let n = n_shards.clamp(1, users.max(1));
    let base = (users / n) as u32;
    let extra = users % n;
    let mut ranges = Vec::with_capacity(n);
    let mut off = 0u32;
    for i in 0..n {
        let len = base + u32::from(i < extra);
        ranges.push(off..off + len);
        off += len;
    }
    ranges
}

/// Per-user slot times in a compact CSR (offsets + one flat array)
/// layout.
///
/// Replaces the `Vec<Vec<SimTime>>` per-user layout on the simulator hot
/// path: one allocation for the whole population instead of one per
/// user, and each user's slot times are a contiguous `&[SimTime]` slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserSlots {
    /// `offsets[u]..offsets[u + 1]` indexes `times` for user `u`.
    offsets: Vec<u32>,
    /// All slot times, grouped by user, time-ordered within each user.
    times: Vec<SimTime>,
}

impl UserSlots {
    /// Builds the CSR view from a time-ordered slot stream (as produced
    /// by [`Trace::ad_slots`]). Slots with out-of-range user ids are
    /// dropped, matching [`Trace::slots_by_user_from`].
    pub fn from_slots(slots: &[AdSlot], num_users: u32) -> Self {
        let n = num_users as usize;
        let mut counts = vec![0u32; n + 1];
        for slot in slots {
            let idx = slot.user.0 as usize;
            if idx < n {
                counts[idx + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut times = vec![SimTime::ZERO; counts[n] as usize];
        let mut cursor: Vec<u32> = counts[..n].to_vec();
        for slot in slots {
            let idx = slot.user.0 as usize;
            if idx < n {
                times[cursor[idx] as usize] = slot.time;
                cursor[idx] += 1;
            }
        }
        Self {
            offsets: counts,
            times,
        }
    }

    /// Number of users the view covers.
    pub fn num_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Time-ordered slot times of user `u`.
    pub fn user(&self, u: usize) -> &[SimTime] {
        &self.times[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Total slot count across all users.
    pub fn total_slots(&self) -> usize {
        self.times.len()
    }
}

/// A complete usage trace: sessions of a user population over a horizon.
///
/// Sessions are kept sorted by start time (ties by user, then app), which
/// every consumer — the event-driven simulator, the predictors, the
/// statistics — relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    sessions: Vec<Session>,
    num_users: u32,
    horizon: SimTime,
}

impl Trace {
    /// Builds a trace from raw sessions.
    ///
    /// Sessions are sorted; `num_users` is the population size (user ids
    /// must be `< num_users`); the horizon is extended to cover the last
    /// session end if needed.
    pub fn new(mut sessions: Vec<Session>, num_users: u32, horizon: SimTime) -> Self {
        sessions.sort_by(|a, b| {
            a.start
                .cmp(&b.start)
                .then(a.user.cmp(&b.user))
                .then(a.app.cmp(&b.app))
        });
        let last_end = sessions
            .iter()
            .map(|s| s.end())
            .max()
            .unwrap_or(SimTime::ZERO);
        Self {
            sessions,
            num_users,
            horizon: horizon.max(last_end),
        }
    }

    /// All sessions, sorted by start time.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Number of users in the population (including users with no
    /// sessions).
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Trace end time.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of whole days covered (rounded up).
    pub fn days(&self) -> u32 {
        let ms = self.horizon.as_millis();
        ms.div_ceil(adpf_desim::time::MILLIS_PER_DAY) as u32
    }

    /// Sessions of one user, in time order.
    pub fn sessions_for(&self, user: UserId) -> impl Iterator<Item = &Session> {
        self.sessions.iter().filter(move |s| s.user == user)
    }

    /// Derives the ad-slot stream: one slot at each session start plus one
    /// every `refresh` while the session lasts. Slots are time-ordered.
    pub fn ad_slots(&self, refresh: SimDuration) -> Vec<AdSlot> {
        let mut slots = Vec::new();
        for s in &self.sessions {
            slots.push(AdSlot {
                user: s.user,
                app: s.app,
                time: s.start,
            });
            if !refresh.is_zero() {
                let mut t = s.start + refresh;
                while t < s.end() {
                    slots.push(AdSlot {
                        user: s.user,
                        app: s.app,
                        time: t,
                    });
                    t += refresh;
                }
            }
        }
        slots.sort_by(|a, b| a.time.cmp(&b.time).then(a.user.cmp(&b.user)));
        slots
    }

    /// Per-user time-ordered slot times, indexed by user id.
    ///
    /// Convenient layout for the predictors, which consume one user's slot
    /// stream at a time.
    pub fn slots_by_user(&self, refresh: SimDuration) -> Vec<Vec<SimTime>> {
        Self::slots_by_user_from(&self.ad_slots(refresh), self.num_users)
    }

    /// [`Trace::slots_by_user`] over an already-derived slot stream, for
    /// callers that need both views — deriving the stream once and
    /// splitting it costs half of deriving it twice.
    ///
    /// The simulator itself consumes the compact [`UserSlots`] CSR view;
    /// this per-user `Vec` layout remains for the predictors and offline
    /// evaluations, built on the same single-pass grouping.
    pub fn slots_by_user_from(slots: &[AdSlot], num_users: u32) -> Vec<Vec<SimTime>> {
        let csr = UserSlots::from_slots(slots, num_users);
        (0..csr.num_users()).map(|u| csr.user(u).to_vec()).collect()
    }

    /// Per-user slot times as a compact CSR view — see [`UserSlots`].
    pub fn user_slots(&self, refresh: SimDuration) -> UserSlots {
        UserSlots::from_slots(&self.ad_slots(refresh), self.num_users)
    }

    /// Partitions the population into `n_shards` contiguous user-id
    /// ranges for sharded simulation.
    ///
    /// Shard `i` covers original users `[offset_i, offset_i + len_i)`
    /// (the ranges come from [`shard_ranges`], shared with the streaming
    /// generator), remapped to the dense range `0..len_i`, so each shard
    /// is itself a well-formed [`Trace`]. Shard sizes are balanced: they
    /// differ by at most one user, with the earlier shards taking the
    /// remainder. Every shard keeps the *global* horizon, so time-driven
    /// schedules (sync periods, expiry sweeps) run identically whether a
    /// user is simulated in the whole trace or in their shard.
    ///
    /// `n_shards` is clamped to `[1, num_users]` (an empty trace yields a
    /// single empty shard): a shard is never left without users.
    /// Concatenating the shards' users in shard order reconstructs the
    /// original user indexing, which is what report merging relies on to
    /// reassemble per-user series.
    pub fn split_users(&self, n_shards: usize) -> Vec<Trace> {
        let users = self.num_users as usize;
        if users == 0 {
            return vec![Trace::new(Vec::new(), 0, self.horizon)];
        }
        let ranges = shard_ranges(self.num_users, n_shards);
        let n = ranges.len();
        // The first `extra` shards hold `base + 1` users, the rest `base`;
        // a user's shard is therefore computable in O(1), so sessions are
        // routed in one pass over the trace instead of one filtering scan
        // per shard (which at production shard counts dominated setup).
        let base = users / n;
        let extra = users % n;
        let wide = (extra * (base + 1)) as u32; // First user id in a base-sized shard.
        let mut per_shard: Vec<Vec<Session>> = (0..n)
            .map(|i| Vec::with_capacity(self.sessions.len() / n + usize::from(i < extra)))
            .collect();
        for s in &self.sessions {
            let u = s.user.0;
            if u as usize >= users {
                continue; // Out-of-contract id; the old per-shard filter dropped it too.
            }
            let shard = if u < wide {
                (u as usize) / (base + 1)
            } else {
                extra + ((u - wide) as usize) / base
            };
            per_shard[shard].push(Session {
                user: UserId(u - ranges[shard].start),
                ..*s
            });
        }
        per_shard
            .into_iter()
            .zip(&ranges)
            .map(|(sessions, range)| Trace::new(sessions, range.end - range.start, self.horizon))
            .collect()
    }

    /// Counts slots per fixed window of length `window` for one user's
    /// slot-time series, covering `[0, horizon)`.
    pub fn window_counts(
        slot_times: &[SimTime],
        window: SimDuration,
        horizon: SimTime,
    ) -> Vec<u32> {
        assert!(!window.is_zero(), "window must be positive");
        let n = horizon.as_millis().div_ceil(window.as_millis()) as usize;
        let mut counts = vec![0u32; n];
        for &t in slot_times {
            let idx = (t.as_millis() / window.as_millis()) as usize;
            if idx < n {
                counts[idx] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(user: u32, app: u16, start_s: u64, dur_s: u64) -> Session {
        Session {
            user: UserId(user),
            app: AppId(app),
            start: SimTime::from_secs(start_s),
            duration: SimDuration::from_secs(dur_s),
        }
    }

    #[test]
    fn trace_sorts_sessions() {
        let t = Trace::new(vec![s(0, 0, 100, 10), s(1, 0, 50, 10)], 2, SimTime::ZERO);
        assert_eq!(t.sessions()[0].user, UserId(1));
        assert_eq!(t.horizon(), SimTime::from_secs(110));
    }

    #[test]
    fn ad_slots_follow_refresh_rule() {
        // A 95 s session with 30 s refresh yields slots at 0, 30, 60, 90.
        let t = Trace::new(vec![s(0, 0, 0, 95)], 1, SimTime::ZERO);
        let slots = t.ad_slots(SimDuration::from_secs(30));
        let times: Vec<u64> = slots.iter().map(|x| x.time.as_millis() / 1000).collect();
        assert_eq!(times, vec![0, 30, 60, 90]);
    }

    #[test]
    fn session_shorter_than_refresh_yields_one_slot() {
        let t = Trace::new(vec![s(0, 0, 0, 10)], 1, SimTime::ZERO);
        assert_eq!(t.ad_slots(SimDuration::from_secs(30)).len(), 1);
    }

    #[test]
    fn exact_multiple_excludes_end_boundary() {
        // A 60 s session has slots at 0 and 30; the slot at t = 60 would be
        // at session end and is not shown.
        let t = Trace::new(vec![s(0, 0, 0, 60)], 1, SimTime::ZERO);
        assert_eq!(t.ad_slots(SimDuration::from_secs(30)).len(), 2);
    }

    #[test]
    fn zero_refresh_means_launch_only() {
        let t = Trace::new(vec![s(0, 0, 0, 600)], 1, SimTime::ZERO);
        assert_eq!(t.ad_slots(SimDuration::ZERO).len(), 1);
    }

    #[test]
    fn slots_by_user_partitions_slots() {
        let t = Trace::new(vec![s(0, 0, 0, 65), s(1, 1, 10, 5)], 2, SimTime::ZERO);
        let by_user = t.slots_by_user(SimDuration::from_secs(30));
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[0].len(), 3);
        assert_eq!(by_user[1].len(), 1);
    }

    #[test]
    fn window_counts_cover_horizon() {
        let times = vec![
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            SimTime::from_secs(3700),
        ];
        let counts =
            Trace::window_counts(&times, SimDuration::from_hours(1), SimTime::from_hours(3));
        assert_eq!(counts, vec![2, 1, 0]);
    }

    #[test]
    fn days_rounds_up() {
        let t = Trace::new(
            vec![s(0, 0, 0, 90_000)], // Ends at 25 h.
            1,
            SimTime::ZERO,
        );
        assert_eq!(t.days(), 2);
    }

    #[test]
    fn split_users_partitions_population_and_sessions() {
        // 7 users, uneven activity (user 5 has none), split 3 ways:
        // shard sizes 3/2/2 covering users 0-2, 3-4, 5-6.
        let sessions = vec![
            s(0, 0, 0, 10),
            s(1, 0, 5, 10),
            s(2, 1, 20, 10),
            s(3, 0, 30, 10),
            s(4, 2, 40, 10),
            s(6, 0, 50, 10),
            s(6, 1, 60, 10),
        ];
        let t = Trace::new(sessions, 7, SimTime::from_secs(1_000));
        let shards = t.split_users(3);
        assert_eq!(
            shards.iter().map(|s| s.num_users()).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        // Every session lands in exactly one shard.
        let total: usize = shards.iter().map(|s| s.sessions().len()).sum();
        assert_eq!(total, t.sessions().len());
        // User ids are dense within each shard, and mapping back through
        // the cumulative offsets recovers the original sessions.
        let mut offset = 0u32;
        let mut recovered = Vec::new();
        for shard in &shards {
            for sess in shard.sessions() {
                assert!(sess.user.0 < shard.num_users());
                recovered.push(Session {
                    user: UserId(sess.user.0 + offset),
                    ..*sess
                });
            }
            assert_eq!(shard.horizon(), t.horizon(), "global horizon kept");
            offset += shard.num_users();
        }
        recovered.sort_by(|a, b| a.start.cmp(&b.start).then(a.user.cmp(&b.user)));
        assert_eq!(recovered, t.sessions());
    }

    #[test]
    fn split_users_preserves_slot_counts() {
        let sessions: Vec<Session> = (0..10).map(|u| s(u, 0, u as u64 * 100, 95)).collect();
        let t = Trace::new(sessions, 10, SimTime::ZERO);
        let refresh = SimDuration::from_secs(30);
        let whole = t.ad_slots(refresh).len();
        for n in [1, 2, 3, 10] {
            let sharded: usize = t
                .split_users(n)
                .iter()
                .map(|s| s.ad_slots(refresh).len())
                .sum();
            assert_eq!(sharded, whole, "slot count must survive a {n}-way split");
        }
    }

    #[test]
    fn split_users_clamps_shard_count() {
        let t = Trace::new(vec![s(0, 0, 0, 10), s(1, 0, 5, 10)], 2, SimTime::ZERO);
        assert_eq!(t.split_users(0).len(), 1, "zero shards clamps to one");
        assert_eq!(t.split_users(100).len(), 2, "never more shards than users");
        let empty = Trace::new(Vec::new(), 0, SimTime::from_secs(5));
        let shards = empty.split_users(4);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].num_users(), 0);
    }

    #[test]
    fn single_shard_split_is_the_whole_trace() {
        let t = Trace::new(vec![s(0, 0, 0, 10), s(1, 0, 5, 10)], 2, SimTime::ZERO);
        let shards = t.split_users(1);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0], t);
    }

    #[test]
    fn shard_ranges_agree_with_split_users() {
        for (users, n) in [(7u32, 3usize), (10, 2), (2, 100), (5, 1), (40, 8)] {
            let sessions: Vec<Session> = (0..users).map(|u| s(u, 0, u as u64 * 100, 95)).collect();
            let t = Trace::new(sessions, users, SimTime::ZERO);
            let shards = t.split_users(n);
            let ranges = shard_ranges(users, n);
            assert_eq!(shards.len(), ranges.len());
            for (shard, range) in shards.iter().zip(&ranges) {
                assert_eq!(shard.num_users(), range.end - range.start);
            }
            // Ranges are contiguous and cover the population exactly.
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, users);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
        }
    }

    #[test]
    fn shard_ranges_handles_empty_population() {
        assert_eq!(shard_ranges(0, 4), vec![0..0]);
        assert_eq!(shard_ranges(1, 4), vec![0..1]);
    }

    #[test]
    fn user_slots_matches_vec_of_vecs_layout() {
        let t = Trace::new(
            vec![s(0, 0, 0, 65), s(1, 1, 10, 5), s(0, 1, 200, 5)],
            3, // User 2 has no sessions.
            SimTime::ZERO,
        );
        let refresh = SimDuration::from_secs(30);
        let by_user = t.slots_by_user(refresh);
        let csr = t.user_slots(refresh);
        assert_eq!(csr.num_users(), 3);
        assert_eq!(
            csr.total_slots(),
            by_user.iter().map(Vec::len).sum::<usize>()
        );
        for (u, times) in by_user.iter().enumerate() {
            assert_eq!(csr.user(u), times.as_slice(), "user {u} slot times");
        }
    }

    #[test]
    fn user_slots_drops_out_of_range_ids() {
        let slots = [AdSlot {
            user: UserId(9),
            app: AppId(0),
            time: SimTime::from_secs(1),
        }];
        let csr = UserSlots::from_slots(&slots, 2);
        assert_eq!(csr.total_slots(), 0);
    }

    #[test]
    fn sessions_for_filters_by_user() {
        let t = Trace::new(
            vec![s(0, 0, 0, 10), s(1, 0, 5, 10), s(0, 1, 20, 10)],
            2,
            SimTime::ZERO,
        );
        assert_eq!(t.sessions_for(UserId(0)).count(), 2);
        assert_eq!(t.sessions_for(UserId(1)).count(), 1);
    }
}
