//! Trace transformations: slicing, filtering, splitting, merging.
//!
//! Real trace studies rarely use a dataset whole: they warm models on a
//! prefix, evaluate on a suffix, slice cohorts, or merge collection
//! batches. These helpers keep those manipulations out of experiment code.

use adpf_desim::SimTime;

use crate::model::{Session, Trace, UserId};

/// Keeps only the sessions of days `[from_day, to_day)`, re-basing time so
/// the slice starts at day 0 (predictor calendar features keep working).
///
/// Sessions straddling the slice boundaries are clipped.
pub fn slice_days(trace: &Trace, from_day: u32, to_day: u32) -> Trace {
    let start = SimTime::from_days(from_day as u64);
    let end = SimTime::from_days(to_day.max(from_day) as u64);
    let mut sessions = Vec::new();
    for s in trace.sessions() {
        let s_start = s.start.max(start);
        let s_end = s.end().min(end);
        if s_end <= s_start {
            continue;
        }
        sessions.push(Session {
            user: s.user,
            app: s.app,
            start: SimTime::from_millis(s_start.as_millis() - start.as_millis()),
            duration: s_end - s_start,
        });
    }
    let horizon = SimTime::from_millis(end.saturating_since(start).as_millis());
    Trace::new(sessions, trace.num_users(), horizon)
}

/// Keeps only the given users, compacting ids to `0..users.len()` so the
/// population has no silent holes.
pub fn filter_users(trace: &Trace, users: &[UserId]) -> Trace {
    let mut index = std::collections::HashMap::new();
    for (i, &u) in users.iter().enumerate() {
        index.insert(u, UserId(i as u32));
    }
    let sessions = trace
        .sessions()
        .iter()
        .filter_map(|s| {
            index
                .get(&s.user)
                .map(|&new_id| Session { user: new_id, ..*s })
        })
        .collect();
    Trace::new(sessions, users.len() as u32, trace.horizon())
}

/// Splits a trace at `day`: `(train, test)`, both re-based to start at
/// day 0.
pub fn split_at_day(trace: &Trace, day: u32) -> (Trace, Trace) {
    let days = trace.days();
    (slice_days(trace, 0, day), slice_days(trace, day, days))
}

/// Merges two traces over disjoint user populations: users of `b` are
/// re-numbered after those of `a`. Horizon is the later of the two.
pub fn merge_populations(a: &Trace, b: &Trace) -> Trace {
    let offset = a.num_users();
    let mut sessions: Vec<Session> = a.sessions().to_vec();
    sessions.extend(b.sessions().iter().map(|s| Session {
        user: UserId(s.user.0 + offset),
        ..*s
    }));
    Trace::new(
        sessions,
        offset + b.num_users(),
        a.horizon().max(b.horizon()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::PopulationConfig;
    use adpf_desim::SimDuration;

    fn trace() -> Trace {
        PopulationConfig::small_test(33).generate()
    }

    #[test]
    fn slice_rebases_time_and_clips() {
        let t = trace();
        let sliced = slice_days(&t, 2, 5);
        assert_eq!(sliced.days(), 3);
        for s in sliced.sessions() {
            assert!(s.end() <= SimTime::from_days(3));
        }
        // Roughly 3/7 of the sessions survive.
        let frac = sliced.sessions().len() as f64 / t.sessions().len() as f64;
        assert!((0.25..0.6).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn slice_preserves_hour_of_day() {
        let t = trace();
        let sliced = slice_days(&t, 3, 4);
        // Day boundaries are midnight, so hours survive re-basing.
        let orig: Vec<u32> = t
            .sessions()
            .iter()
            .filter(|s| s.start.day_index() == 3)
            .map(|s| s.start.hour_of_day())
            .collect();
        let new: Vec<u32> = sliced
            .sessions()
            .iter()
            .filter(|s| s.start >= SimTime::ZERO)
            .map(|s| s.start.hour_of_day())
            .take(orig.len())
            .collect();
        assert_eq!(orig[..new.len().min(orig.len())], new[..]);
    }

    #[test]
    fn filter_users_compacts_ids() {
        let t = trace();
        let keep = vec![UserId(3), UserId(7), UserId(11)];
        let filtered = filter_users(&t, &keep);
        assert_eq!(filtered.num_users(), 3);
        for s in filtered.sessions() {
            assert!(s.user.0 < 3);
        }
        let expected: usize = keep.iter().map(|&u| t.sessions_for(u).count()).sum();
        assert_eq!(filtered.sessions().len(), expected);
    }

    #[test]
    fn split_partitions_sessions() {
        let t = trace();
        let (train, test) = split_at_day(&t, 4);
        assert_eq!(train.days(), 4);
        assert_eq!(test.days(), 3);
        // Session counts add up to at least the original (straddlers can
        // appear in both halves as clipped pieces).
        assert!(train.sessions().len() + test.sessions().len() >= t.sessions().len());
    }

    #[test]
    fn merge_renumbers_users() {
        let a = PopulationConfig {
            num_users: 5,
            ..PopulationConfig::small_test(1)
        }
        .generate();
        let b = PopulationConfig {
            num_users: 7,
            ..PopulationConfig::small_test(2)
        }
        .generate();
        let merged = merge_populations(&a, &b);
        assert_eq!(merged.num_users(), 12);
        assert_eq!(
            merged.sessions().len(),
            a.sessions().len() + b.sessions().len()
        );
        let max_user = merged.sessions().iter().map(|s| s.user.0).max();
        assert!(max_user.is_some_and(|u| u < 12));
        // Slot derivation still works over the merged population.
        let slots = merged.ad_slots(SimDuration::from_secs(30));
        assert!(!slots.is_empty());
    }

    #[test]
    fn merge_survives_empty_traces() {
        // Regression: the user-id maximum over a merged trace is `None`
        // when both inputs are empty — nothing here may unwrap it.
        let empty = Trace::new(Vec::new(), 0, SimTime::from_days(1));
        let merged = merge_populations(&empty, &empty);
        assert_eq!(merged.num_users(), 0);
        assert!(merged.sessions().is_empty());
        assert!(merged.sessions().iter().map(|s| s.user.0).max().is_none());

        // One-sided emptiness keeps the populated side's numbering.
        let t = trace();
        let left = merge_populations(&t, &empty);
        assert_eq!(left.num_users(), t.num_users());
        assert_eq!(left.sessions().len(), t.sessions().len());
        let right = merge_populations(&empty, &t);
        assert_eq!(right.num_users(), t.num_users());
        assert_eq!(right.sessions().len(), t.sessions().len());
    }

    #[test]
    fn empty_slice_is_empty() {
        let t = trace();
        let sliced = slice_days(&t, 5, 5);
        assert_eq!(sliced.sessions().len(), 0);
    }
}
