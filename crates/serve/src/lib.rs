//! Online ad-serving front end.
//!
//! The batch pipeline (`adpf-core`) answers "what would a week of this
//! population cost?"; this crate answers the operational form of the
//! same question: a **server** that ingests ad-slot events as they
//! arrive — newline-delimited text over stdin or a TCP socket — and
//! decides each one in-line with the very same [`ClientEngine`] the
//! batch simulator drives. Same engine, same sharding derivations, same
//! shard-ordered merge: replaying a trace's event stream through the
//! server reproduces the batch report **bit for bit** (the CI smoke
//! gate pins the shared golden hash).
//!
//! - [`protocol`] — the wire format and its panic-free, line-numbered
//!   ingest parser.
//! - [`server`] — the sharded serving loop: work-stealing engine
//!   construction, per-shard single-owner event routing,
//!   decision-latency histograms, graceful shutdown into a final
//!   [`SimReport`](adpf_core::SimReport) plus obs snapshot.
//!
//! The `serve` binary wraps [`server::serve`] for the command line; the
//! load-generator lives in `adpf-bench` (`baseline --workload serve`),
//! which replays generated traces against an in-process server and
//! records requests/s and decision-latency percentiles.
//!
//! [`ClientEngine`]: adpf_core::ClientEngine

pub mod protocol;
pub mod server;

pub use protocol::{
    write_events, write_events_paced, write_header, IngestError, Parser, SlotEvent, StreamHeader,
};
pub use server::{serve, ServeError, ServeOptions, ServeOutcome, DECISION_LATENCY_METRIC};
