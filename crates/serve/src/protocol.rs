//! The newline-delimited serve wire protocol.
//!
//! A serve stream is plain text, one record per line:
//!
//! ```text
//! #serve,users=300,horizon_ms=604800000
//! slot,102414,17,3
//! slot,102414,252,9
//! slot,105000,17,3
//! shutdown
//! ```
//!
//! - The **header** (`#serve,users=N,horizon_ms=H`) must be the first
//!   non-blank, non-comment line: the server sizes its shards and client
//!   tables from it, exactly like the batch pipeline sizes them from a
//!   [`Trace`]'s population and horizon.
//! - Each **event** line (`slot,<time_ms>,<user>,<app>`) is one ad slot:
//!   client `user` renders a slot of app `app` at `time_ms`. Events must
//!   be non-decreasing in time — the same ordering contract the batch
//!   slot stream satisfies by construction.
//! - An optional **`shutdown`** line asks the server to finalize and
//!   report; end of input does the same (so file/stdin replay needs no
//!   sentinel, while a long-lived socket can end a session explicitly
//!   without closing its write side).
//! - Blank lines and other `#` comments are ignored.
//!
//! The parser is **panic-free and forgiving by design**: a malformed or
//! out-of-order line is *rejected* — reported with its 1-based line
//! number and counted under `serve.ingest_errors` — and the stream keeps
//! going. Only a missing header is unrecoverable, because nothing can be
//! sized without it.

use std::io::Write;

use adpf_desim::SimDuration;
use adpf_traces::Trace;

/// Leading tag of the mandatory stream header.
pub const HEADER_PREFIX: &str = "#serve,";
/// Tag of an ad-slot event line.
pub const EVENT_TAG: &str = "slot";
/// Sentinel line requesting a graceful finalize-and-report.
pub const SHUTDOWN: &str = "shutdown";

/// The stream header: the population bounds the server sizes itself
/// from, mirroring what the batch pipeline reads off a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Population size; event `user` fields must be `< users`.
    pub users: u32,
    /// Trace horizon in milliseconds; determines the report's `days`
    /// and when the engines stop rescheduling periodic work.
    pub horizon_ms: u64,
}

/// One parsed ad-slot event, still in wire units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotEvent {
    /// Slot render time in milliseconds since stream start.
    pub time_ms: u64,
    /// Global (stream-wide) client id.
    pub user: u32,
    /// App whose session produced the slot.
    pub app: u16,
}

/// A rejected ingest line: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl core::fmt::Display for IngestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ingest error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for IngestError {}

/// What one input line meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// The stream header (emitted at most once per stream).
    Header(StreamHeader),
    /// A well-formed, in-order ad-slot event.
    Event(SlotEvent),
    /// The graceful-shutdown sentinel.
    Shutdown,
    /// A blank line or comment; nothing to do.
    Skip,
    /// A malformed, out-of-range, or out-of-order line. The stream
    /// continues; the caller counts and (sparsely) reports these.
    Rejected(IngestError),
}

/// Stateful line parser for one serve stream.
///
/// Tracks the line number (for error reports), whether the header has
/// been seen (events before it are rejected, duplicates are rejected),
/// and the time watermark that enforces the non-decreasing-time
/// contract the engines rely on.
#[derive(Debug, Default)]
pub struct Parser {
    line: usize,
    header: Option<StreamHeader>,
    watermark_ms: u64,
}

impl Parser {
    /// A fresh parser at line 0, before the header.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lines fed so far.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The stream header, once seen.
    pub fn header(&self) -> Option<StreamHeader> {
        self.header
    }

    fn reject(&self, reason: String) -> Parsed {
        Parsed::Rejected(IngestError {
            line: self.line,
            reason,
        })
    }

    /// Classifies the next input line. Never panics: any content at all
    /// — truncated records, garbage bytes, duplicate headers, events
    /// that travel backwards in time — comes back as
    /// [`Parsed::Rejected`] with the line number.
    pub fn feed(&mut self, raw: &str) -> Parsed {
        self.line += 1;
        let t = raw.trim();
        if t.is_empty() {
            return Parsed::Skip;
        }
        if let Some(rest) = t.strip_prefix(HEADER_PREFIX) {
            return self.feed_header(rest);
        }
        if t.starts_with('#') {
            return Parsed::Skip;
        }
        if t == SHUTDOWN {
            return Parsed::Shutdown;
        }
        let Some(header) = self.header else {
            return self.reject(format!("event before `{HEADER_PREFIX}` header"));
        };
        let Some(rest) = t.strip_prefix(EVENT_TAG).and_then(|r| r.strip_prefix(',')) else {
            return self.reject(format!("unknown record `{}`", truncate(t)));
        };
        let mut fields = rest.split(',');
        let time_ms: u64 = match parse_field(fields.next(), "time_ms") {
            Ok(v) => v,
            Err(reason) => return self.reject(reason),
        };
        let user: u32 = match parse_field(fields.next(), "user") {
            Ok(v) => v,
            Err(reason) => return self.reject(reason),
        };
        let app: u16 = match parse_field(fields.next(), "app") {
            Ok(v) => v,
            Err(reason) => return self.reject(reason),
        };
        if fields.next().is_some() {
            return self.reject("too many fields".into());
        }
        if user >= header.users {
            return self.reject(format!(
                "user {user} out of range (population {})",
                header.users
            ));
        }
        if time_ms < self.watermark_ms {
            return self.reject(format!(
                "out-of-order event: t={time_ms}ms after watermark {}ms",
                self.watermark_ms
            ));
        }
        self.watermark_ms = time_ms;
        Parsed::Event(SlotEvent { time_ms, user, app })
    }

    fn feed_header(&mut self, rest: &str) -> Parsed {
        if self.header.is_some() {
            return self.reject("duplicate `#serve` header".into());
        }
        let mut users: Option<u32> = None;
        let mut horizon_ms: Option<u64> = None;
        for field in rest.split(',') {
            if let Some(v) = field.strip_prefix("users=") {
                match v.trim().parse() {
                    Ok(n) => users = Some(n),
                    Err(_) => return self.reject(format!("invalid `users` value `{v}`")),
                }
            } else if let Some(v) = field.strip_prefix("horizon_ms=") {
                match v.trim().parse() {
                    Ok(n) => horizon_ms = Some(n),
                    Err(_) => return self.reject(format!("invalid `horizon_ms` value `{v}`")),
                }
            }
            // Unknown header fields are ignored for forward compatibility.
        }
        match (users, horizon_ms) {
            (Some(users), Some(horizon_ms)) => {
                let h = StreamHeader { users, horizon_ms };
                self.header = Some(h);
                Parsed::Header(h)
            }
            _ => self.reject("header must carry both `users=` and `horizon_ms=`".into()),
        }
    }
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, name: &str) -> Result<T, String> {
    let s = field.ok_or_else(|| format!("missing field `{name}`"))?;
    s.trim()
        .parse()
        .map_err(|_| format!("invalid `{name}` value `{s}`"))
}

/// Caps a rejected line's echo so one long garbage line cannot flood an
/// error report.
fn truncate(s: &str) -> String {
    const MAX: usize = 40;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// Writes `trace` as a serve stream: the header, then every ad slot the
/// batch simulator would derive from it (same `refresh` cadence, same
/// `(time, user)` order).
///
/// This is the bridge that makes the equivalence claim testable: replay
/// `write_events(trace, cfg.ad_refresh, …)` into a server running the
/// same config and the final report is bit-identical to
/// `Simulator::run_parallel(cfg, trace, _)`.
pub fn write_events<W: Write>(
    trace: &Trace,
    refresh: SimDuration,
    w: &mut W,
) -> std::io::Result<()> {
    write_header(w, trace.num_users(), trace.horizon().as_millis())?;
    for s in trace.ad_slots(refresh) {
        writeln!(
            w,
            "{EVENT_TAG},{},{},{}",
            s.time.as_millis(),
            s.user.0,
            s.app.0
        )?;
    }
    Ok(())
}

/// [`write_events`] throttled to `events_per_sec` (wall clock): the
/// sub-saturation load generator. An unpaced pipe saturates the server's
/// ingest, which measures peak throughput but keeps every decision queue
/// hot; pacing below capacity is what lets SLA-style latency columns
/// measure scheduling rather than backlog. The writer is flushed before
/// every sleep so the receiver observes the pace, not buffered bursts.
///
/// The emitted bytes are identical to [`write_events`] — pacing changes
/// only the wall-clock shape of the stream, never its content, so a
/// paced replay reproduces the same report hash.
///
/// # Panics
///
/// Panics if `events_per_sec` is not positive and finite.
pub fn write_events_paced<W: Write>(
    trace: &Trace,
    refresh: SimDuration,
    events_per_sec: f64,
    w: &mut W,
) -> std::io::Result<()> {
    assert!(
        events_per_sec.is_finite() && events_per_sec > 0.0,
        "pace must be positive, got {events_per_sec}"
    );
    write_header(w, trace.num_users(), trace.horizon().as_millis())?;
    let t0 = std::time::Instant::now();
    for (i, s) in trace.ad_slots(refresh).iter().enumerate() {
        let due = std::time::Duration::from_secs_f64(i as f64 / events_per_sec);
        let elapsed = t0.elapsed();
        if due > elapsed {
            w.flush()?;
            std::thread::sleep(due - elapsed);
        }
        writeln!(
            w,
            "{EVENT_TAG},{},{},{}",
            s.time.as_millis(),
            s.user.0,
            s.app.0
        )?;
    }
    Ok(())
}

/// Writes just the stream header line.
pub fn write_header<W: Write>(w: &mut W, users: u32, horizon_ms: u64) -> std::io::Result<()> {
    writeln!(w, "{HEADER_PREFIX}users={users},horizon_ms={horizon_ms}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adpf_traces::PopulationConfig;

    fn fed(lines: &[&str]) -> (Parser, Vec<Parsed>) {
        let mut p = Parser::new();
        let out = lines.iter().map(|l| p.feed(l)).collect();
        (p, out)
    }

    #[test]
    fn header_then_events_parse() {
        let (p, out) = fed(&[
            "#serve,users=10,horizon_ms=1000",
            "slot,5,3,1",
            "slot,5,4,2",
            "slot,9,0,0",
            "shutdown",
        ]);
        assert_eq!(
            out[0],
            Parsed::Header(StreamHeader {
                users: 10,
                horizon_ms: 1000
            })
        );
        assert!(matches!(
            out[1],
            Parsed::Event(SlotEvent {
                time_ms: 5,
                user: 3,
                app: 1
            })
        ));
        assert!(matches!(
            out[3],
            Parsed::Event(SlotEvent { time_ms: 9, .. })
        ));
        assert_eq!(out[4], Parsed::Shutdown);
        assert_eq!(p.header().unwrap().users, 10);
    }

    #[test]
    fn blank_lines_and_comments_skip() {
        let (_, out) = fed(&["", "  ", "# a comment", "#another"]);
        assert!(out.iter().all(|p| *p == Parsed::Skip));
    }

    /// The fuzz-style hardening gate: every class of malformed input is
    /// rejected with the right line number, and nothing panics.
    #[test]
    fn malformed_lines_reject_with_line_numbers() {
        let mut p = Parser::new();
        assert!(matches!(
            p.feed("#serve,users=3,horizon_ms=100"),
            Parsed::Header(_)
        ));
        let bad = [
            "slot,5,3",                      // truncated: missing app
            "slot,5",                        // truncated: missing user
            "slot",                          // bare tag
            "slot,5,3,1,9",                  // too many fields
            "slot,x,3,1",                    // garbage time
            "slot,5,-1,1",                   // garbage user
            "slot,5,3,bananas",              // garbage app
            "sync,5,3,1",                    // unknown record
            "\u{1}\u{2}\u{3}",               // binary noise
            "slot,5,99,1",                   // user out of range
            "#serve,users=3,horizon_ms=100", // duplicate header
        ];
        for (i, line) in bad.iter().enumerate() {
            match p.feed(line) {
                Parsed::Rejected(e) => assert_eq!(e.line, i + 2, "line number for {line:?}"),
                other => panic!("{line:?} should be rejected, got {other:?}"),
            }
        }
        // The stream is still usable after every rejection.
        assert!(matches!(p.feed("slot,7,2,1"), Parsed::Event(_)));
    }

    #[test]
    fn out_of_order_events_reject_but_duplicates_of_time_pass() {
        let mut p = Parser::new();
        p.feed("#serve,users=5,horizon_ms=100");
        assert!(matches!(p.feed("slot,10,1,1"), Parsed::Event(_)));
        // Equal times are legal (the batch stream has ties too).
        assert!(matches!(p.feed("slot,10,2,1"), Parsed::Event(_)));
        match p.feed("slot,9,1,1") {
            Parsed::Rejected(e) => assert!(e.reason.contains("out-of-order"), "{e}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        // Watermark survives the rejection: time keeps flowing forward.
        assert!(matches!(p.feed("slot,11,1,1"), Parsed::Event(_)));
    }

    #[test]
    fn events_before_header_reject_and_missing_meta_rejects() {
        let mut p = Parser::new();
        match p.feed("slot,5,1,1") {
            Parsed::Rejected(e) => assert!(e.reason.contains("before"), "{e}"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(matches!(p.feed("#serve,users=3"), Parsed::Rejected(_)));
        assert!(matches!(
            p.feed("#serve,users=a,horizon_ms=1"),
            Parsed::Rejected(_)
        ));
        // A later complete header still works.
        assert!(matches!(
            p.feed("#serve,users=3,horizon_ms=1"),
            Parsed::Header(_)
        ));
    }

    #[test]
    fn write_events_round_trips_through_the_parser() {
        let trace = PopulationConfig::small_test(5).generate();
        let refresh = SimDuration::from_secs(30);
        let mut buf = Vec::new();
        write_events(&trace, refresh, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut p = Parser::new();
        let mut events = 0usize;
        for line in text.lines() {
            match p.feed(line) {
                Parsed::Header(h) => {
                    assert_eq!(h.users, trace.num_users());
                    assert_eq!(h.horizon_ms, trace.horizon().as_millis());
                }
                Parsed::Event(_) => events += 1,
                Parsed::Rejected(e) => panic!("generated stream rejected: {e}"),
                Parsed::Skip | Parsed::Shutdown => {}
            }
        }
        assert_eq!(events, trace.ad_slots(refresh).len());
    }

    #[test]
    fn paced_writer_emits_identical_bytes() {
        // Pacing shapes wall-clock emission only; a rate high enough to
        // never sleep must still produce the exact unpaced stream.
        let trace = PopulationConfig::small_test(5).generate();
        let refresh = SimDuration::from_secs(30);
        let mut plain = Vec::new();
        write_events(&trace, refresh, &mut plain).unwrap();
        let mut paced = Vec::new();
        write_events_paced(&trace, refresh, 1e9, &mut paced).unwrap();
        assert_eq!(plain, paced);
    }

    #[test]
    fn long_garbage_lines_are_truncated_in_errors() {
        let mut p = Parser::new();
        p.feed("#serve,users=3,horizon_ms=100");
        let long = "x".repeat(500);
        match p.feed(&long) {
            Parsed::Rejected(e) => assert!(e.reason.len() < 100, "{}", e.reason),
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
