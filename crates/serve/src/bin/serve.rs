//! Online ad server over stdin or a TCP socket.
//!
//! Reads a newline-delimited serve stream (see `adpf_serve::protocol`),
//! decides every ad slot in-line with the same sharded decision engine
//! the batch simulator uses, and on end of stream (EOF or a `shutdown`
//! line) prints the final report, throughput, and decision-latency
//! percentiles. Replaying a trace's event stream reproduces the batch
//! simulator's report hash exactly:
//!
//! ```text
//! tracegen --preset small --seed 777 --events | serve --seed 5 --threads 2
//! serve --listen 127.0.0.1:9137 --seed 5 &
//! tracegen --preset small --seed 777 --events | nc 127.0.0.1:9137
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Instant;

use adpf_auction::{MarketplaceConfig, PricingRule};
use adpf_core::{PlannerKind, SystemConfig};
use adpf_energy::profiles;
use adpf_netem::NetemConfig;
use adpf_obs::render_table;
use adpf_prediction::PredictorKind;
use adpf_scenario::ScenarioSpec;
use adpf_serve::{serve, ServeOptions, ServeOutcome, DECISION_LATENCY_METRIC};

struct Opts {
    listen: Option<String>,
    seed: u64,
    threads: usize,
    shards: Option<usize>,
    predictor: Option<String>,
    planner: Option<String>,
    radio: Option<String>,
    netem: Option<String>,
    marketplace: Option<String>,
    pricing: Option<String>,
    scenario: Option<String>,
    scenario_seed: Option<u64>,
    metrics: bool,
}

fn usage() {
    eprintln!(
        "usage: serve [--listen ADDR] [--seed N] [--threads N] [--shards N]\n\
         \x20            [--predictor session|day-hour|tod|markov|mean|zero]\n\
         \x20            [--planner greedy|fixed-K|none] [--radio 3g|lte|wifi]\n\
         \x20            [--netem off|flaky|degraded|blackout]\n\
         \x20            [--marketplace off|static|paced] [--pricing first|second]\n\
         \x20            [--scenario mixed|churn|flashcrowd] [--scenario-seed N]\n\
         \x20            [--metrics]\n\
         \n\
         Reads a `#serve` event stream from stdin (or one TCP connection\n\
         with --listen), decides every slot in-line, and prints the final\n\
         report, requests/s, and decision-latency percentiles.\n\
         --scenario enables the engine's scenario layer; --scenario-seed\n\
         must match the upstream tracegen seed (defaults to --seed) so\n\
         class assignment agrees with the stream's generator."
    );
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        listen: None,
        seed: 5,
        threads: 2,
        shards: None,
        predictor: None,
        planner: None,
        radio: None,
        netem: None,
        marketplace: None,
        pricing: None,
        scenario: None,
        scenario_seed: None,
        metrics: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--metrics" {
            o.metrics = true;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            return Err("help".into());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for `{flag}`"))?;
        match flag.as_str() {
            "--listen" => o.listen = Some(value.clone()),
            "--seed" => o.seed = value.parse().map_err(|_| format!("bad --seed `{value}`"))?,
            "--threads" => {
                o.threads = value
                    .parse()
                    .map_err(|_| format!("bad --threads `{value}`"))?;
                if o.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--shards" => {
                o.shards = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --shards `{value}`"))?,
                )
            }
            "--predictor" => o.predictor = Some(value.clone()),
            "--planner" => o.planner = Some(value.clone()),
            "--radio" => o.radio = Some(value.clone()),
            "--netem" => o.netem = Some(value.clone()),
            "--marketplace" => o.marketplace = Some(value.clone()),
            "--pricing" => o.pricing = Some(value.clone()),
            "--scenario" => o.scenario = Some(value.clone()),
            "--scenario-seed" => {
                o.scenario_seed = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --scenario-seed `{value}`"))?,
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

/// The serving config: batch `prefetch_default(seed)` with only the
/// explicitly given overrides applied, so an unflagged `serve --seed 5`
/// runs the exact config behind the batch smoke golden.
fn build_config(o: &Opts) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::prefetch_default(o.seed);
    if let Some(p) = &o.predictor {
        cfg.predictor = PredictorKind::parse(p)?;
        if matches!(cfg.predictor, PredictorKind::Oracle) {
            return Err(
                "`--predictor oracle` needs the future slot stream; the online server \
                 cannot provide it"
                    .into(),
            );
        }
    }
    if let Some(p) = &o.planner {
        cfg.planner = PlannerKind::parse(p)?;
    }
    if let Some(r) = &o.radio {
        cfg.radio = profiles::by_name(r)?;
    }
    if let Some(n) = &o.netem {
        cfg.netem = NetemConfig::parse_preset(n)?;
    }
    if let Some(m) = &o.marketplace {
        cfg.marketplace = MarketplaceConfig::parse_regime(m)?;
    }
    if let Some(p) = &o.pricing {
        if !cfg.marketplace.enabled {
            return Err("--pricing requires a --marketplace regime other than `off`".into());
        }
        cfg.marketplace.pricing = PricingRule::parse(p)?;
    }
    if let Some(name) = &o.scenario {
        let spec = ScenarioSpec::parse_preset(name)?;
        // Class/region assignment keys on the *trace* seed: the stream
        // was generated by tracegen with its own seed, which the caller
        // echoes here (defaulting to the config seed for the common
        // same-seed pipeline). An explicit --netem wins over the
        // scenario's binding, mirroring the batch `simulate` CLI.
        let explicit_netem = o.netem.is_some().then(|| cfg.netem.clone());
        spec.apply_to(&mut cfg, o.scenario_seed.unwrap_or(o.seed));
        if let Some(netem) = explicit_netem {
            cfg.netem = netem;
        }
    } else if o.scenario_seed.is_some() {
        return Err("--scenario-seed requires --scenario".into());
    }
    Ok(cfg)
}

/// The session summary every sink (stdout, the TCP peer) receives.
fn render_outcome(out: &ServeOutcome, wall_s: f64) -> String {
    let rps = if wall_s > 0.0 {
        out.requests as f64 / wall_s
    } else {
        0.0
    };
    let (p50, p95, p99) = match out.registry.histogram_snapshot(DECISION_LATENCY_METRIC) {
        Some(h) => (
            h.quantile_upper_bound(0.50),
            h.quantile_upper_bound(0.95),
            h.quantile_upper_bound(0.99),
        ),
        None => (0, 0, 0),
    };
    let mut s = String::new();
    s.push_str(&format!(
        "serve: users={} horizon_ms={} shards={} threads={}\n",
        out.header.users, out.header.horizon_ms, out.shards, out.threads
    ));
    s.push_str(&out.report.summary());
    s.push_str(&format!(
        "\nserve: requests={} ingest_errors={} wall_s={:.4} requests_per_sec={:.0}\n",
        out.requests, out.ingest_errors, wall_s, rps
    ));
    s.push_str(&format!(
        "serve: latency_us p50={p50} p95={p95} p99={p99}\n"
    ));
    s.push_str(&format!("report-hash: {:016x}\n", out.report.stable_hash()));
    s
}

fn run_session<R: BufRead>(opts: &ServeOptions, input: R) -> Result<(ServeOutcome, f64), String> {
    let t0 = Instant::now();
    let out = serve(opts, input).map_err(|e| e.to_string())?;
    Ok((out, t0.elapsed().as_secs_f64()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(o) => o,
        Err(reason) => {
            if reason != "help" {
                eprintln!("{reason}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };
    let cfg = match build_config(&o) {
        Ok(c) => c,
        Err(reason) => {
            eprintln!("{reason}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let mut sopts = ServeOptions::new(cfg);
    sopts.threads = o.threads;
    sopts.shards = o.shards;

    let session = match &o.listen {
        Some(addr) => {
            // One connection per process invocation: accept, serve the
            // stream, answer the final report on the same socket.
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot listen on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("serve: listening on {addr}");
            let (stream, peer) = match listener.accept() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("serve: connection from {peer}");
            match run_session(&sopts, BufReader::new(&stream)) {
                Ok((out, wall_s)) => {
                    // Best-effort reply; the peer may have hung up
                    // after pushing its events.
                    let _ = (&stream).write_all(render_outcome(&out, wall_s).as_bytes());
                    Ok((out, wall_s))
                }
                err => err,
            }
        }
        None => run_session(&sopts, std::io::stdin().lock()),
    };

    match session {
        Ok((out, wall_s)) => {
            print!("{}", render_outcome(&out, wall_s));
            for e in &out.error_sample {
                eprintln!("{e}");
            }
            if out.ingest_errors > out.error_sample.len() as u64 {
                eprintln!(
                    "… and {} more ingest errors",
                    out.ingest_errors - out.error_sample.len() as u64
                );
            }
            if o.metrics {
                println!("metrics:\n{}", render_table(&out.registry));
            }
            ExitCode::SUCCESS
        }
        Err(reason) => {
            eprintln!("{reason}");
            ExitCode::FAILURE
        }
    }
}
