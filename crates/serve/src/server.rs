//! The sharded online server: per-client decision engines driven by an
//! external event feed.
//!
//! # Architecture
//!
//! The server reuses the batch pipeline's sharding machinery wholesale —
//! that is what makes its results bit-identical to the simulator's:
//!
//! - the population splits along [`shard_ranges`], the shard count
//!   defaults to [`default_shards`], per-shard configs come from
//!   [`shard_configs`], and the shared campaign catalog from one
//!   [`ShardContext`] — exactly the derivations `Simulator::run_parallel`
//!   uses;
//! - each shard is one [`ClientEngine`], built cold (an empty
//!   [`UserSlots`] view: an online server cannot know the future, so the
//!   oracle predictor is rejected up front);
//! - workers claim shard indices from the work-stealing [`WorkQueue`]
//!   to build engines, then own what they built: the ingest thread
//!   routes each event to its shard's owning worker over a bounded-race
//!   FIFO channel, so one shard's events are always handled in arrival
//!   order by one thread — the determinism contract — while distinct
//!   shards proceed in parallel;
//! - at end of stream (EOF or the `shutdown` sentinel) every engine
//!   drains its remaining internal events, finalizes, and the reports
//!   merge **in shard order**, the same fixed summation order as the
//!   batch merge.
//!
//! Decisions are answered in-line: an event is fully decided (cache
//! hit, fallback fetch, or unfilled — including any internal syncs due
//! before it) before the worker dequeues the next one, and the
//! enqueue-to-decision latency of every event lands in the
//! `serve.decision_latency_us` histogram.
//!
//! # Why a shard's sub-stream equals its batch sub-trace
//!
//! The batch shard simulator drives shard `i` with the slots of users
//! `range_i`, renumbered to `0..len` and time-sorted. Routing a global
//! time-sorted stream by user range and renumbering (`u - range.start`,
//! a monotone shift) yields exactly that subsequence in exactly that
//! order. So every per-shard engine sees the identical input either
//! way, and identical inputs + identical configs = identical reports.

use std::io::BufRead;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Barrier, Mutex};
use std::time::Instant;

use adpf_core::{
    default_shards, shard_configs, ClientEngine, ShardContext, SimReport, SystemConfig,
};
use adpf_desim::{SimTime, WorkQueue};
use adpf_obs::{MetricRegistry, ObsSink};
use adpf_prediction::PredictorKind;
use adpf_traces::{shard_ranges, AppId, UserId, UserSlots};

use crate::protocol::{IngestError, Parsed, Parser, StreamHeader};

/// Name of the enqueue-to-decision latency histogram (microseconds,
/// log-linear buckets, 4 steps per octave) recorded for every served
/// request.
pub const DECISION_LATENCY_METRIC: &str = "serve.decision_latency_us";

/// How a [`serve`] run is configured.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Master system config; sharded per engine exactly like the batch
    /// pipeline shards it.
    pub config: SystemConfig,
    /// Worker threads (clamped to the shard count).
    pub threads: usize,
    /// Shard-count override; `None` derives [`default_shards`] from the
    /// stream header's population, matching `Simulator::run_parallel`.
    pub shards: Option<usize>,
    /// How many rejected-line errors to keep verbatim for the caller
    /// (all rejections are *counted*; only a sample is retained).
    pub error_sample: usize,
}

impl ServeOptions {
    /// Serving defaults for `config`: batch-equivalent sharding, two
    /// workers, a 20-error sample.
    pub fn new(config: SystemConfig) -> Self {
        Self {
            config,
            threads: 2,
            shards: None,
            error_sample: 20,
        }
    }
}

/// Everything a completed serve session produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The stream header the session was sized from.
    pub header: StreamHeader,
    /// Shard count actually used.
    pub shards: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// The final report; bit-identical to the batch simulator's on the
    /// same `(config, event stream)`.
    pub report: SimReport,
    /// Merged metric registry: per-shard simulation registries in shard
    /// order, then the per-worker serving registries (decision-latency
    /// histograms), then the ingest counters (`serve.*` namespace).
    pub registry: MetricRegistry,
    /// Well-formed events decided.
    pub requests: u64,
    /// Lines rejected by the ingest parser.
    pub ingest_errors: u64,
    /// The first [`ServeOptions::error_sample`] rejections, verbatim.
    pub error_sample: Vec<IngestError>,
}

/// Unrecoverable serve failures. Rejected *lines* are not errors at
/// this level — they are counted and skipped; see
/// [`ServeOutcome::ingest_errors`].
#[derive(Debug)]
pub enum ServeError {
    /// Reading the input failed.
    Io(std::io::Error),
    /// The stream ended before a valid `#serve` header arrived; nothing
    /// can be sized without one.
    MissingHeader,
    /// The configuration cannot be served online (e.g. the oracle
    /// predictor, which needs the future slot stream at construction).
    Unsupported(String),
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::MissingHeader => {
                write!(
                    f,
                    "input ended before a `#serve,users=N,horizon_ms=H` header"
                )
            }
            ServeError::Unsupported(reason) => write!(f, "unsupported serve config: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One routed event: shard-local addressing plus the enqueue timestamp
/// the decision-latency histogram measures from.
struct Routed {
    shard: u32,
    time: SimTime,
    user: UserId,
    app: AppId,
    enqueued: Instant,
}

/// Tallies rejected lines, keeping the first `cap` verbatim.
struct ErrorLog {
    count: u64,
    cap: usize,
    sample: Vec<IngestError>,
}

impl ErrorLog {
    fn push(&mut self, e: IngestError) {
        self.count += 1;
        if self.sample.len() < self.cap {
            self.sample.push(e);
        }
    }
}

/// Runs one serve session over `input` to completion (EOF or the
/// `shutdown` sentinel) and returns the final report plus observability
/// snapshot.
///
/// The report is a deterministic function of `(config, event stream)`:
/// thread count, shard claiming order, and wall-clock timing are all
/// invisible after the shard-ordered merge, exactly as in the batch
/// pipeline. Malformed input never panics and never kills the session —
/// see [`crate::protocol`] for the rejection rules.
pub fn serve<R: BufRead>(opts: &ServeOptions, input: R) -> Result<ServeOutcome, ServeError> {
    if matches!(opts.config.predictor, PredictorKind::Oracle) {
        return Err(ServeError::Unsupported(
            "the oracle predictor needs the future slot stream at construction; \
             an online server cannot provide it"
                .into(),
        ));
    }

    let mut parser = Parser::new();
    let mut errors = ErrorLog {
        count: 0,
        cap: opts.error_sample,
        sample: Vec::new(),
    };

    // Phase 1: scan to the header. Anything rejected on the way (events
    // before the header, malformed headers) is counted like any other
    // bad line; only end-of-input without a header is fatal.
    let mut lines = input.lines();
    let header = loop {
        let Some(line) = lines.next() else {
            return Err(ServeError::MissingHeader);
        };
        match parser.feed(&line?) {
            Parsed::Header(h) => break h,
            Parsed::Rejected(e) => errors.push(e),
            Parsed::Shutdown => return Err(ServeError::MissingHeader),
            Parsed::Event(_) | Parsed::Skip => {}
        }
    };

    // Size the run exactly like the batch pipeline sizes it from a
    // trace: same shard boundaries, same per-shard configs, same shared
    // context. `days` replicates `Trace::days` on the header's horizon.
    let users = header.users;
    let horizon = SimTime::from_millis(header.horizon_ms);
    let days = header.horizon_ms.div_ceil(adpf_desim::time::MILLIS_PER_DAY) as u32;
    let want_shards = opts.shards.unwrap_or_else(|| default_shards(users));
    let ranges = shard_ranges(users, want_shards);
    let n = ranges.len();
    let configs = shard_configs(&opts.config, users, &ranges);
    let ctx = ShardContext::new(&opts.config);
    let threads = opts.threads.clamp(1, n);

    // Shard ownership: workers claim construction jobs from the
    // work-stealing queue and keep what they build, so engine setup
    // load-balances while event handling stays single-owner per shard.
    let queue = WorkQueue::new(n);
    let ownership: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    // All workers (and the router) meet here once every engine is built
    // and the ownership table is complete.
    let barrier = Barrier::new(threads + 1);
    type ShardResult = (SimReport, MetricRegistry);
    let results: Vec<Mutex<Option<ShardResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let worker_regs: Vec<Mutex<Option<MetricRegistry>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let mut txs = Vec::with_capacity(threads);
    let mut rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::channel::<Routed>();
        txs.push(tx);
        rxs.push(rx);
    }

    let mut requests = 0u64;
    let route_result: Result<(), ServeError> = std::thread::scope(|scope| {
        let (queue, ownership, barrier) = (&queue, &ownership, &barrier);
        let (ranges, configs, ctx) = (&ranges, &configs, &ctx);
        let (results, worker_regs) = (&results, &worker_regs);
        for (w, rx) in rxs.into_iter().enumerate() {
            scope.spawn(move || {
                // Build phase: claim shard indices until the queue runs
                // dry. Engines start cold — the empty UserSlots view is
                // bit-identical to the populated one for every
                // non-oracle predictor (nothing else reads it).
                let mut engines: Vec<Option<ClientEngine>> =
                    (0..ranges.len()).map(|_| None).collect();
                while let Some(i) = queue.claim() {
                    let len = ranges[i].end - ranges[i].start;
                    let cold = UserSlots::from_slots(&[], len);
                    engines[i] = Some(ClientEngine::new(
                        configs[i].clone(),
                        &cold,
                        horizon,
                        days,
                        ctx,
                    ));
                    ownership[i].store(w, Ordering::Release);
                }
                barrier.wait();

                // Decision phase: events for owned shards arrive in
                // stream order; each is decided in-line before the next
                // dequeue. The latency histogram measures enqueue to
                // decision-complete, so queueing delay under load is
                // part of the number — what an SLA would see.
                let obs = MetricRegistry::new();
                let lat = obs.histogram(DECISION_LATENCY_METRIC);
                while let Ok(m) = rx.recv() {
                    let engine = engines[m.shard as usize]
                        .as_mut()
                        .expect("event routed to a worker that owns its shard");
                    engine.drain_internal_before(m.time);
                    engine.on_slot(m.time, m.user, m.app);
                    obs.observe_id(lat, m.enqueued.elapsed().as_micros() as u64);
                }

                // Shutdown phase (all senders dropped): drain the
                // engines' remaining internal events and finalize into
                // the shard-indexed slots the merge reads in order.
                for (i, slot) in engines.into_iter().enumerate() {
                    if let Some(mut engine) = slot {
                        engine.drain_internal();
                        *results[i].lock().expect("shard slot poisoned") = Some(engine.finalize());
                    }
                }
                *worker_regs[w].lock().expect("worker registry poisoned") = Some(obs);
            });
        }

        // Router (this thread): wait out engine construction, then
        // forward each event to its shard's owner. FIFO channels
        // preserve per-shard arrival order.
        barrier.wait();
        for line in lines {
            let line = line?;
            match parser.feed(&line) {
                Parsed::Event(e) => {
                    // First range whose end exceeds the user id; the
                    // parser guarantees `user < users`, so this hits.
                    let shard = ranges.partition_point(|r| r.end <= e.user);
                    let w = ownership[shard].load(Ordering::Acquire);
                    let routed = Routed {
                        shard: shard as u32,
                        time: SimTime::from_millis(e.time_ms),
                        user: UserId(e.user - ranges[shard].start),
                        app: AppId(e.app),
                        enqueued: Instant::now(),
                    };
                    requests += 1;
                    txs[w].send(routed).expect("worker outlives the router");
                }
                Parsed::Rejected(e) => errors.push(e),
                Parsed::Shutdown => break,
                Parsed::Header(_) | Parsed::Skip => {}
            }
        }
        drop(txs);
        Ok(())
    });
    route_result?;

    // Merge strictly in shard order — the identical fixed summation
    // order as the batch pipeline, which is what keeps the report hash
    // equal at every thread count. The wall-clock-flavored serving
    // registries follow in worker order; they carry no deterministic
    // metrics.
    let mut report = SimReport::empty();
    report.reserve_users(users as usize);
    let mut registry = MetricRegistry::new();
    for slot in results {
        let (r, reg) = slot
            .into_inner()
            .expect("shard slot poisoned")
            .expect("every shard finalizes");
        report.merge(&r);
        registry.merge(&reg);
    }
    for wr in worker_regs {
        if let Some(reg) = wr.into_inner().expect("worker registry poisoned") {
            registry.merge(&reg);
        }
    }
    registry.add("serve.requests", requests);
    registry.add("serve.ingest_errors", errors.count);
    registry.gauge_max("serve.shards", n as u64);
    registry.gauge_max("serve.threads", threads as u64);

    Ok(ServeOutcome {
        header,
        shards: n,
        threads,
        report,
        registry,
        requests,
        ingest_errors: errors.count,
        error_sample: errors.sample,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::write_events;
    use adpf_core::Simulator;
    use adpf_traces::PopulationConfig;

    fn smoke_stream(seed: u64, cfg: &SystemConfig) -> Vec<u8> {
        let trace = PopulationConfig::small_test(seed).generate();
        let mut buf = Vec::new();
        write_events(&trace, cfg.ad_refresh, &mut buf).unwrap();
        buf
    }

    #[test]
    fn serve_matches_batch_simulator_bit_for_bit() {
        let cfg = SystemConfig::prefetch_default(5);
        let trace = PopulationConfig::small_test(777).generate();
        let batch = Simulator::run_parallel(&cfg, &trace, 2);
        let stream = smoke_stream(777, &cfg);
        let out = serve(&ServeOptions::new(cfg), stream.as_slice()).unwrap();
        assert_eq!(out.report, batch);
        assert_eq!(out.report.stable_hash(), batch.stable_hash());
        assert_eq!(out.ingest_errors, 0);
        assert_eq!(out.requests, batch.slots);
    }

    #[test]
    fn thread_count_is_invisible_in_the_report() {
        let cfg = SystemConfig::prefetch_default(9);
        let stream = smoke_stream(41, &cfg);
        let mut hashes = Vec::new();
        for threads in [1, 3, 8] {
            let mut o = ServeOptions::new(cfg.clone());
            o.threads = threads;
            let out = serve(&o, stream.as_slice()).unwrap();
            assert_eq!(out.threads, threads.min(out.shards));
            hashes.push(out.report.stable_hash());
        }
        assert_eq!(hashes[0], hashes[1]);
        assert_eq!(hashes[1], hashes[2]);
    }

    #[test]
    fn rejected_lines_are_counted_not_fatal() {
        let cfg = SystemConfig::prefetch_default(5);
        let stream = smoke_stream(777, &cfg);
        let clean = serve(&ServeOptions::new(cfg.clone()), stream.as_slice()).unwrap();
        // Corrupt the stream: garbage, truncation, and an out-of-range
        // user spliced between valid events.
        let text = String::from_utf8(stream).unwrap();
        let mut dirty = String::new();
        for (i, line) in text.lines().enumerate() {
            dirty.push_str(line);
            dirty.push('\n');
            if i == 10 {
                dirty.push_str("slot,notatime,0,0\nslot,1\nslot,0,999999,0\n\u{7}garbage\n");
            }
        }
        let out = serve(&ServeOptions::new(cfg), dirty.as_bytes()).unwrap();
        assert_eq!(out.ingest_errors, 4);
        assert_eq!(out.error_sample.len(), 4);
        assert!(out.error_sample.iter().all(|e| e.line > 0));
        // The valid events all got through: the report is unperturbed.
        assert_eq!(out.report, clean.report);
        assert_eq!(
            out.registry.counter_value("serve.ingest_errors"),
            4,
            "rejections surface in the obs namespace"
        );
    }

    #[test]
    fn shutdown_sentinel_finalizes_early() {
        let cfg = SystemConfig::prefetch_default(5);
        let stream = smoke_stream(777, &cfg);
        let text = String::from_utf8(stream).unwrap();
        let mut cut = String::new();
        for (i, line) in text.lines().enumerate() {
            if i == 50 {
                cut.push_str("shutdown\n");
                cut.push_str("slot,0,0,0\n"); // Never read.
                break;
            }
            cut.push_str(line);
            cut.push('\n');
        }
        let out = serve(&ServeOptions::new(cfg), cut.as_bytes()).unwrap();
        // Line 0 is the header, lines 1..50 are events.
        assert_eq!(out.requests, 49);
        assert!(out.report.syncs > 0, "internal events still drained");
    }

    #[test]
    fn missing_header_is_the_one_fatal_ingest_error() {
        let cfg = SystemConfig::prefetch_default(5);
        let err = serve(&ServeOptions::new(cfg.clone()), &b"slot,1,2,3\n"[..]).unwrap_err();
        assert!(matches!(err, ServeError::MissingHeader));
        let err = serve(&ServeOptions::new(cfg), &b""[..]).unwrap_err();
        assert!(matches!(err, ServeError::MissingHeader));
    }

    #[test]
    fn oracle_predictor_is_rejected_up_front() {
        let mut cfg = SystemConfig::prefetch_default(5);
        cfg.predictor = PredictorKind::Oracle;
        let err = serve(
            &ServeOptions::new(cfg),
            &b"#serve,users=1,horizon_ms=1\n"[..],
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Unsupported(_)));
    }

    #[test]
    fn latency_histogram_records_every_request() {
        let cfg = SystemConfig::prefetch_default(5);
        let stream = smoke_stream(777, &cfg);
        let out = serve(&ServeOptions::new(cfg), stream.as_slice()).unwrap();
        let hist = out
            .registry
            .histogram_snapshot(DECISION_LATENCY_METRIC)
            .expect("latency histogram present");
        assert_eq!(hist.count(), out.requests);
        assert_eq!(out.registry.counter_value("serve.requests"), out.requests);
    }
}
