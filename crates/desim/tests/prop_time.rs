//! Property-based tests for simulated time arithmetic.

use adpf_desim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Addition and subtraction of durations round-trip.
    #[test]
    fn add_sub_round_trip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_millis(t);
        let dur = SimDuration::from_millis(d);
        let t1 = t0 + dur;
        prop_assert_eq!(t1 - t0, dur);
        prop_assert_eq!(t1.saturating_sub(dur), t0);
        prop_assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    /// Calendar helpers are consistent with raw arithmetic.
    #[test]
    fn calendar_consistency(t in 0u64..(400 * 24 * 3_600_000u64)) {
        let time = SimTime::from_millis(t);
        prop_assert_eq!(time.day_index(), t / 86_400_000);
        prop_assert!(time.hour_of_day() < 24);
        prop_assert!(time.day_of_week() < 7);
        prop_assert_eq!(time.is_weekend(), time.day_of_week() >= 5);
        // Adding exactly one week preserves day-of-week.
        let next_week = time + SimDuration::from_days(7);
        prop_assert_eq!(time.day_of_week(), next_week.day_of_week());
    }

    /// Float constructors agree with integer ones where exact.
    #[test]
    fn float_constructors_agree(secs in 0u64..1_000_000) {
        prop_assert_eq!(
            SimDuration::from_secs_f64(secs as f64),
            SimDuration::from_secs(secs)
        );
    }

    /// Ordering matches raw milliseconds.
    #[test]
    fn ordering_matches_millis(a in any::<u64>(), b in any::<u64>()) {
        let (ta, tb) = (SimTime::from_millis(a), SimTime::from_millis(b));
        prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        prop_assert_eq!(ta.max(tb).as_millis(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_millis(), a.min(b));
    }
}
