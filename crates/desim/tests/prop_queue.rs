//! Differential property tests for the calendar [`EventQueue`]: replay
//! random push/pop schedules against a plain reference implementation
//! (the `BinaryHeap` semantics the queue replaced) and demand identical
//! behaviour — pops, peeks, and lengths — at every step.

use adpf_desim::{EventQueue, SimTime};
use proptest::prelude::*;

/// Reference queue with the original plain-heap semantics: pop the
/// minimum `(time, seq)`. O(n) per op, which is fine at test sizes.
#[derive(Default)]
struct RefQueue {
    entries: Vec<(u64, u64, u64)>, // (time_ms, seq, payload)
    seq: u64,
}

impl RefQueue {
    fn push(&mut self, time_ms: u64, payload: u64) {
        self.entries.push((time_ms, self.seq, payload));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let i = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(i, _)| i)?;
        let (t, _, p) = self.entries.swap_remove(i);
        Some((t, p))
    }

    fn peek_time(&self) -> Option<u64> {
        self.entries
            .iter()
            .map(|&(t, s, _)| (t, s))
            .min()
            .map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Turns an op code and raw value into a scheduled time that exercises
/// every lane: sub-second clusters (one bucket), second-scale spreads
/// (across buckets), hour-scale times (far heap), and u64-extreme times.
fn op_time(kind: u8, v: u64, last_time: u64) -> u64 {
    match kind {
        0 => v % 1_000,             // Dense near cluster.
        1 => (v % 10_000) * 977,    // Across near buckets.
        2 => (v % 100) * 3_600_000, // Hours out: far heap.
        3 => last_time,             // Exact tie with a prior push.
        _ => u64::MAX - (v % 4),    // Degenerate extreme times.
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of pushes (at near, far, tied, and extreme
    /// times) and pops matches the reference implementation exactly.
    #[test]
    fn calendar_queue_matches_reference_on_random_schedules(
        ops in prop::collection::vec((0u8..8, any::<u64>()), 1..300),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r = RefQueue::default();
        let mut last_time = 0u64;
        let mut payload = 0u64;
        for (kind, v) in ops {
            if kind < 6 {
                // Push ops (kinds 0-5; 5 reuses the extreme-time rule).
                let t = op_time(kind.min(4), v, last_time);
                last_time = t;
                q.push(SimTime::from_millis(t), payload);
                r.push(t, payload);
                payload += 1;
            } else {
                // Pop ops.
                let got = q.pop().map(|(t, p)| (t.as_millis(), p));
                prop_assert_eq!(got, r.pop());
            }
            prop_assert_eq!(q.len(), r.len());
            prop_assert_eq!(q.peek_time().map(|t| t.as_millis()), r.peek_time());
        }
        // Drain both to the end: full order must agree.
        loop {
            let got = q.pop().map(|(t, p)| (t.as_millis(), p));
            let want = r.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Draining bucket-by-bucket through `drain_near_bucket` yields
    /// exactly the `(time, payload)` sequence repeated `pop` would, for
    /// any horizon — the equivalence the batched engine hot path rests
    /// on — and leaves the queue in an identical state afterwards.
    #[test]
    fn drain_near_bucket_matches_repeated_pop(
        ops in prop::collection::vec((0u8..5, any::<u64>()), 1..250),
        horizon_ms in 1u64..10_000_000,
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: EventQueue<u64> = EventQueue::new();
        let mut last_time = 0u64;
        for (i, (kind, v)) in ops.into_iter().enumerate() {
            let t = op_time(kind, v, last_time);
            last_time = t;
            q.push(SimTime::from_millis(t), i as u64);
            r.push(SimTime::from_millis(t), i as u64);
        }
        let upto = SimTime::from_millis(horizon_ms);
        let mut batched = Vec::new();
        let mut buf = Vec::new();
        while q.peek_time().is_some_and(|t| t < upto) {
            buf.clear();
            let n = q.drain_near_bucket(upto, &mut buf);
            prop_assert!(n > 0, "peek promised an event below the horizon");
            prop_assert_eq!(n, buf.len());
            batched.extend(buf.iter().copied());
        }
        let mut popped = Vec::new();
        while r.peek_time().is_some_and(|t| t < upto) {
            popped.push(r.pop().expect("peek promised an event"));
        }
        prop_assert_eq!(batched, popped);
        // Whatever remains at or past the horizon also agrees, in order.
        loop {
            let a = q.pop();
            prop_assert_eq!(a, r.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// Interleaving strictly-future pushes between bucket drains — the
    /// engine contract (handlers only schedule at least a full bucket
    /// ahead) — still matches pop-by-pop dispatch exactly.
    #[test]
    fn drain_with_future_pushes_matches_pop(
        times in prop::collection::vec(0u64..2_000_000, 1..120),
        extra in prop::collection::vec(1100u64..500_000, 0..60),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: EventQueue<u64> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i as u64);
            r.push(SimTime::from_millis(t), i as u64);
        }
        let mut payload = times.len() as u64;
        let mut extra = extra.into_iter();
        let mut batched = Vec::new();
        let mut buf = Vec::new();
        while q.peek_time().is_some() {
            buf.clear();
            q.drain_near_bucket(SimTime::MAX, &mut buf);
            for &(t, p) in &buf {
                batched.push((t, p));
                // A "handler" scheduling >= one bucket span ahead.
                if let Some(d) = extra.next() {
                    q.push(SimTime::from_millis(t.as_millis() + d), payload);
                    r.push(SimTime::from_millis(t.as_millis() + d), payload);
                    payload += 1;
                }
            }
        }
        let mut popped = Vec::new();
        while let Some((t, p)) = r.pop() {
            popped.push((t, p));
        }
        prop_assert_eq!(batched, popped);
    }

    /// Bulk pushes then a full drain pop in exactly `(time, seq)` order.
    #[test]
    fn full_drain_is_sorted_by_time_then_seq(
        times in prop::collection::vec(0u64..5_000_000, 1..200),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_millis(), i));
        }
        prop_assert_eq!(got, expect);
    }
}
