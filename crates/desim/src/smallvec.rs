//! An inline small-vector: stack storage for the common case, heap spill
//! for the rare overflow.
//!
//! The simulator's hot loops build many short lists — holder sets of at
//! most `max_replicas + 1` clients, replica plans, candidate pools — and
//! allocating a `Vec` per list dominates their cost. [`InlineVec`] keeps
//! up to `N` elements in an inline array (no allocation at all) and
//! transparently moves to a heap `Vec` only when the `N+1`-th element
//! arrives, preserving `Vec` semantics either way. Implemented in-tree
//! with safe code only, per the repo's no-new-dependencies policy.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// A growable list that stores its first `N` elements inline.
///
/// `T: Copy + Default` keeps the implementation entirely safe: the inline
/// buffer is a plain initialized array, and unused slots simply hold
/// `T::default()`.
#[derive(Clone)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    /// Number of live elements in `buf`; meaningful only while `spill`
    /// is empty.
    len: usize,
    buf: [T; N],
    /// Once non-empty, holds *all* elements and `buf` is dead.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        Self {
            len: 0,
            buf: [T::default(); N],
            spill: Vec::new(),
        }
    }

    /// Creates a vector holding a copy of `items`.
    pub fn from_slice(items: &[T]) -> Self {
        let mut v = Self::new();
        v.extend_from_slice(items);
        v
    }

    /// Appends an element, spilling to the heap on inline overflow.
    pub fn push(&mut self, value: T) {
        if self.spill.is_empty() && self.len < N {
            self.buf[self.len] = value;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(N + 8);
                self.spill.extend_from_slice(&self.buf[..self.len]);
                self.len = 0;
            }
            self.spill.push(value);
        }
    }

    /// Appends every element of `items`.
    pub fn extend_from_slice(&mut self, items: &[T]) {
        for &v in items {
            self.push(v);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    /// Returns `true` when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` while the elements still fit inline (no heap).
    pub fn is_inline(&self) -> bool {
        self.spill.is_empty()
    }

    /// Removes every element; keeps any heap capacity for reuse but
    /// returns to inline storage for subsequent pushes.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.buf[..self.len]
        } else {
            &self.spill
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.buf[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize, const M: usize> PartialEq<InlineVec<T, M>>
    for InlineVec<T, N>
{
    fn eq(&self, other: &InlineVec<T, M>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<&[T]> for InlineVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty() && v.is_inline());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline(), "4 elements fit in N=4 inline storage");
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn spills_transparently_past_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn clear_returns_to_inline_storage() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(!v.is_inline());
        v.clear();
        assert!(v.is_empty() && v.is_inline());
        v.push(7);
        assert!(v.is_inline(), "post-clear pushes use the inline buffer");
        assert_eq!(v.as_slice(), &[7]);
    }

    #[test]
    fn deref_gives_full_slice_api() {
        let v: InlineVec<u32, 8> = InlineVec::from_slice(&[3, 1, 2]);
        assert_eq!(v[0], 3);
        assert_eq!(v.iter().copied().max(), Some(3));
        let mut m = v.clone();
        m.sort_unstable();
        assert_eq!(m, vec![1, 2, 3]);
    }

    #[test]
    fn equality_ignores_storage_mode() {
        let inline: InlineVec<u32, 8> = InlineVec::from_slice(&[1, 2, 3]);
        let spilled: InlineVec<u32, 2> = InlineVec::from_slice(&[1, 2, 3]);
        assert_eq!(inline, spilled);
        assert_eq!(inline, vec![1, 2, 3]);
        assert_eq!(spilled, &[1u32, 2, 3][..]);
    }

    #[test]
    fn from_iterator_collects() {
        let v: InlineVec<u32, 4> = (0..6).collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn debug_prints_live_elements_only() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(9);
        assert_eq!(format!("{v:?}"), "[9]");
    }
}
