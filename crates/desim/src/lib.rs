//! Minimal deterministic discrete-event simulation kernel.
//!
//! The `adprefetch` end-to-end simulator replays weeks of app-usage traces
//! for thousands of clients. This crate provides the three pieces that make
//! such a replay deterministic and fast:
//!
//! - [`time`]: a millisecond-resolution simulated clock ([`SimTime`]) and
//!   duration type ([`SimDuration`]) with calendar helpers (hour of day, day
//!   index) used by diurnal models.
//! - [`queue`]: an [`EventQueue`] ordered by time with FIFO tie-breaking, so
//!   two runs with the same inputs produce byte-identical outputs. The
//!   implementation is a two-lane calendar queue (near-future ring buckets
//!   plus a far-event heap) sized for per-second slot cadences.
//! - [`engine`]: a small actor-style driver ([`Simulation`]) for components
//!   that want an inversion-of-control event loop.
//! - [`feed`]: the [`EventFeed`] pull abstraction over sorted external
//!   event streams, letting one consumer be driven by a batch replay or
//!   a live ingest source alike.
//! - [`smallvec`]: an [`InlineVec`] small-vector used by hot simulator
//!   loops to build short lists without heap allocation.
//! - [`steal`]: a [`WorkQueue`] atomic work queue that hands out indices
//!   into shared read-only work slices, the scheduling primitive behind
//!   the work-stealing sharded simulator and parallel trace generation.
//!
//! # Examples
//!
//! ```
//! use adpf_desim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_secs(10), "later");
//! q.push(SimTime::from_secs(5), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t + SimDuration::from_secs(5), SimTime::from_secs(10));
//! ```

pub mod engine;
pub mod feed;
pub mod queue;
pub mod smallvec;
pub mod steal;
pub mod time;

pub use engine::{Actor, EventKind, Scheduler, Simulation};
pub use feed::EventFeed;
pub use queue::{EventQueue, BUCKET_SPAN_MS};
pub use smallvec::InlineVec;
pub use steal::WorkQueue;
pub use time::{SimDuration, SimTime};
