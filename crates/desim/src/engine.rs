//! Actor-style simulation driver.
//!
//! The driver owns the clock and the event queue; the [`Actor`] owns all
//! domain state. Handlers receive a [`Scheduler`] through which they enqueue
//! follow-up events, which keeps borrowing simple and ordering deterministic
//! (follow-ups are committed in the order the handler issued them).

use adpf_obs::ObsSink;

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A simulation actor: all domain state plus an event handler.
pub trait Actor {
    /// The event alphabet of the simulation.
    type Event;

    /// Handles one event at simulated time `now`, optionally scheduling
    /// follow-up events through `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Events that can label themselves for per-kind observability.
///
/// The returned name keys both the per-kind dispatch counter and the
/// per-kind handler-time metric (same name, different metric kinds), so
/// implementors provide exactly one static string per event variant,
/// e.g. `"desim.event.tick"`.
pub trait EventKind {
    fn kind(&self) -> &'static str;
}

/// Collects follow-up events issued by a handler.
#[derive(Debug)]
pub struct Scheduler<E> {
    pending: Vec<(SimTime, E)>,
    now: SimTime,
}

impl<E> Scheduler<E> {
    fn new(now: SimTime) -> Self {
        Self {
            pending: Vec::new(),
            now,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time.
    ///
    /// Scheduling in the past is a logic error in the actor; the event is
    /// clamped to `now` so the simulation clock can never run backwards.
    pub fn at(&mut self, time: SimTime, event: E) {
        self.pending.push((time.max(self.now), event));
    }

    /// Schedules an event after a relative delay.
    pub fn after(&mut self, delay: crate::time::SimDuration, event: E) {
        self.pending.push((self.now + delay, event));
    }
}

/// A running simulation: clock, queue, and actor.
#[derive(Debug)]
pub struct Simulation<A: Actor> {
    actor: A,
    queue: EventQueue<A::Event>,
    now: SimTime,
    processed: u64,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation at time zero.
    pub fn new(actor: A) -> Self {
        Self {
            actor,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an initial event (usable before and between runs).
    pub fn schedule(&mut self, time: SimTime, event: A::Event) {
        self.queue.push(time, event);
    }

    /// Current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Immutable access to the actor.
    pub fn actor(&self) -> &A {
        &self.actor
    }

    /// Mutable access to the actor.
    pub fn actor_mut(&mut self) -> &mut A {
        &mut self.actor
    }

    /// Consumes the simulation and returns the actor.
    pub fn into_actor(self) -> A {
        self.actor
    }

    /// Processes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        let mut sched = Scheduler::new(time);
        self.actor.handle(time, event, &mut sched);
        for (t, e) in sched.pending {
            self.queue.push(t, e);
        }
        self.processed += 1;
        true
    }

    /// Runs until the queue drains or `horizon` is passed; events scheduled
    /// strictly after `horizon` remain queued. Returns the number of events
    /// processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.processed;
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        self.processed - start
    }

    /// Runs until the queue drains. Returns the number of events processed
    /// by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let start = self.processed;
        while self.step() {}
        self.processed - start
    }
}

impl<A: Actor> Simulation<A>
where
    A::Event: EventKind,
{
    /// [`step`](Self::step) with per-event-kind observability: counts
    /// each dispatched event under its [`EventKind::kind`] name and,
    /// when the sink is enabled, attributes handler wall time to the
    /// same name. With [`NoopSink`](adpf_obs::NoopSink) this
    /// monomorphizes to exactly the plain `step` path — the clock is
    /// never read and the counter calls are empty inlined bodies.
    pub fn step_observed<S: ObsSink>(&mut self, sink: &S) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        let kind = event.kind();
        sink.add(kind, 1);
        let start = sink.enabled().then(std::time::Instant::now);
        let mut sched = Scheduler::new(time);
        self.actor.handle(time, event, &mut sched);
        if let Some(start) = start {
            sink.add_time_ns(kind, start.elapsed().as_nanos() as u64);
        }
        for (t, e) in sched.pending {
            self.queue.push(t, e);
        }
        self.processed += 1;
        true
    }

    /// [`run_to_completion`](Self::run_to_completion) through
    /// [`step_observed`](Self::step_observed).
    pub fn run_to_completion_observed<S: ObsSink>(&mut self, sink: &S) -> u64 {
        let start = self.processed;
        while self.step_observed(sink) {}
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A counter that reschedules itself `remaining` times at a fixed period.
    struct Ticker {
        period: SimDuration,
        remaining: u32,
        fired_at: Vec<SimTime>,
    }

    enum Ev {
        Tick,
    }

    impl EventKind for Ev {
        fn kind(&self) -> &'static str {
            "desim.event.tick"
        }
    }

    impl Actor for Ticker {
        type Event = Ev;

        fn handle(&mut self, now: SimTime, _event: Ev, sched: &mut Scheduler<Ev>) {
            self.fired_at.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(self.period, Ev::Tick);
            }
        }
    }

    #[test]
    fn ticker_fires_periodically() {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(10),
            remaining: 4,
            fired_at: Vec::new(),
        });
        sim.schedule(SimTime::ZERO, Ev::Tick);
        let n = sim.run_to_completion();
        assert_eq!(n, 5);
        assert_eq!(
            sim.actor().fired_at,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30),
                SimTime::from_secs(40),
            ]
        );
        assert_eq!(sim.now(), SimTime::from_secs(40));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(10),
            remaining: 100,
            fired_at: Vec::new(),
        });
        sim.schedule(SimTime::ZERO, Ev::Tick);
        let n = sim.run_until(SimTime::from_secs(25));
        assert_eq!(n, 3); // Ticks at 0, 10, 20.
        assert_eq!(sim.now(), SimTime::from_secs(20));
        // The tick at t = 30 is still queued and runs on resume.
        let n2 = sim.run_until(SimTime::from_secs(30));
        assert_eq!(n2, 1);
    }

    #[test]
    fn scheduler_clamps_past_events() {
        struct BadActor {
            seen: Vec<SimTime>,
        }
        impl Actor for BadActor {
            type Event = bool;
            fn handle(&mut self, now: SimTime, first: bool, sched: &mut Scheduler<bool>) {
                self.seen.push(now);
                if first {
                    // Tries to schedule one second into the past.
                    sched.at(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(BadActor { seen: Vec::new() });
        sim.schedule(SimTime::from_secs(1), true);
        sim.run_to_completion();
        assert_eq!(
            sim.actor().seen,
            vec![SimTime::from_secs(1), SimTime::from_secs(1)]
        );
    }

    #[test]
    fn observed_run_matches_plain_run_and_counts_kinds() {
        use adpf_obs::{MetricRegistry, NoopSink};

        let mk = || {
            let mut sim = Simulation::new(Ticker {
                period: SimDuration::from_secs(10),
                remaining: 4,
                fired_at: Vec::new(),
            });
            sim.schedule(SimTime::ZERO, Ev::Tick);
            sim
        };

        let mut plain = mk();
        plain.run_to_completion();

        let reg = MetricRegistry::new();
        let mut observed = mk();
        let n = observed.run_to_completion_observed(&reg);
        assert_eq!(n, 5);
        assert_eq!(observed.actor().fired_at, plain.actor().fired_at);
        assert_eq!(reg.counter_value("desim.event.tick"), 5);
        // Handler time was attributed under the same name.
        assert!(reg
            .snapshot()
            .iter()
            .any(|m| m.name == "desim.event.tick" && m.kind == adpf_obs::MetricKind::Time));

        // The no-op sink changes nothing about the simulation.
        let mut noop = mk();
        noop.run_to_completion_observed(&NoopSink);
        assert_eq!(noop.actor().fired_at, plain.actor().fired_at);
    }

    #[test]
    fn step_on_empty_queue_is_false() {
        let mut sim = Simulation::new(Ticker {
            period: SimDuration::from_secs(1),
            remaining: 0,
            fired_at: Vec::new(),
        });
        assert!(!sim.step());
        assert_eq!(sim.processed(), 0);
    }
}
