//! Simulated time and durations.
//!
//! Simulated time is an absolute instant measured in **milliseconds since
//! the trace epoch**. By convention the epoch is midnight at the start of
//! day 0 of a trace, which makes calendar helpers ([`SimTime::hour_of_day`],
//! [`SimTime::day_index`]) trivial and timezone-free.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Milliseconds per second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds per minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds per hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;
/// Milliseconds per day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

/// An absolute simulated instant (milliseconds since the trace epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The trace epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * MILLIS_PER_SEC)
    }

    /// Creates an instant from whole minutes since the epoch.
    pub const fn from_mins(m: u64) -> Self {
        Self(m * MILLIS_PER_MIN)
    }

    /// Creates an instant from whole hours since the epoch.
    pub const fn from_hours(h: u64) -> Self {
        Self(h * MILLIS_PER_HOUR)
    }

    /// Creates an instant from whole days since the epoch.
    pub const fn from_days(d: u64) -> Self {
        Self(d * MILLIS_PER_DAY)
    }

    /// Raw milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Hours since the epoch, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Hour of day in `0..24`.
    pub const fn hour_of_day(self) -> u32 {
        ((self.0 % MILLIS_PER_DAY) / MILLIS_PER_HOUR) as u32
    }

    /// Zero-based day index since the epoch.
    pub const fn day_index(self) -> u64 {
        self.0 / MILLIS_PER_DAY
    }

    /// Day of week in `0..7`, with day 0 of the trace defined as a Monday
    /// (so 5 and 6 are the weekend).
    pub const fn day_of_week(self) -> u32 {
        (self.day_index() % 7) as u32
    }

    /// Returns `true` when the instant falls on a weekend day.
    pub const fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// later than `self`.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration (clamps at the epoch).
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Saturating addition of a duration.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * MILLIS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        Self(m * MILLIS_PER_MIN)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        Self(h * MILLIS_PER_HOUR)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        Self(d * MILLIS_PER_DAY)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            Self(0)
        } else {
            Self((s * MILLIS_PER_SEC as f64).round() as u64)
        }
    }

    /// Creates a duration from fractional hours, saturating at zero for
    /// negative input.
    pub fn from_hours_f64(h: f64) -> Self {
        Self::from_secs_f64(h * 3600.0)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Hours, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Returns `true` for a zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales the duration by a non-negative float factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        if k <= 0.0 || !k.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((self.0 as f64 * k).round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: duration too large"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is unknown.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let day = self.day_index();
        let rem = self.0 % MILLIS_PER_DAY;
        let h = rem / MILLIS_PER_HOUR;
        let m = (rem % MILLIS_PER_HOUR) / MILLIS_PER_MIN;
        let s = (rem % MILLIS_PER_MIN) / MILLIS_PER_SEC;
        write!(f, "d{day} {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < MILLIS_PER_SEC {
            write!(f, "{}ms", self.0)
        } else if self.0 < MILLIS_PER_HOUR {
            write!(f, "{:.1}s", self.as_secs_f64())
        } else {
            write!(f, "{:.2}h", self.as_hours_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(2), SimTime::from_hours(48));
        assert_eq!(SimDuration::from_days(1).as_hours_f64(), 24.0);
    }

    #[test]
    fn calendar_helpers() {
        let t = SimTime::from_days(9) + SimDuration::from_hours(13) + SimDuration::from_mins(30);
        assert_eq!(t.day_index(), 9);
        assert_eq!(t.hour_of_day(), 13);
        // Day 9 with day 0 = Monday is a Wednesday.
        assert_eq!(t.day_of_week(), 2);
        assert!(!t.is_weekend());
        let sat = SimTime::from_days(5);
        assert!(sat.is_weekend());
    }

    #[test]
    fn arithmetic_and_saturation() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(a - b, SimDuration::from_secs(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
        assert_eq!(a.saturating_since(b), SimDuration::from_secs(6));
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_millis(1)), None);
        assert_eq!(
            a.saturating_sub(SimDuration::from_secs(4)),
            SimTime::from_secs(6)
        );
        assert_eq!(a.saturating_sub(SimDuration::from_hours(1)), SimTime::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_hours(5)),
            SimTime::MAX
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn float_constructors_clamp() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(SimDuration::from_hours_f64(0.5), SimDuration::from_mins(30));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.saturating_mul(6), SimDuration::from_mins(1));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(7) + SimDuration::from_secs(5);
        assert_eq!(t.to_string(), "d3 07:00:05");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.0s");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
