//! External event feeds: the seam between an event consumer and whatever
//! produces its timestamped input stream.
//!
//! A discrete-event consumer (the batch simulator, the online serving
//! engine) doesn't care whether its external events come from a
//! precomputed in-memory vector, a lazily generated trace shard, or a
//! socket — only that they arrive as `(time, event)` pairs in
//! non-decreasing time order. [`EventFeed`] captures exactly that
//! contract, so one engine implementation can be driven by a batch
//! replay and a live ingest stream alike.

use crate::time::SimTime;

/// A pull-based source of timestamped external events.
///
/// # Contract
///
/// Successive calls must return non-decreasing timestamps; once `next`
/// returns `None` the stream has ended and every later call must also
/// return `None`. Consumers are entitled to interleave their own
/// internal processing between pulls, so a feed must not depend on
/// being drained promptly.
pub trait EventFeed {
    /// The payload carried by each external event.
    type Event;

    /// Pulls the next external event, or `None` at end of stream.
    fn next(&mut self) -> Option<(SimTime, Self::Event)>;
}

/// Blanket adapter: any iterator of `(time, event)` pairs already sorted
/// by time is a feed.
impl<E, I: Iterator<Item = (SimTime, E)>> EventFeed for I {
    type Event = E;

    fn next(&mut self) -> Option<(SimTime, E)> {
        Iterator::next(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_iterators_are_feeds() {
        let events = [
            (SimTime::from_secs(1), "a"),
            (SimTime::from_secs(1), "b"),
            (SimTime::from_secs(3), "c"),
        ];
        let mut feed = events.into_iter();
        let mut seen = Vec::new();
        while let Some((t, e)) = EventFeed::next(&mut feed) {
            seen.push((t, e));
        }
        assert_eq!(seen, events);
        assert!(EventFeed::next(&mut feed).is_none(), "stays exhausted");
    }
}
