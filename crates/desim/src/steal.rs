//! A minimal atomic work queue for deterministic fan-out.
//!
//! [`WorkQueue`] hands out the indices `0..len` exactly once each, in
//! claim order, to any number of racing workers. It is the scheduling
//! primitive behind the sharded simulator and the parallel trace
//! generator: work items are *indices into a shared read-only slice*, and
//! each worker writes its result into the slot for the index it claimed,
//! so results assemble in index order no matter which thread ran what.
//! That is what keeps thread count a pure scheduling choice — outputs are
//! identical at any worker count, including one.
//!
//! Compared with the static `t..n step_by(threads)` stride split this
//! replaced, a claim-per-item queue is naturally work-stealing: a worker
//! that finishes a cheap item immediately claims the next outstanding
//! one, so heavy-tailed item costs no longer serialize behind the
//! unluckiest stride.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hands out the indices `0..len` exactly once each across threads.
///
/// The counter uses relaxed ordering: claims only need to be unique, not
/// ordered relative to other memory traffic. Publication of the results
/// produced for the claimed indices must be synchronized by the caller
/// (joining the worker threads, e.g. via `std::thread::scope`, is
/// sufficient and is what both in-tree users do).
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    len: usize,
}

impl WorkQueue {
    /// A queue over the indices `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Total number of indices this queue hands out.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue was created empty (`len == 0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Claims the next outstanding index, or `None` when all `len`
    /// indices have been handed out.
    pub fn claim(&self) -> Option<usize> {
        // `fetch_add` past `len` is harmless: the counter is monotone and
        // every overshooting claim returns `None`. With `usize::MAX`
        // workers short of wrapping, overflow is unreachable in practice.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }

    /// Claims up to `max` consecutive indices in one atomic operation,
    /// for items cheap enough that per-item claiming would contend.
    /// Returns an empty-free range, or `None` when the queue is drained.
    pub fn claim_chunk(&self, max: usize) -> Option<Range<usize>> {
        let max = max.max(1);
        let start = self.next.fetch_add(max, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + max).min(self.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_each_index_once_in_order() {
        let q = WorkQueue::new(3);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.claim(), Some(0));
        assert_eq!(q.claim(), Some(1));
        assert_eq!(q.claim(), Some(2));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None, "drained queues stay drained");
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = WorkQueue::new(0);
        assert!(q.is_empty());
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim_chunk(8), None);
    }

    #[test]
    fn chunk_claims_partition_the_range() {
        let q = WorkQueue::new(10);
        assert_eq!(q.claim_chunk(4), Some(0..4));
        assert_eq!(q.claim_chunk(4), Some(4..8));
        assert_eq!(q.claim_chunk(4), Some(8..10), "tail chunk is clamped");
        assert_eq!(q.claim_chunk(4), None);
    }

    #[test]
    fn zero_sized_chunks_are_promoted_to_one() {
        let q = WorkQueue::new(2);
        assert_eq!(q.claim_chunk(0), Some(0..1));
        assert_eq!(q.claim_chunk(0), Some(1..2));
        assert_eq!(q.claim_chunk(0), None);
    }

    #[test]
    fn threaded_claims_cover_the_range_exactly_once() {
        let q = WorkQueue::new(1000);
        let mut claimed: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(i) = q.claim() {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        claimed.sort_unstable();
        assert_eq!(claimed, (0..1000).collect::<Vec<_>>());
    }
}
