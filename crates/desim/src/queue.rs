//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by time, with FIFO ordering among events scheduled
/// for the same instant.
///
/// Determinism is load-bearing for the whole reproduction: given the same
/// trace and seed, every simulation run must produce identical reports, so
/// ties must never be broken by heap insertion artifacts.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse both keys to pop the earliest
        // time first and, within a time, the lowest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event, or `None` when empty.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), "c");
        q.push(SimTime::from_secs(10), "a");
        q.push(SimTime::from_secs(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }
}
