//! Time-ordered event queue with deterministic tie-breaking.
//!
//! The queue is a two-lane calendar queue: a ring of fixed-width time
//! buckets covers the *near future* (the per-second ad-slot cadence the
//! traces generate), and a [`BinaryHeap`] holds everything beyond that
//! window (syncs scheduled hours out, expiry sweeps). Near-lane pushes
//! and pops are O(1) amortized; far events migrate into the ring exactly
//! once, as the window advances over them.
//!
//! The ordering contract is identical to the plain-heap implementation
//! it replaced: events pop in `(time, seq)` order, where `seq` is the
//! global insertion counter — FIFO among events scheduled for the same
//! instant, regardless of which lane an event sat in.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Width of one near-lane bucket in milliseconds (as a shift: 1.024 s).
const BUCKET_MS_SHIFT: u32 = 10;
/// Number of ring buckets; with 1.024 s buckets the near window spans
/// ~17.5 minutes — comfortably more than the per-second slot cadence and
/// the sub-minute gaps between clustered events, while periodic syncs
/// (hours out) stay in the far heap until the window reaches them.
const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: usize = NUM_BUCKETS - 1;
const WINDOW_MS: u64 = (NUM_BUCKETS as u64) << BUCKET_MS_SHIFT;

/// Span of one near-lane bucket in milliseconds.
///
/// [`EventQueue::drain_near_bucket`] hands back at most one bucket's
/// worth of events per call, so batching callers that dispatch a whole
/// drained batch before re-checking the queue rely on this bound: any
/// event a dispatched handler schedules strictly more than one bucket
/// span in the future cannot land inside the batch being dispatched.
pub const BUCKET_SPAN_MS: u64 = 1 << BUCKET_MS_SHIFT;

/// An event queue ordered by time, with FIFO ordering among events scheduled
/// for the same instant.
///
/// Determinism is load-bearing for the whole reproduction: given the same
/// trace and seed, every simulation run must produce identical reports, so
/// ties must never be broken by heap insertion artifacts — or, now, by
/// which lane (ring bucket vs far heap) an event happened to live in.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future ring: bucket `(t >> BUCKET_MS_SHIFT) & BUCKET_MASK`
    /// holds events with `t` in `[near_start, near_start + WINDOW_MS)`.
    /// Events scheduled in the past land in the cursor bucket, which is
    /// always scanned first.
    near: Vec<Vec<Entry<E>>>,
    /// Events in the near ring (fast emptiness check for `pop`).
    near_len: usize,
    /// Start of the near window in ms; always bucket-aligned and
    /// monotonically non-decreasing.
    near_start: u64,
    /// Events at or beyond `near_start + WINDOW_MS`.
    far: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Reused sort buffer for [`EventQueue::drain_near_bucket`].
    drain_scratch: Vec<Entry<E>>,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse both keys to pop the earliest
        // time first and, within a time, the lowest sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            near: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            near_len: 0,
            near_start: 0,
            far: BinaryHeap::new(),
            seq: 0,
            drain_scratch: Vec::new(),
        }
    }

    /// Creates an empty queue with pre-allocated far-heap capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            far: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    fn bucket_of(t_ms: u64) -> usize {
        ((t_ms >> BUCKET_MS_SHIFT) as usize) & BUCKET_MASK
    }

    fn align(t_ms: u64) -> u64 {
        t_ms & !((1u64 << BUCKET_MS_SHIFT) - 1)
    }

    /// End of the near window (exclusive); every far-heap event's time is
    /// `>= window_end` — the invariant that makes cross-lane ordering
    /// trivial: any near event precedes every far event.
    fn window_end(&self) -> u64 {
        self.near_start.saturating_add(WINDOW_MS)
    }

    /// Advances the near window to `new_start` (bucket-aligned, >= the
    /// current start) and migrates far events that now fall inside it.
    /// Each event migrates at most once over the queue's lifetime.
    fn advance_to(&mut self, new_start: u64) {
        debug_assert!(new_start >= self.near_start);
        debug_assert_eq!(new_start, Self::align(new_start));
        self.near_start = new_start;
        let end = self.window_end();
        while self.far.peek().is_some_and(|e| e.time.as_millis() < end) {
            let e = self.far.pop().expect("peeked");
            self.near[Self::bucket_of(e.time.as_millis())].push(e);
            self.near_len += 1;
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, event };
        let t = time.as_millis();
        if t >= self.window_end() {
            self.far.push(entry);
        } else {
            // In-window times map to their ring slot; anything at or
            // before the cursor bucket (including past times) joins the
            // cursor bucket, which is scanned first.
            let idx = if t < self.near_start {
                Self::bucket_of(self.near_start)
            } else {
                Self::bucket_of(t)
            };
            self.near[idx].push(entry);
            self.near_len += 1;
        }
    }

    /// Index (within `self.near[bucket]`) of the minimum `(time, seq)`
    /// entry of a non-empty bucket.
    fn min_in_bucket(&self, bucket: usize) -> usize {
        let entries = &self.near[bucket];
        let mut best = 0;
        for (i, e) in entries.iter().enumerate().skip(1) {
            let b = &entries[best];
            if (e.time, e.seq) < (b.time, b.seq) {
                best = i;
            }
        }
        best
    }

    /// First non-empty ring bucket at or after the cursor, as an offset
    /// `d` in buckets; `None` when the ring is empty.
    fn first_occupied_offset(&self) -> Option<usize> {
        if self.near_len == 0 {
            return None;
        }
        let base = Self::bucket_of(self.near_start);
        (0..NUM_BUCKETS).find(|d| !self.near[(base + d) & BUCKET_MASK].is_empty())
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            // Re-anchor the window at the far heap's earliest event and
            // pull the next window's worth of events into the ring.
            let top_ms = self.far.peek()?.time.as_millis();
            self.advance_to(Self::align(top_ms).max(self.near_start));
            if self.near_len == 0 {
                // Times too large to fit any window (near u64::MAX):
                // serve straight from the heap, which is still exact.
                return self.far.pop().map(|e| (e.time, e.event));
            }
        }
        let d = self.first_occupied_offset().expect("near_len > 0");
        if d > 0 {
            // Skip the empty prefix permanently so repeated pops never
            // rescan it; migrate far events the window slid over.
            self.advance_to(self.near_start + ((d as u64) << BUCKET_MS_SHIFT));
        }
        let bucket = Self::bucket_of(self.near_start);
        let idx = self.min_in_bucket(bucket);
        let e = self.near[bucket].swap_remove(idx);
        self.near_len -= 1;
        Some((e.time, e.event))
    }

    /// Drains every event with `time < upto` from the *earliest occupied*
    /// near-lane bucket into `out`, sorted by `(time, seq)`, and returns
    /// how many were appended.
    ///
    /// This is exactly the prefix that repeated [`EventQueue::pop`] calls
    /// would return before leaving the head bucket: entries from a single
    /// bucket, in pop order, stopping at `upto`. Entries of the head
    /// bucket at or after `upto` stay queued. Callers wanting everything
    /// before `upto` loop until a call appends nothing (each drained
    /// batch may be dispatched in between — see [`BUCKET_SPAN_MS`] for
    /// the scheduling bound that keeps that equivalent to pop-dispatch
    /// interleaving).
    ///
    /// When every pending event lies beyond the addressable window (times
    /// near [`SimTime::MAX`]), at most one far-heap event is served per
    /// call, mirroring `pop`'s exact fallback.
    pub fn drain_near_bucket(&mut self, upto: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        if self.near_len == 0 {
            let Some(top) = self.far.peek() else {
                return 0;
            };
            let top_ms = top.time.as_millis();
            self.advance_to(Self::align(top_ms).max(self.near_start));
            if self.near_len == 0 {
                // Extreme-times fallback: serve one heap event, as `pop`
                // would.
                if self.far.peek().is_some_and(|e| e.time < upto) {
                    let e = self.far.pop().expect("peeked");
                    out.push((e.time, e.event));
                    return 1;
                }
                return 0;
            }
        }
        let d = self.first_occupied_offset().expect("near_len > 0");
        if d > 0 {
            self.advance_to(self.near_start + ((d as u64) << BUCKET_MS_SHIFT));
        }
        let bucket = Self::bucket_of(self.near_start);
        let mut scratch = std::mem::take(&mut self.drain_scratch);
        debug_assert!(scratch.is_empty());
        {
            let entries = &mut self.near[bucket];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].time < upto {
                    scratch.push(entries.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.near_len -= scratch.len();
        scratch.sort_unstable_by_key(|e| (e.time, e.seq));
        let n = scratch.len();
        out.extend(scratch.drain(..).map(|e| (e.time, e.event)));
        self.drain_scratch = scratch;
        n
    }

    /// Time of the earliest pending event, or `None` when empty.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self.first_occupied_offset() {
            Some(d) => {
                let bucket = (Self::bucket_of(self.near_start) + d) & BUCKET_MASK;
                Some(self.near[bucket][self.min_in_bucket(bucket)].time)
            }
            None => self.far.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.near {
            b.clear();
        }
        self.near_len = 0;
        self.far.clear();
    }

    /// Returns the queue to its freshly-constructed state — empty, window
    /// anchored at time zero, sequence counter restarted — while keeping
    /// every allocation (ring buckets, heap, sort buffer) for reuse.
    ///
    /// Unlike [`EventQueue::clear`], which preserves the window cursor and
    /// sequence counter of a mid-run queue, `reset` makes the queue
    /// indistinguishable from `EventQueue::new()` to any caller: `seq` is
    /// unobservable except through relative FIFO order, so restarting it
    /// is exact.
    pub fn reset(&mut self) {
        self.clear();
        self.near_start = 0;
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), "c");
        q.push(SimTime::from_secs(10), "a");
        q.push(SimTime::from_secs(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, 1);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(t, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(9), ());
        q.push(SimTime::from_secs(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
    }

    // --- Calendar-queue specific coverage -----------------------------

    /// One bucket width in ms, for tests that straddle lane boundaries.
    const BUCKET: u64 = 1 << BUCKET_MS_SHIFT;

    #[test]
    fn cross_lane_ordering_near_bucket_vs_far_heap() {
        let mut q = EventQueue::new();
        // Beyond the initial window: lives in the far heap.
        let far_t = SimTime::from_millis(WINDOW_MS + 5 * BUCKET);
        q.push(far_t, "far");
        // Inside the window: lives in a ring bucket.
        let near_t = SimTime::from_secs(2);
        q.push(near_t, "near");
        assert_eq!(q.peek_time(), Some(near_t));
        assert_eq!(q.pop(), Some((near_t, "near")));
        // The far event migrates (or serves) in exact time order.
        assert_eq!(q.pop(), Some((far_t, "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_preserved_across_lane_boundary() {
        // Two events at the same instant: one pushed while that instant
        // was in the far lane (then migrated into the ring), one pushed
        // directly into the ring after the window advanced. Seq order
        // must still win.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(WINDOW_MS + BUCKET);
        q.push(t, 1); // Far lane at push time.
        q.push(SimTime::from_millis(2 * BUCKET), 0); // Near lane.
                                                     // Popping `0` advances the window two buckets, which slides the
                                                     // window end past `t` and migrates event `1` into the ring.
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2); // `t` is now inside the window: straight to the ring.
        assert_eq!(q.pop(), Some((t, 1)), "earlier seq first across lanes");
        assert_eq!(q.pop(), Some((t, 2)));
    }

    #[test]
    fn window_reanchors_over_long_idle_gaps() {
        let mut q = EventQueue::new();
        // Hours apart: every event is far at push time, mimicking the
        // periodic syncs that dominate the simulator's schedule.
        for h in (1..=30).rev() {
            q.push(SimTime::from_hours(h), h);
        }
        for h in 1..=30 {
            assert_eq!(q.pop(), Some((SimTime::from_hours(h), h)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_into_the_past_still_pops_first() {
        let mut q = EventQueue::new();
        // Drain far enough that the window has advanced.
        q.push(SimTime::from_hours(2), "later");
        q.push(SimTime::from_hours(1), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        // Now schedule before the current window start.
        q.push(SimTime::from_secs(1), "past");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "past")));
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn extreme_times_are_served_exactly() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, "end-of-time");
        q.push(SimTime::MAX, "end-of-time-2");
        q.push(SimTime::ZERO, "start");
        assert_eq!(q.pop().unwrap().1, "start");
        assert_eq!(q.pop().unwrap().1, "end-of-time");
        assert_eq!(q.pop().unwrap().1, "end-of-time-2");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_near_bucket_matches_pop_order() {
        let mk = || {
            let mut q = EventQueue::new();
            let base = SimTime::from_secs(3);
            q.push(base + SimDuration::from_millis(3), 30);
            q.push(base + SimDuration::from_millis(1), 10);
            q.push(base + SimDuration::from_millis(3), 31);
            q.push(base + SimDuration::from_millis(2), 20);
            q.push(SimTime::from_hours(1), 99); // different bucket (far)
            q
        };
        let mut by_pop = Vec::new();
        let mut q = mk();
        while let Some(e) = q.pop() {
            by_pop.push(e);
        }
        let mut by_drain = Vec::new();
        let mut q = mk();
        while q.drain_near_bucket(SimTime::MAX, &mut by_drain) > 0 {}
        assert_eq!(by_drain, by_pop);
    }

    #[test]
    fn drain_near_bucket_respects_upto_within_bucket() {
        let mut q = EventQueue::new();
        let base = SimTime::from_secs(3);
        q.push(base + SimDuration::from_millis(5), 5);
        q.push(base + SimDuration::from_millis(1), 1);
        q.push(base + SimDuration::from_millis(9), 9);
        let mut out = Vec::new();
        let n = q.drain_near_bucket(base + SimDuration::from_millis(6), &mut out);
        assert_eq!(n, 2);
        assert_eq!(
            out,
            vec![
                (base + SimDuration::from_millis(1), 1),
                (base + SimDuration::from_millis(5), 5)
            ]
        );
        assert_eq!(q.len(), 1, "the >= upto entry stays queued");
        assert_eq!(q.pop().unwrap().1, 9);
    }

    #[test]
    fn drain_near_bucket_takes_one_bucket_at_a_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(BUCKET / 2), 'a');
        q.push(SimTime::from_millis(5 * BUCKET), 'b');
        let mut out = Vec::new();
        assert_eq!(q.drain_near_bucket(SimTime::MAX, &mut out), 1);
        assert_eq!(out, vec![(SimTime::from_millis(BUCKET / 2), 'a')]);
        assert_eq!(q.drain_near_bucket(SimTime::MAX, &mut out), 1);
        assert_eq!(out.last(), Some(&(SimTime::from_millis(5 * BUCKET), 'b')));
        assert_eq!(q.drain_near_bucket(SimTime::MAX, &mut out), 0);
    }

    #[test]
    fn drain_near_bucket_serves_extreme_times_one_at_a_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::MAX, 1);
        q.push(SimTime::MAX, 2);
        let mut out = Vec::new();
        assert_eq!(q.drain_near_bucket(SimTime::MAX, &mut out), 0, "< upto");
        let upto = SimTime::MAX;
        assert_eq!(q.drain_near_bucket(upto, &mut out), 0);
        // Anything strictly below MAX leaves them; only an exclusive
        // bound above them would drain, so check FIFO via pop instead.
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn reset_restarts_seq_and_window() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_hours(2), 1);
        q.pop();
        q.push(SimTime::from_secs(1), 2);
        q.reset();
        assert!(q.is_empty());
        // Behaves like a fresh queue: same-time FIFO starts over and
        // near-window pushes at t=0 work.
        let t = SimTime::from_secs(5);
        q.push(t, 10);
        q.push(t, 11);
        assert_eq!(q.pop(), Some((t, 10)));
        assert_eq!(q.pop(), Some((t, 11)));
    }

    #[test]
    fn dense_same_bucket_ties_stay_ordered() {
        // Many events inside one bucket, out of time order, with ties.
        let mut q = EventQueue::new();
        let base = SimTime::from_secs(3);
        q.push(base + SimDuration::from_millis(3), (3, 'a'));
        q.push(base + SimDuration::from_millis(1), (1, 'a'));
        q.push(base + SimDuration::from_millis(3), (3, 'b'));
        q.push(base + SimDuration::from_millis(2), (2, 'a'));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![(1, 'a'), (2, 'a'), (3, 'a'), (3, 'b')]);
    }
}
