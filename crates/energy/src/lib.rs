//! Radio energy models for mobile ad delivery.
//!
//! The motivation of *Prefetching mobile ads* (EuroSys 2013) is the **tail
//! energy** problem: after every cellular transfer the radio lingers in
//! high-power states for several seconds before demoting to idle, so a small
//! periodic ad download (a few KB every 30 s) pays a fixed multi-joule tail
//! each time. Batching `K` ads into one prefetch removes `K - 1` tails.
//!
//! This crate models that structure explicitly:
//!
//! - [`profile`]: parameterized radio profiles — promotion delay/power,
//!   transfer power and throughput, and a sequence of post-transfer tail
//!   phases (3G: DCH then FACH tails; LTE: one long tail; WiFi: a short
//!   PSM tail). Constants follow the measurement literature the paper
//!   builds on (Balasubramanian et al. IMC'09, Huang et al. MobiSys'12).
//! - [`radio`]: a per-client radio state machine that converts a stream of
//!   timestamped transfers into an [`EnergyBreakdown`] split into
//!   promotion, transfer, and tail energy.
//! - [`timeline`]: optional recording of state intervals for figure output.
//! - [`audit`]: app-level energy audits that attribute marginal energy to
//!   in-app advertising, reproducing the paper's "ads are 65% of an app's
//!   communication energy" motivation study.
//!
//! # Examples
//!
//! ```
//! use adpf_desim::SimTime;
//! use adpf_energy::{profiles, Radio};
//!
//! let mut radio = Radio::new(profiles::umts_3g());
//! // Two 4 KB ad downloads a minute apart each pay promotion + full tail.
//! radio.transfer(SimTime::from_secs(0), 4_096, 512);
//! radio.transfer(SimTime::from_secs(60), 4_096, 512);
//! let e = radio.finish(SimTime::from_secs(120));
//! assert!(e.tail_j > e.transfer_j, "tail energy dominates small transfers");
//! ```

pub mod audit;
pub mod battery;
pub mod profile;
pub mod radio;
pub mod timeline;

pub use audit::{AdTrafficModel, AppProfile, AppTrafficModel, EnergyAudit};
pub use battery::BatteryModel;
pub use profile::{profiles, RadioProfile, TailPhase};
pub use radio::{EnergyBreakdown, Radio, TransferRecord};
pub use timeline::{RadioState, StateInterval, Timeline};
