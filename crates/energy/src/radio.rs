//! Per-client radio state machine with energy accounting.

use adpf_desim::{SimDuration, SimTime};
use adpf_obs::ObsSink;

use crate::profile::RadioProfile;
use crate::timeline::{RadioState, Timeline};

/// Accumulated radio energy, split by cause.
///
/// All energies are joules. `tail_j` is the quantity the paper's prefetching
/// attacks: energy burnt *after* transfers while inactivity timers run down.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy spent promoting the radio from idle, in joules.
    pub promotion_j: f64,
    /// Energy spent actively moving bytes, in joules.
    pub transfer_j: f64,
    /// Energy spent in post-transfer tail states, in joules.
    pub tail_j: f64,
    /// Number of transfers performed.
    pub transfers: u64,
    /// Number of transfers that required an idle promotion.
    pub promotions: u64,
    /// Total bytes downloaded.
    pub bytes_down: u64,
    /// Total bytes uploaded.
    pub bytes_up: u64,
    /// Total time with the radio out of idle.
    pub active_time: SimDuration,
    /// Portion of `active_time` spent in idle→active promotions.
    pub promo_time: SimDuration,
    /// Portion of `active_time` spent in post-transfer tail states.
    pub tail_time: SimDuration,
}

impl EnergyBreakdown {
    /// Total radio energy, in joules.
    pub fn total_j(&self) -> f64 {
        self.promotion_j + self.transfer_j + self.tail_j
    }

    /// Fraction of total energy attributable to the tail; `0.0` when no
    /// energy has been spent.
    pub fn tail_fraction(&self) -> f64 {
        let total = self.total_j();
        if total <= 0.0 {
            0.0
        } else {
            self.tail_j / total
        }
    }

    /// Adds another breakdown into this one (for fleet-wide aggregation).
    pub fn absorb(&mut self, other: &EnergyBreakdown) {
        self.promotion_j += other.promotion_j;
        self.transfer_j += other.transfer_j;
        self.tail_j += other.tail_j;
        self.transfers += other.transfers;
        self.promotions += other.promotions;
        self.bytes_down += other.bytes_down;
        self.bytes_up += other.bytes_up;
        self.active_time += other.active_time;
        self.promo_time += other.promo_time;
        self.tail_time += other.tail_time;
    }

    /// Time spent actively moving bytes (or stalled on a round trip):
    /// active time minus the promotion and tail residencies.
    pub fn transfer_time(&self) -> SimDuration {
        SimDuration::from_millis(
            self.active_time
                .as_millis()
                .saturating_sub(self.promo_time.as_millis())
                .saturating_sub(self.tail_time.as_millis()),
        )
    }

    /// Publishes this (per-client) breakdown as radio state-residency
    /// histograms: one sample per state per client, in milliseconds,
    /// plus per-client energy in millijoules. All inputs are simulated
    /// quantities, so the resulting metrics are deterministic.
    pub fn publish_residency<S: ObsSink>(&self, sink: &S) {
        sink.observe("energy.user.promo_ms", self.promo_time.as_millis());
        sink.observe("energy.user.xfer_ms", self.transfer_time().as_millis());
        sink.observe("energy.user.tail_ms", self.tail_time.as_millis());
        sink.observe("energy.user.active_ms", self.active_time.as_millis());
        sink.observe("energy.user.total_mj", (self.total_j() * 1_000.0) as u64);
    }
}

/// Outcome of a single [`Radio::transfer`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// When the bytes actually started moving (after any queueing delay and
    /// promotion).
    pub start: SimTime,
    /// When the transfer finished.
    pub end: SimTime,
    /// Whether this transfer paid an idle→active promotion.
    pub promoted: bool,
    /// Marginal energy charged by this call (tail of the previous gap +
    /// promotion + transfer), in joules.
    pub energy_j: f64,
}

/// A radio modem owned by one simulated client.
///
/// Feed it timestamped transfers in non-decreasing time order; it charges
/// promotion, transfer, and tail energy exactly as the state machine of the
/// underlying technology dictates. Call [`Radio::finish`] at the end of the
/// simulation to flush the final tail.
#[derive(Debug, Clone)]
pub struct Radio {
    profile: RadioProfile,
    /// End of the last activity (transfer completion), if any since the
    /// radio was last fully idle.
    last_activity_end: Option<SimTime>,
    energy: EnergyBreakdown,
    timeline: Option<Timeline>,
}

impl Radio {
    /// Creates an idle radio with the given profile.
    pub fn new(profile: RadioProfile) -> Self {
        Self {
            profile,
            last_activity_end: None,
            energy: EnergyBreakdown::default(),
            timeline: None,
        }
    }

    /// Creates a radio that also records a state [`Timeline`] (for figures;
    /// costs memory proportional to the number of transfers).
    pub fn with_timeline(profile: RadioProfile) -> Self {
        let mut r = Self::new(profile);
        r.timeline = Some(Timeline::new());
        r
    }

    /// The radio's profile.
    pub fn profile(&self) -> &RadioProfile {
        &self.profile
    }

    /// Energy accumulated so far (not including any pending tail).
    pub fn energy(&self) -> &EnergyBreakdown {
        &self.energy
    }

    /// Recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Performs a transfer of `down_bytes` + `up_bytes` requested at `at`.
    ///
    /// If the previous transfer is still in flight the new one queues behind
    /// it (no tail, no promotion). If the radio is in a tail phase, the
    /// partial tail is charged and the transfer proceeds without an idle
    /// promotion. If the tail has fully run down, the full tail of the
    /// previous activity plus a fresh promotion are charged.
    ///
    /// Requests must arrive in non-decreasing `at` order; earlier requests
    /// are treated as arriving at the end of the in-flight transfer.
    pub fn transfer(&mut self, at: SimTime, down_bytes: u64, up_bytes: u64) -> TransferRecord {
        let before = self.energy.total_j();
        let tail_total = self.profile.tail_duration();

        let (mut start, promoted) = match self.last_activity_end {
            None => {
                // First ever transfer: promotion from idle.
                (at, true)
            }
            Some(prev_end) => {
                let arrival = at.max(prev_end);
                let gap = arrival.saturating_since(prev_end);
                self.charge_tail(prev_end, gap);
                if gap >= tail_total {
                    // The radio demoted all the way to idle.
                    if let Some(tl) = self.timeline.as_mut() {
                        tl.record(prev_end + tail_total, arrival, RadioState::Idle);
                    }
                    (arrival, true)
                } else {
                    (arrival, false)
                }
            }
        };

        if promoted {
            self.energy.promotion_j += self.profile.promotion_energy_j();
            self.energy.promotions += 1;
            self.energy.active_time += self.profile.promotion_delay;
            self.energy.promo_time += self.profile.promotion_delay;
            if let Some(tl) = self.timeline.as_mut() {
                tl.record(
                    start,
                    start + self.profile.promotion_delay,
                    RadioState::Promoting,
                );
            }
            start += self.profile.promotion_delay;
        }

        let duration = self.profile.transfer_time(down_bytes, up_bytes);
        let end = start + duration;
        self.energy.transfer_j += self.profile.transfer_power_mw * duration.as_secs_f64() / 1_000.0;
        self.energy.transfers += 1;
        self.energy.bytes_down += down_bytes;
        self.energy.bytes_up += up_bytes;
        self.energy.active_time += duration;
        if let Some(tl) = self.timeline.as_mut() {
            tl.record(start, end, RadioState::Transferring);
        }
        self.last_activity_end = Some(end);

        TransferRecord {
            start,
            end,
            promoted,
            energy_j: self.energy.total_j() - before,
        }
    }

    /// Holds the radio active for `duration` starting at `at` without moving
    /// any payload bytes — a failed round trip that times out, or extra
    /// degraded-link latency. Charges the same promotion/tail preamble as a
    /// transfer plus active power for `duration`, but does not count a
    /// transfer or any bytes.
    ///
    /// Like [`Radio::transfer`], calls must arrive in non-decreasing `at`
    /// order. A zero `duration` on an idle radio still pays the promotion —
    /// the modem woke up for nothing, which is exactly the waste the paper's
    /// tail-energy analysis worries about.
    pub fn stall(&mut self, at: SimTime, duration: SimDuration) -> TransferRecord {
        let before = self.energy.total_j();
        let tail_total = self.profile.tail_duration();

        let (mut start, promoted) = match self.last_activity_end {
            None => (at, true),
            Some(prev_end) => {
                let arrival = at.max(prev_end);
                let gap = arrival.saturating_since(prev_end);
                self.charge_tail(prev_end, gap);
                if gap >= tail_total {
                    if let Some(tl) = self.timeline.as_mut() {
                        tl.record(prev_end + tail_total, arrival, RadioState::Idle);
                    }
                    (arrival, true)
                } else {
                    (arrival, false)
                }
            }
        };

        if promoted {
            self.energy.promotion_j += self.profile.promotion_energy_j();
            self.energy.promotions += 1;
            self.energy.active_time += self.profile.promotion_delay;
            self.energy.promo_time += self.profile.promotion_delay;
            if let Some(tl) = self.timeline.as_mut() {
                tl.record(
                    start,
                    start + self.profile.promotion_delay,
                    RadioState::Promoting,
                );
            }
            start += self.profile.promotion_delay;
        }

        let end = start + duration;
        self.energy.transfer_j += self.profile.transfer_power_mw * duration.as_secs_f64() / 1_000.0;
        self.energy.active_time += duration;
        if let Some(tl) = self.timeline.as_mut() {
            tl.record(start, end, RadioState::Transferring);
        }
        self.last_activity_end = Some(end);

        TransferRecord {
            start,
            end,
            promoted,
            energy_j: self.energy.total_j() - before,
        }
    }

    /// Flushes any pending tail as of `at` and returns the final breakdown.
    ///
    /// After `finish` the radio is fully idle; a later transfer pays a fresh
    /// promotion. If `at` falls inside the tail only the elapsed portion is
    /// charged.
    pub fn finish(&mut self, at: SimTime) -> EnergyBreakdown {
        if let Some(prev_end) = self.last_activity_end.take() {
            let gap = at.saturating_since(prev_end);
            self.charge_tail(prev_end, gap);
        }
        self.energy
    }

    /// Charges tail energy for an idle gap of `gap` following activity that
    /// ended at `prev_end`, recording timeline intervals per phase.
    fn charge_tail(&mut self, prev_end: SimTime, gap: SimDuration) {
        self.energy.tail_j += self.profile.tail_energy_for_gap_j(gap);
        let consumed = gap.min(self.profile.tail_duration());
        self.energy.active_time += consumed;
        self.energy.tail_time += consumed;
        if let Some(tl) = self.timeline.as_mut() {
            let mut cursor = prev_end;
            let mut remaining = consumed;
            for (i, phase) in self.profile.tail_phases.iter().enumerate() {
                if remaining.is_zero() {
                    break;
                }
                let t = remaining.min(phase.duration);
                tl.record(cursor, cursor + t, RadioState::Tail(i as u8));
                cursor += t;
                remaining = SimDuration::from_millis(
                    remaining
                        .as_millis()
                        .saturating_sub(phase.duration.as_millis()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profiles;

    #[test]
    fn first_transfer_pays_promotion() {
        let mut r = Radio::new(profiles::umts_3g());
        let rec = r.transfer(SimTime::from_secs(10), 4_096, 256);
        assert!(rec.promoted);
        assert_eq!(
            rec.start,
            SimTime::from_secs(10) + r.profile().promotion_delay
        );
        let e = r.energy();
        assert_eq!(e.transfers, 1);
        assert_eq!(e.promotions, 1);
        assert!((e.promotion_j - r.profile().promotion_energy_j()).abs() < 1e-12);
        assert_eq!(e.tail_j, 0.0);
    }

    #[test]
    fn widely_spaced_transfers_each_pay_full_tail() {
        let p = profiles::umts_3g();
        let full_tail = p.full_tail_energy_j();
        let mut r = Radio::new(p);
        for k in 0..5u64 {
            r.transfer(SimTime::from_secs(k * 60), 4_096, 256);
        }
        let e = r.finish(SimTime::from_secs(600));
        assert_eq!(e.transfers, 5);
        assert_eq!(e.promotions, 5);
        assert!((e.tail_j - 5.0 * full_tail).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_transfers_share_one_tail() {
        let p = profiles::umts_3g();
        let full_tail = p.full_tail_energy_j();
        let mut r = Radio::new(p);
        // Five transfers 1 s apart: each 1 s gap is charged at DCH power,
        // then one full tail at the end.
        for k in 0..5u64 {
            let rec = r.transfer(SimTime::from_secs(k), 1_024, 128);
            assert_eq!(rec.promoted, k == 0);
        }
        let e = r.finish(SimTime::from_hours(1));
        assert_eq!(e.promotions, 1);
        assert!(e.tail_j < full_tail + 5.0 * 0.8 + 1e-9);
        assert!(e.tail_j >= full_tail);
    }

    #[test]
    fn batching_saves_energy_versus_periodic() {
        // The paper's core energy claim in miniature: 10 ads fetched every
        // 30 s cost far more than the same bytes in one batch.
        let p = profiles::umts_3g();
        let mut periodic = Radio::new(p.clone());
        for k in 0..10u64 {
            periodic.transfer(SimTime::from_secs(k * 30), 4_096, 256);
        }
        let e_periodic = periodic.finish(SimTime::from_hours(1));

        let mut batched = Radio::new(p);
        batched.transfer(SimTime::ZERO, 10 * 4_096, 10 * 256);
        let e_batched = batched.finish(SimTime::from_hours(1));

        assert!(
            e_batched.total_j() < e_periodic.total_j() / 2.0,
            "batched {} vs periodic {}",
            e_batched.total_j(),
            e_periodic.total_j()
        );
    }

    #[test]
    fn overlapping_requests_queue_without_tail() {
        let p = profiles::umts_3g();
        let mut r = Radio::new(p);
        let a = r.transfer(SimTime::ZERO, 1_000_000, 0);
        // Requested while the first is still in flight.
        let b = r.transfer(SimTime::from_secs(1), 1_000, 0);
        assert_eq!(b.start, a.end);
        assert!(!b.promoted);
        assert_eq!(r.energy().tail_j, 0.0);
    }

    #[test]
    fn finish_is_idempotent_and_resets_to_idle() {
        let p = profiles::umts_3g();
        let full_tail = p.full_tail_energy_j();
        let mut r = Radio::new(p);
        r.transfer(SimTime::ZERO, 4_096, 0);
        let e1 = r.finish(SimTime::from_hours(1));
        let e2 = r.finish(SimTime::from_hours(2));
        assert_eq!(e1, e2);
        assert!((e1.tail_j - full_tail).abs() < 1e-9);
        // Next transfer after finish pays promotion again.
        let rec = r.transfer(SimTime::from_hours(3), 1_024, 0);
        assert!(rec.promoted);
    }

    #[test]
    fn partial_tail_when_finishing_early() {
        let p = profiles::umts_3g();
        let mut r = Radio::new(p);
        let rec = r.transfer(SimTime::ZERO, 1_024, 0);
        // Finish 2 s after the transfer ends: only 2 s of DCH tail.
        let e = r.finish(rec.end + SimDuration::from_secs(2));
        assert!((e.tail_j - 1.6).abs() < 1e-9);
    }

    #[test]
    fn timeline_records_states() {
        let mut r = Radio::with_timeline(profiles::umts_3g());
        r.transfer(SimTime::ZERO, 4_096, 0);
        r.transfer(SimTime::from_secs(60), 4_096, 0);
        r.finish(SimTime::from_secs(120));
        let tl = r.timeline().unwrap();
        let states: Vec<RadioState> = tl.intervals().iter().map(|iv| iv.state).collect();
        assert!(states.contains(&RadioState::Promoting));
        assert!(states.contains(&RadioState::Transferring));
        assert!(states.contains(&RadioState::Tail(0)));
        assert!(states.contains(&RadioState::Tail(1)));
        assert!(states.contains(&RadioState::Idle));
        // Intervals must be time-ordered and non-overlapping.
        for w in tl.intervals().windows(2) {
            assert!(w[0].end <= w[1].start, "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn stall_pays_wakeup_but_moves_no_bytes() {
        let p = profiles::umts_3g();
        let mut r = Radio::new(p.clone());
        let rec = r.stall(SimTime::from_secs(5), SimDuration::from_millis(1_500));
        assert!(rec.promoted);
        let e = *r.energy();
        assert_eq!(e.transfers, 0);
        assert_eq!(e.bytes_down + e.bytes_up, 0);
        assert_eq!(e.promotions, 1);
        let expected_transfer = p.transfer_power_mw * 1.5 / 1_000.0;
        assert!((e.transfer_j - expected_transfer).abs() < 1e-12);
        // Flushing later charges the full tail: the wasted wakeup costs
        // promotion + hold + tail, same shape as a real transfer.
        let final_e = r.finish(SimTime::from_hours(1));
        assert!((final_e.tail_j - p.full_tail_energy_j()).abs() < 1e-9);
    }

    #[test]
    fn stall_inside_tail_skips_promotion() {
        let p = profiles::umts_3g();
        let mut r = Radio::new(p);
        let rec = r.transfer(SimTime::ZERO, 4_096, 0);
        // Retry 2 s after the transfer ends: still in DCH tail, no
        // promotion, partial tail charged.
        let s = r.stall(
            rec.end + SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        assert!(!s.promoted);
        assert_eq!(r.energy().promotions, 1);
        assert!(r.energy().tail_j > 0.0);
    }

    #[test]
    fn stall_and_transfer_interleave_in_time_order() {
        let p = profiles::umts_3g();
        let mut r = Radio::new(p);
        let a = r.transfer(SimTime::ZERO, 1_000_000, 0);
        // Stall requested while the transfer is in flight queues behind it.
        let s = r.stall(SimTime::from_secs(1), SimDuration::from_secs(2));
        assert_eq!(s.start, a.end);
        assert!(!s.promoted);
        assert_eq!(r.energy().tail_j, 0.0);
        assert_eq!(r.energy().transfers, 1);
    }

    #[test]
    fn residency_splits_partition_active_time() {
        let p = profiles::umts_3g();
        let mut r = Radio::new(p);
        r.transfer(SimTime::ZERO, 4_096, 256);
        r.stall(SimTime::from_secs(120), SimDuration::from_secs(1));
        let e = r.finish(SimTime::from_hours(1));
        assert!(e.promo_time > SimDuration::ZERO);
        assert!(e.tail_time > SimDuration::ZERO);
        assert_eq!(
            e.active_time.as_millis(),
            e.promo_time.as_millis() + e.transfer_time().as_millis() + e.tail_time.as_millis()
        );

        let reg = adpf_obs::MetricRegistry::new();
        e.publish_residency(&reg);
        let h = reg.histogram_snapshot("energy.user.tail_ms").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), e.tail_time.as_millis());
        assert!(reg.histogram_snapshot("energy.user.total_mj").is_some());
    }

    #[test]
    fn marginal_energy_sums_to_total() {
        let mut r = Radio::new(profiles::lte());
        let mut marginal = 0.0;
        for k in 0..7u64 {
            marginal += r.transfer(SimTime::from_secs(k * 20), 2_048, 512).energy_j;
        }
        let final_e = r.finish(SimTime::from_hours(1));
        // The last tail is only charged by finish.
        assert!(final_e.total_j() > marginal);
        assert!((final_e.promotion_j + final_e.transfer_j) <= marginal + 1e-9);
    }
}
