//! Radio state timelines for figure output.

use adpf_desim::{SimDuration, SimTime};

/// A radio macro-state, as rendered in the paper's tail-energy figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioState {
    /// Promoting from idle to the transfer-capable state.
    Promoting,
    /// Actively moving bytes.
    Transferring,
    /// In post-transfer tail phase `i` (0 = highest power).
    Tail(u8),
    /// Fully idle.
    Idle,
}

impl RadioState {
    /// Short label for tabular output.
    pub fn label(&self) -> String {
        match self {
            RadioState::Promoting => "PROMO".to_string(),
            RadioState::Transferring => "XFER".to_string(),
            RadioState::Tail(i) => format!("TAIL{i}"),
            RadioState::Idle => "IDLE".to_string(),
        }
    }
}

/// A half-open interval `[start, end)` spent in one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateInterval {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// State during the interval.
    pub state: RadioState,
}

impl StateInterval {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// An append-only record of radio state intervals.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    intervals: Vec<StateInterval>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an interval; zero-length intervals are dropped.
    pub fn record(&mut self, start: SimTime, end: SimTime, state: RadioState) {
        if end > start {
            self.intervals.push(StateInterval { start, end, state });
        }
    }

    /// All recorded intervals in insertion (time) order.
    pub fn intervals(&self) -> &[StateInterval] {
        &self.intervals
    }

    /// Total time recorded in a given state.
    pub fn time_in(&self, state: RadioState) -> SimDuration {
        self.intervals
            .iter()
            .filter(|iv| iv.state == state)
            .fold(SimDuration::ZERO, |acc, iv| acc + iv.duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums_intervals() {
        let mut tl = Timeline::new();
        tl.record(SimTime::ZERO, SimTime::from_secs(2), RadioState::Promoting);
        tl.record(
            SimTime::from_secs(2),
            SimTime::from_secs(3),
            RadioState::Transferring,
        );
        tl.record(
            SimTime::from_secs(3),
            SimTime::from_secs(8),
            RadioState::Tail(0),
        );
        assert_eq!(tl.intervals().len(), 3);
        assert_eq!(tl.time_in(RadioState::Tail(0)), SimDuration::from_secs(5));
        assert_eq!(tl.time_in(RadioState::Idle), SimDuration::ZERO);
    }

    #[test]
    fn zero_length_intervals_dropped() {
        let mut tl = Timeline::new();
        tl.record(
            SimTime::from_secs(1),
            SimTime::from_secs(1),
            RadioState::Idle,
        );
        assert!(tl.intervals().is_empty());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RadioState::Promoting.label(), "PROMO");
        assert_eq!(RadioState::Tail(1).label(), "TAIL1");
    }
}
