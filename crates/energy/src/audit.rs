//! App-level energy audits attributing energy to in-app advertising.
//!
//! Reproduces the paper's motivation study: for each of the top free apps,
//! how much of the app's communication energy — and of its total energy —
//! is caused by ad downloads? The paper measured 65% of communication
//! energy and 23% of total energy on the top-15 free Windows Phone apps;
//! here the measurement harness is the radio model of [`crate::radio`] and
//! the app population is a catalog of synthetic app profiles spanning the
//! same categories (games, social, news, tools).

use adpf_desim::{SimDuration, SimTime};

use crate::profile::RadioProfile;
use crate::radio::{EnergyBreakdown, Radio};

/// An app's own (non-ad) network behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppTrafficModel {
    /// Bytes downloaded at app launch (content, config, assets).
    pub launch_down: u64,
    /// Bytes uploaded at app launch.
    pub launch_up: u64,
    /// Bytes downloaded by each periodic content refresh.
    pub periodic_down: u64,
    /// Bytes uploaded by each periodic content refresh.
    pub periodic_up: u64,
    /// Interval between periodic refreshes; `None` for apps with
    /// launch-only traffic (typical of games).
    pub periodic_interval: Option<SimDuration>,
}

impl AppTrafficModel {
    /// An app that only talks to the network at launch.
    pub fn launch_only(launch_down: u64, launch_up: u64) -> Self {
        Self {
            launch_down,
            launch_up,
            periodic_down: 0,
            periodic_up: 0,
            periodic_interval: None,
        }
    }
}

/// The in-app advertising SDK's network behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdTrafficModel {
    /// Bytes downloaded per ad (creative + auction response).
    pub ad_down: u64,
    /// Bytes uploaded per ad request (context, identifiers).
    pub ad_up: u64,
    /// Ad refresh interval while the app is in the foreground.
    pub refresh: SimDuration,
}

impl Default for AdTrafficModel {
    /// The paper's setting: small banner ads (a few KB) refreshed every
    /// 30 seconds, plus one at app launch.
    fn default() -> Self {
        Self {
            ad_down: 4 * 1024,
            ad_up: 512,
            refresh: SimDuration::from_secs(30),
        }
    }
}

/// A named application profile used by the motivation study.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Display name.
    pub name: &'static str,
    /// Marketplace category.
    pub category: &'static str,
    /// Average foreground sessions per day.
    pub sessions_per_day: u32,
    /// Mean session length.
    pub mean_session: SimDuration,
    /// The app's own traffic.
    pub traffic: AppTrafficModel,
}

/// Non-radio power draw while the app is in the foreground (screen + CPU +
/// GPU), in milliwatts. Used to convert communication shares into
/// total-energy shares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceBaseline {
    /// Average foreground power, in milliwatts.
    pub foreground_power_mw: f64,
}

impl Default for DeviceBaseline {
    /// ~650 mW foreground draw (screen plus light CPU), typical of a
    /// 2012-era handset running a casual app.
    fn default() -> Self {
        Self {
            foreground_power_mw: 650.0,
        }
    }
}

/// Result of auditing one app's energy.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAudit {
    /// Radio energy with ads enabled.
    pub comm_with_ads: EnergyBreakdown,
    /// Radio energy with ads disabled (the counterfactual run).
    pub comm_without_ads: EnergyBreakdown,
    /// Foreground (screen/CPU) energy, in joules.
    pub baseline_j: f64,
    /// Total foreground time audited.
    pub foreground_time: SimDuration,
}

impl EnergyAudit {
    /// Marginal communication energy attributable to ads, in joules.
    pub fn ad_comm_j(&self) -> f64 {
        (self.comm_with_ads.total_j() - self.comm_without_ads.total_j()).max(0.0)
    }

    /// Ads' share of the app's communication energy (the paper's 65%
    /// metric); `0.0` when the app never used the radio.
    pub fn ad_comm_share(&self) -> f64 {
        let total = self.comm_with_ads.total_j();
        if total <= 0.0 {
            0.0
        } else {
            self.ad_comm_j() / total
        }
    }

    /// Total app energy: communication plus foreground baseline, in joules.
    pub fn total_j(&self) -> f64 {
        self.comm_with_ads.total_j() + self.baseline_j
    }

    /// Ads' share of the app's total energy (the paper's 23% metric).
    pub fn ad_total_share(&self) -> f64 {
        let total = self.total_j();
        if total <= 0.0 {
            0.0
        } else {
            self.ad_comm_j() / total
        }
    }
}

/// Audits one app over the given foreground sessions.
///
/// Runs the radio model twice over identical sessions — once with the app's
/// own traffic only, once with ad fetches added — and attributes the
/// difference to advertising. This mirrors the paper's measurement
/// methodology (diffing power traces with ads enabled/disabled).
pub fn audit_app(
    sessions: &[(SimTime, SimDuration)],
    app: &AppTrafficModel,
    ads: &AdTrafficModel,
    radio_profile: &RadioProfile,
    baseline: &DeviceBaseline,
) -> EnergyAudit {
    let with_ads = run_radio(sessions, app, Some(ads), radio_profile);
    let without_ads = run_radio(sessions, app, None, radio_profile);
    let mut foreground = SimDuration::ZERO;
    for &(_, d) in sessions {
        foreground += d;
    }
    EnergyAudit {
        comm_with_ads: with_ads,
        comm_without_ads: without_ads,
        baseline_j: baseline.foreground_power_mw * foreground.as_secs_f64() / 1_000.0,
        foreground_time: foreground,
    }
}

fn run_radio(
    sessions: &[(SimTime, SimDuration)],
    app: &AppTrafficModel,
    ads: Option<&AdTrafficModel>,
    radio_profile: &RadioProfile,
) -> EnergyBreakdown {
    // Merge all transfers of all sessions into one time-ordered stream.
    let mut transfers: Vec<(SimTime, u64, u64)> = Vec::new();
    let mut horizon = SimTime::ZERO;
    for &(start, duration) in sessions {
        let end = start + duration;
        horizon = horizon.max(end);
        transfers.push((start, app.launch_down, app.launch_up));
        if let Some(interval) = app.periodic_interval {
            if !interval.is_zero() {
                let mut t = start + interval;
                while t < end {
                    transfers.push((t, app.periodic_down, app.periodic_up));
                    t += interval;
                }
            }
        }
        if let Some(ads) = ads {
            transfers.push((start, ads.ad_down, ads.ad_up));
            if !ads.refresh.is_zero() {
                let mut t = start + ads.refresh;
                while t < end {
                    transfers.push((t, ads.ad_down, ads.ad_up));
                    t += ads.refresh;
                }
            }
        }
    }
    transfers.sort_by_key(|&(t, _, _)| t);
    let mut radio = Radio::new(radio_profile.clone());
    for (t, down, up) in transfers {
        radio.transfer(t, down, up);
    }
    radio.finish(horizon + radio_profile.tail_duration())
}

/// Generates deterministic, evenly spaced foreground sessions for an app
/// profile: `sessions_per_day` sessions per day inside a 08:00–23:00 waking
/// window, for `days` days.
///
/// The motivation study reports per-app *averages*, so a deterministic
/// schedule is sufficient; the full-system experiments use the stochastic
/// generator in `adpf-traces` instead.
pub fn synth_sessions(profile: &AppProfile, days: u32) -> Vec<(SimTime, SimDuration)> {
    let mut out = Vec::new();
    let window_start = SimDuration::from_hours(8);
    let window = SimDuration::from_hours(15);
    let n = profile.sessions_per_day.max(1) as u64;
    for day in 0..days as u64 {
        for k in 0..n {
            let offset = window.mul_f64((k as f64 + 0.5) / n as f64);
            let start = SimTime::from_days(day) + window_start + offset;
            out.push((start, profile.mean_session));
        }
    }
    out
}

/// The synthetic top-15 free app catalog used by experiment E1.
///
/// Categories and traffic shapes mirror the composition of 2012-era top
/// free app charts: mostly games with launch-only traffic, plus social,
/// news, weather, and streaming apps with periodic content refreshes.
pub fn top_apps() -> Vec<AppProfile> {
    let s = SimDuration::from_secs;
    vec![
        AppProfile {
            name: "BirdToss",
            category: "games",
            sessions_per_day: 6,
            mean_session: s(420),
            traffic: AppTrafficModel::launch_only(60 * 1024, 2 * 1024),
        },
        AppProfile {
            name: "GemSwap",
            category: "games",
            sessions_per_day: 5,
            mean_session: s(360),
            traffic: AppTrafficModel::launch_only(40 * 1024, 1024),
        },
        AppProfile {
            name: "RopeCut",
            category: "games",
            sessions_per_day: 4,
            mean_session: s(300),
            traffic: AppTrafficModel::launch_only(30 * 1024, 1024),
        },
        AppProfile {
            name: "WordChums",
            category: "games",
            sessions_per_day: 8,
            mean_session: s(180),
            traffic: AppTrafficModel {
                launch_down: 25 * 1024,
                launch_up: 2 * 1024,
                periodic_down: 4 * 1024,
                periodic_up: 2 * 1024,
                periodic_interval: Some(s(60)),
            },
        },
        AppProfile {
            name: "DoodleRun",
            category: "games",
            sessions_per_day: 5,
            mean_session: s(240),
            traffic: AppTrafficModel::launch_only(20 * 1024, 1024),
        },
        AppProfile {
            name: "SocialBook",
            category: "social",
            sessions_per_day: 12,
            mean_session: s(150),
            traffic: AppTrafficModel {
                launch_down: 150 * 1024,
                launch_up: 8 * 1024,
                periodic_down: 40 * 1024,
                periodic_up: 4 * 1024,
                periodic_interval: Some(s(75)),
            },
        },
        AppProfile {
            name: "Chirper",
            category: "social",
            sessions_per_day: 10,
            mean_session: s(120),
            traffic: AppTrafficModel {
                launch_down: 80 * 1024,
                launch_up: 4 * 1024,
                periodic_down: 25 * 1024,
                periodic_up: 2 * 1024,
                periodic_interval: Some(s(70)),
            },
        },
        AppProfile {
            name: "PicFilter",
            category: "social",
            sessions_per_day: 4,
            mean_session: s(200),
            traffic: AppTrafficModel {
                launch_down: 120 * 1024,
                launch_up: 60 * 1024,
                periodic_down: 40 * 1024,
                periodic_up: 10 * 1024,
                periodic_interval: Some(s(50)),
            },
        },
        AppProfile {
            name: "DailyNews",
            category: "news",
            sessions_per_day: 3,
            mean_session: s(300),
            traffic: AppTrafficModel {
                launch_down: 200 * 1024,
                launch_up: 4 * 1024,
                periodic_down: 60 * 1024,
                periodic_up: 2 * 1024,
                periodic_interval: Some(s(90)),
            },
        },
        AppProfile {
            name: "SkyWeather",
            category: "weather",
            sessions_per_day: 4,
            mean_session: s(60),
            traffic: AppTrafficModel {
                launch_down: 30 * 1024,
                launch_up: 1024,
                periodic_down: 10 * 1024,
                periodic_up: 512,
                periodic_interval: Some(s(60)),
            },
        },
        AppProfile {
            name: "TuneStream",
            category: "music",
            sessions_per_day: 2,
            mean_session: s(600),
            traffic: AppTrafficModel {
                launch_down: 100 * 1024,
                launch_up: 2 * 1024,
                periodic_down: 250 * 1024,
                periodic_up: 2 * 1024,
                periodic_interval: Some(s(120)),
            },
        },
        AppProfile {
            name: "FlashLightPro",
            category: "tools",
            sessions_per_day: 3,
            mean_session: s(45),
            traffic: AppTrafficModel::launch_only(4 * 1024, 512),
        },
        AppProfile {
            name: "BarScan",
            category: "tools",
            sessions_per_day: 2,
            mean_session: s(90),
            traffic: AppTrafficModel {
                launch_down: 10 * 1024,
                launch_up: 2 * 1024,
                periodic_down: 15 * 1024,
                periodic_up: 4 * 1024,
                periodic_interval: Some(s(45)),
            },
        },
        AppProfile {
            name: "QuizMania",
            category: "games",
            sessions_per_day: 4,
            mean_session: s(270),
            traffic: AppTrafficModel {
                launch_down: 15 * 1024,
                launch_up: 1024,
                periodic_down: 3 * 1024,
                periodic_up: 1024,
                periodic_interval: Some(s(75)),
            },
        },
        AppProfile {
            name: "SolitairePlus",
            category: "games",
            sessions_per_day: 6,
            mean_session: s(330),
            traffic: AppTrafficModel::launch_only(8 * 1024, 512),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profiles;

    #[test]
    fn catalog_has_fifteen_apps() {
        let apps = top_apps();
        assert_eq!(apps.len(), 15);
        assert!(apps.iter().any(|a| a.category == "games"));
        assert!(apps.iter().any(|a| a.traffic.periodic_interval.is_some()));
    }

    #[test]
    fn synth_sessions_stay_in_waking_window() {
        let apps = top_apps();
        let sessions = synth_sessions(&apps[0], 7);
        assert_eq!(sessions.len(), 7 * apps[0].sessions_per_day as usize);
        for &(start, _) in &sessions {
            let h = start.hour_of_day();
            assert!((8..23).contains(&h), "session at hour {h}");
        }
    }

    #[test]
    fn ads_add_energy() {
        let apps = top_apps();
        let sessions = synth_sessions(&apps[0], 1);
        let audit = audit_app(
            &sessions,
            &apps[0].traffic,
            &AdTrafficModel::default(),
            &profiles::umts_3g(),
            &DeviceBaseline::default(),
        );
        assert!(audit.ad_comm_j() > 0.0);
        assert!(audit.ad_comm_share() > 0.0 && audit.ad_comm_share() < 1.0);
        assert!(audit.ad_total_share() < audit.ad_comm_share());
    }

    #[test]
    fn launch_only_game_has_ad_dominated_comm_energy() {
        // A game with tiny launch traffic and a 5-minute session shows ~10
        // ads; the ads' tails dominate its communication energy.
        let app = AppTrafficModel::launch_only(8 * 1024, 512);
        let sessions = vec![(SimTime::from_hours(10), SimDuration::from_secs(300))];
        let audit = audit_app(
            &sessions,
            &app,
            &AdTrafficModel::default(),
            &profiles::umts_3g(),
            &DeviceBaseline::default(),
        );
        assert!(
            audit.ad_comm_share() > 0.6,
            "share {}",
            audit.ad_comm_share()
        );
    }

    #[test]
    fn catalog_average_matches_paper_band() {
        // The calibration the paper reports: ads are ~65% of communication
        // energy and ~23% of total energy averaged over the top-15 apps.
        let radio = profiles::umts_3g();
        let ads = AdTrafficModel::default();
        let baseline = DeviceBaseline::default();
        let mut comm_shares = Vec::new();
        let mut total_shares = Vec::new();
        for app in top_apps() {
            let sessions = synth_sessions(&app, 3);
            let audit = audit_app(&sessions, &app.traffic, &ads, &radio, &baseline);
            comm_shares.push(audit.ad_comm_share());
            total_shares.push(audit.ad_total_share());
        }
        let comm_avg = comm_shares.iter().sum::<f64>() / comm_shares.len() as f64;
        let total_avg = total_shares.iter().sum::<f64>() / total_shares.len() as f64;
        assert!(
            (0.45..0.85).contains(&comm_avg),
            "comm share average {comm_avg}"
        );
        assert!(
            (0.10..0.40).contains(&total_avg),
            "total share average {total_avg}"
        );
    }

    #[test]
    fn no_sessions_audit_is_zero() {
        let audit = audit_app(
            &[],
            &AppTrafficModel::launch_only(1024, 128),
            &AdTrafficModel::default(),
            &profiles::umts_3g(),
            &DeviceBaseline::default(),
        );
        assert_eq!(audit.ad_comm_share(), 0.0);
        assert_eq!(audit.total_j(), 0.0);
    }
}
