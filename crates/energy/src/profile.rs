//! Radio power profiles.

use adpf_desim::SimDuration;

/// One post-transfer tail phase: the radio stays at `power_mw` for
/// `duration` after the last activity before falling to the next phase (or
/// to idle after the final phase).
///
/// 3G UMTS has two phases (DCH inactivity tail, then FACH tail); LTE has a
/// single connected-mode tail (short DRX modeled as an average power); WiFi
/// has a brief high-power dwell before returning to PSM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailPhase {
    /// Length of the phase.
    pub duration: SimDuration,
    /// Average power draw during the phase, in milliwatts.
    pub power_mw: f64,
}

/// A radio technology's power/latency parameters.
///
/// All powers are *marginal* over device idle, i.e. the extra draw caused by
/// the radio; device baseline (screen, CPU) is accounted separately by the
/// [`crate::audit`] module.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioProfile {
    /// Human-readable name ("3G", "LTE", "WiFi").
    pub name: &'static str,
    /// Time to promote from fully idle to transfer-capable.
    pub promotion_delay: SimDuration,
    /// Average power during promotion, in milliwatts.
    pub promotion_power_mw: f64,
    /// Average power while actively transferring, in milliwatts.
    pub transfer_power_mw: f64,
    /// Downlink goodput in bytes per second.
    pub downlink_bps: f64,
    /// Uplink goodput in bytes per second.
    pub uplink_bps: f64,
    /// Fixed per-transfer network latency (RTT + server time) added to the
    /// byte-transmission time.
    pub per_transfer_latency: SimDuration,
    /// Post-transfer tail phases, ordered from first (highest power) to
    /// last.
    pub tail_phases: Vec<TailPhase>,
}

impl RadioProfile {
    /// Total length of the tail after a transfer.
    pub fn tail_duration(&self) -> SimDuration {
        self.tail_phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// Energy of one full (uninterrupted) tail, in joules.
    pub fn full_tail_energy_j(&self) -> f64 {
        self.tail_phases
            .iter()
            .map(|p| p.power_mw * p.duration.as_secs_f64() / 1_000.0)
            .sum()
    }

    /// Energy of promotion from idle, in joules.
    pub fn promotion_energy_j(&self) -> f64 {
        self.promotion_power_mw * self.promotion_delay.as_secs_f64() / 1_000.0
    }

    /// Time to move `down_bytes` + `up_bytes` once the radio is
    /// transfer-capable (byte time plus fixed latency).
    pub fn transfer_time(&self, down_bytes: u64, up_bytes: u64) -> SimDuration {
        let secs = down_bytes as f64 / self.downlink_bps + up_bytes as f64 / self.uplink_bps;
        self.per_transfer_latency + SimDuration::from_secs_f64(secs)
    }

    /// Energy spent in the tail when the radio goes idle for `gap` after a
    /// transfer, in joules. Saturates at [`Self::full_tail_energy_j`] once
    /// the gap covers the whole tail.
    pub fn tail_energy_for_gap_j(&self, gap: SimDuration) -> f64 {
        let mut remaining = gap;
        let mut energy = 0.0;
        for p in &self.tail_phases {
            if remaining.is_zero() {
                break;
            }
            let t = remaining.min(p.duration);
            energy += p.power_mw * t.as_secs_f64() / 1_000.0;
            remaining = SimDuration::from_millis(
                remaining.as_millis().saturating_sub(p.duration.as_millis()),
            );
        }
        energy
    }
}

/// Literature-calibrated radio profiles.
///
/// The absolute numbers below are representative of the 2012-era handsets
/// the paper measured; the reproduction's claims are ratios (energy *saved*
/// by batching), which are insensitive to modest constant changes — see
/// DESIGN.md's substitution table.
pub mod profiles {
    use super::{RadioProfile, TailPhase};
    use adpf_desim::SimDuration;

    /// Resolves a CLI profile name (`3g`, `lte`, `wifi`). The canonical
    /// name set shared by the `simulate` and `serve` binaries.
    pub fn by_name(name: &str) -> Result<RadioProfile, String> {
        Ok(match name {
            "3g" => umts_3g(),
            "lte" => lte(),
            "wifi" => wifi(),
            other => return Err(format!("unknown radio `{other}`")),
        })
    }

    /// 3G UMTS: IDLE → DCH promotion ~2 s; DCH tail ~5 s at ~800 mW, then
    /// FACH tail ~12 s at ~460 mW (Balasubramanian et al., IMC 2009).
    pub fn umts_3g() -> RadioProfile {
        RadioProfile {
            name: "3G",
            promotion_delay: SimDuration::from_millis(2_000),
            promotion_power_mw: 550.0,
            transfer_power_mw: 800.0,
            downlink_bps: 250_000.0, // ~2 Mbit/s goodput.
            uplink_bps: 80_000.0,
            per_transfer_latency: SimDuration::from_millis(350),
            tail_phases: vec![
                TailPhase {
                    duration: SimDuration::from_millis(5_000),
                    power_mw: 800.0,
                },
                TailPhase {
                    duration: SimDuration::from_millis(12_000),
                    power_mw: 460.0,
                },
            ],
        }
    }

    /// LTE: fast promotion (~260 ms), high transfer power, single long
    /// connected-mode tail ~11.6 s at ~1060 mW (Huang et al., MobiSys 2012).
    pub fn lte() -> RadioProfile {
        RadioProfile {
            name: "LTE",
            promotion_delay: SimDuration::from_millis(260),
            promotion_power_mw: 1_200.0,
            transfer_power_mw: 1_210.0,
            downlink_bps: 1_500_000.0,
            uplink_bps: 700_000.0,
            per_transfer_latency: SimDuration::from_millis(70),
            tail_phases: vec![TailPhase {
                duration: SimDuration::from_millis(11_600),
                power_mw: 1_060.0,
            }],
        }
    }

    /// WiFi with power-save mode: negligible promotion, short post-transfer
    /// dwell before the NIC returns to PSM.
    pub fn wifi() -> RadioProfile {
        RadioProfile {
            name: "WiFi",
            promotion_delay: SimDuration::from_millis(80),
            promotion_power_mw: 400.0,
            transfer_power_mw: 700.0,
            downlink_bps: 2_500_000.0,
            uplink_bps: 1_500_000.0,
            per_transfer_latency: SimDuration::from_millis(40),
            tail_phases: vec![TailPhase {
                duration: SimDuration::from_millis(240),
                power_mw: 400.0,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_duration_sums_phases() {
        let p = profiles::umts_3g();
        assert_eq!(p.tail_duration(), SimDuration::from_secs(17));
    }

    #[test]
    fn full_tail_energy_matches_hand_computation() {
        let p = profiles::umts_3g();
        // 800 mW * 5 s + 460 mW * 12 s = 4.0 J + 5.52 J.
        assert!((p.full_tail_energy_j() - 9.52).abs() < 1e-9);
    }

    #[test]
    fn partial_tail_energy_saturates() {
        let p = profiles::umts_3g();
        let short = p.tail_energy_for_gap_j(SimDuration::from_secs(2));
        assert!((short - 1.6).abs() < 1e-9); // 800 mW * 2 s.
        let mid = p.tail_energy_for_gap_j(SimDuration::from_secs(10));
        // 800 mW * 5 s + 460 mW * 5 s = 4.0 + 2.3.
        assert!((mid - 6.3).abs() < 1e-9);
        let long = p.tail_energy_for_gap_j(SimDuration::from_secs(300));
        assert!((long - p.full_tail_energy_j()).abs() < 1e-12);
        assert_eq!(p.tail_energy_for_gap_j(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = profiles::umts_3g();
        let small = p.transfer_time(1_000, 100);
        let large = p.transfer_time(1_000_000, 100);
        assert!(large > small);
        assert!(small >= p.per_transfer_latency);
        // 1 MB at 250 KB/s is ~4 s of byte time.
        let secs = large.as_secs_f64();
        assert!(secs > 4.0 && secs < 4.8, "got {secs}");
    }

    #[test]
    fn lte_tail_dominates_promotion() {
        let p = profiles::lte();
        assert!(p.full_tail_energy_j() > 10.0 * p.promotion_energy_j());
    }

    #[test]
    fn wifi_tail_is_tiny() {
        let w = profiles::wifi();
        let g = profiles::umts_3g();
        assert!(w.full_tail_energy_j() < g.full_tail_energy_j() / 20.0);
    }
}
