//! Battery-life conversions.
//!
//! The paper motivates everything in battery terms ("ads shorten your
//! battery life by ..."), so reports need a way to turn joules into hours
//! and percent-of-battery figures.

use crate::radio::EnergyBreakdown;

/// A device battery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryModel {
    /// Usable capacity in joules.
    pub capacity_j: f64,
}

impl BatteryModel {
    /// Builds a battery from a milliamp-hour rating at the given nominal
    /// voltage.
    ///
    /// # Panics
    ///
    /// Panics on non-positive ratings — battery specs are compile-time
    /// constants in this codebase.
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        assert!(
            mah > 0.0 && volts > 0.0,
            "battery spec must be positive, got {mah} mAh @ {volts} V"
        );
        // mAh * V = mWh; * 3.6 = joules.
        Self {
            capacity_j: mah * volts * 3.6,
        }
    }

    /// A 2012-era smartphone battery (~1,450 mAh at 3.7 V), matching the
    /// handsets of the paper's measurement study.
    pub fn smartphone_2012() -> Self {
        Self::from_mah(1_450.0, 3.7)
    }

    /// Fraction of the battery consumed by the given energy.
    pub fn fraction_used(&self, energy_j: f64) -> f64 {
        (energy_j / self.capacity_j).max(0.0)
    }

    /// Fraction of the battery one client's ad traffic burns per day.
    pub fn daily_ad_drain(&self, energy: &EnergyBreakdown, users: u32, days: u32) -> f64 {
        if users == 0 || days == 0 {
            return 0.0;
        }
        self.fraction_used(energy.total_j() / (users as f64 * days as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion_is_correct() {
        // 1,450 mAh * 3.7 V = 5,365 mWh = 19,314 J.
        let b = BatteryModel::smartphone_2012();
        assert!((b.capacity_j - 19_314.0).abs() < 1.0);
    }

    #[test]
    fn fractions_scale_linearly() {
        let b = BatteryModel::from_mah(1_000.0, 3.7);
        let half = b.capacity_j / 2.0;
        assert!((b.fraction_used(half) - 0.5).abs() < 1e-12);
        assert_eq!(b.fraction_used(-1.0), 0.0);
    }

    #[test]
    fn daily_drain_divides_by_population() {
        let b = BatteryModel::from_mah(1_000.0, 3.6);
        let e = EnergyBreakdown {
            tail_j: b.capacity_j * 10.0,
            ..EnergyBreakdown::default()
        };
        // 10 battery-fulls across 10 users over 10 days = 10% per user-day.
        assert!((b.daily_ad_drain(&e, 10, 10) - 0.1).abs() < 1e-12);
        assert_eq!(b.daily_ad_drain(&e, 0, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_spec_panics() {
        let _ = BatteryModel::from_mah(0.0, 3.7);
    }
}
