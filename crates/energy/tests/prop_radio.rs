//! Property-based tests for the radio energy model.

use adpf_desim::{SimDuration, SimTime};
use adpf_energy::{profiles, Radio};
use proptest::prelude::*;

proptest! {
    /// Tail energy for a gap is monotone in the gap and saturates at the
    /// full tail.
    #[test]
    fn tail_energy_monotone(gap_a in 0u64..40_000, gap_b in 0u64..40_000) {
        let p = profiles::umts_3g();
        let (lo, hi) = if gap_a <= gap_b { (gap_a, gap_b) } else { (gap_b, gap_a) };
        let e_lo = p.tail_energy_for_gap_j(SimDuration::from_millis(lo));
        let e_hi = p.tail_energy_for_gap_j(SimDuration::from_millis(hi));
        prop_assert!(e_lo <= e_hi + 1e-12);
        prop_assert!(e_hi <= p.full_tail_energy_j() + 1e-12);
    }

    /// Widening the gap between two transfers never reduces total energy.
    #[test]
    fn wider_gaps_cost_no_less(gap_a in 100u64..60_000, gap_b in 100u64..60_000) {
        let (lo, hi) = if gap_a <= gap_b { (gap_a, gap_b) } else { (gap_b, gap_a) };
        let run = |gap_ms: u64| {
            let mut r = Radio::new(profiles::umts_3g());
            let rec = r.transfer(SimTime::ZERO, 4_096, 512);
            r.transfer(rec.end + SimDuration::from_millis(gap_ms), 4_096, 512);
            r.finish(SimTime::from_hours(2)).total_j()
        };
        prop_assert!(run(lo) <= run(hi) + 1e-9);
    }

    /// More bytes never cost less energy, all else equal.
    #[test]
    fn energy_monotone_in_bytes(small in 1u64..100_000, extra in 0u64..100_000) {
        for p in [profiles::umts_3g(), profiles::lte(), profiles::wifi()] {
            let run = |bytes: u64| {
                let mut r = Radio::new(p.clone());
                r.transfer(SimTime::ZERO, bytes, 128);
                r.finish(SimTime::from_hours(1)).total_j()
            };
            prop_assert!(run(small) <= run(small + extra) + 1e-9);
        }
    }

    /// The per-transfer marginal energies plus the final tail equal the
    /// final breakdown total.
    #[test]
    fn marginal_energies_are_consistent(
        gaps in prop::collection::vec(0u64..50_000, 1..30),
    ) {
        let mut r = Radio::new(profiles::lte());
        let mut t = SimTime::ZERO;
        let mut marginal = 0.0;
        for &g in &gaps {
            t += SimDuration::from_millis(g);
            marginal += r.transfer(t, 2_048, 256).energy_j;
        }
        let before_flush = marginal;
        let total = r.finish(t + SimDuration::from_hours(1)).total_j();
        // The final tail is the only energy not charged to a transfer.
        let final_tail = r.profile().full_tail_energy_j();
        prop_assert!(total >= before_flush - 1e-9);
        prop_assert!(total <= before_flush + final_tail + 1e-9);
    }
}
