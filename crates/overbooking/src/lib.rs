//! Overbooking: probabilistic replication of pre-sold ads across clients.
//!
//! Prefetching inverts the usual order of mobile advertising: an ad is sold
//! *before* any client is known to have a slot for it. Client predictions
//! are unreliable, so a pre-sold ad placed on a single client may never be
//! shown before its deadline (an **SLA violation**, which costs advertiser
//! trust and a refund). The paper's remedy is the overbooking model used by
//! airlines in reverse: place each sold ad on *several* clients, sized so
//! the probability that at least one of them shows it in time meets the SLA
//! target — while keeping the expected number of duplicate displays (shown
//! more often than paid for, i.e. **revenue loss**) as small as possible.
//!
//! - [`availability`]: per-client display probabilities from predicted slot
//!   rates (Poisson tails, discounted by ads already queued on the client).
//! - [`planner`]: replica-set construction policies (greedy
//!   availability-ordered, fixed factor, single-copy).
//! - [`estimator`]: closed-form SLA-violation and duplicate-display
//!   estimates for a chosen replica set.
//! - [`reconcile`]: the runtime protocol that cancels outstanding replicas
//!   once one client reports the first display, bounding duplicates to the
//!   sync delay.
//!
//! # Examples
//!
//! ```
//! use adpf_overbooking::availability::ClientAvailability;
//! use adpf_overbooking::planner::{GreedyPlanner, ReplicationPlanner};
//!
//! let candidates = vec![
//!     ClientAvailability { client: 0, prob: 0.6 },
//!     ClientAvailability { client: 1, prob: 0.5 },
//!     ClientAvailability { client: 2, prob: 0.4 },
//! ];
//! let plan = GreedyPlanner.plan(&candidates, 0.9, 8);
//! assert!(plan.success_prob >= 0.85);
//! assert!(plan.clients.len() >= 2, "one 0.6 client cannot meet a 0.9 SLA");
//! ```

pub mod availability;
pub mod estimator;
pub mod planner;
pub mod reconcile;

pub use availability::{display_probability, poisson_tail, ClientAvailability};
pub use estimator::{expected_duplicates, sla_violation_prob};
pub use planner::{
    FixedFactorPlanner, GreedyPlanner, NoReplicationPlanner, Plan, ReplicationPlanner,
    SingleCopyPlanner,
};
pub use reconcile::{DisplayDisposition, ReplicaTracker, TrackerStats};
