//! Per-client display-probability models.
//!
//! Two evaluation paths compute the same math:
//!
//! - the closed-form functions ([`poisson_tail`],
//!   [`display_probability_bursty`]) restart the Poisson summation on
//!   every call — simple, and the reference the tests check against;
//! - the incremental path ([`PoissonTailSeries`], [`AvailabilityCache`])
//!   memoizes the running pmf/cdf per distinct `lambda` so the hot
//!   placement loop extends an existing series instead of recomputing
//!   `exp(-lambda)` and the term products from scratch.
//!
//! The incremental path is **bit-identical** to the closed form: it
//! performs the same floating-point operations in the same order, merely
//! caching prefixes. That property is load-bearing — the simulator's
//! golden determinism suite compares full reports across code paths.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A candidate client for holding a replica of a pre-sold ad.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientAvailability {
    /// Client index (simulator-level id).
    pub client: u32,
    /// Probability the client shows this ad before its deadline.
    pub prob: f64,
}

/// Upper tail of the Poisson distribution: `P(X >= k)` for `X ~
/// Poisson(lambda)`.
///
/// Computed as `1 - sum_{j<k} pmf(j)` with an iteratively built pmf, which
/// is exact and stable for the small `k` (queue depths) used here.
pub fn poisson_tail(k: u32, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if k == 0 {
        return 1.0;
    }
    let mut pmf = (-lambda).exp(); // P(X = 0).
    let mut cdf = pmf;
    for j in 1..k {
        pmf *= lambda / j as f64;
        cdf += pmf;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Probability a client displays *one more* pre-sold ad before the
/// deadline, given `expected_slots` predicted slots in that window and
/// `queued_ahead` ads already committed to the client.
///
/// Slot arrivals within the deadline window are modeled as Poisson with
/// mean `expected_slots`; the new ad is shown iff the client produces at
/// least `queued_ahead + 1` slots. This captures the two effects the
/// planner must respect: clients with low predicted demand are poor
/// replica holders, and even a heavy user stops being useful once its
/// queue is full.
pub fn display_probability(expected_slots: f64, queued_ahead: u32) -> f64 {
    poisson_tail(queued_ahead + 1, expected_slots.max(0.0))
}

/// Display probability under *bursty* demand: slots arrive in sessions.
///
/// Plain Poisson slot arrivals badly overestimate availability when slots
/// cluster — a client with 20 expected slots in a window usually gets them
/// from ~4 sessions, and `P(no session)` is far larger than
/// `P(no slot | independent slots)`. Model sessions as Poisson with mean
/// `dispersion * expected_slots / slots_per_session` (the `dispersion`
/// factor, in `(0, 1]`, absorbs day-level overdispersion: users take whole
/// days off more often than a Poisson process would) and require enough
/// sessions to cover the queue plus this ad.
pub fn display_probability_bursty(
    expected_slots: f64,
    queued_ahead: u32,
    slots_per_session: f64,
    dispersion: f64,
) -> f64 {
    let l = slots_per_session.max(1.0);
    let lambda_sessions = dispersion.clamp(0.0, 1.0) * expected_slots.max(0.0) / l;
    let needed_sessions = ((queued_ahead as f64 + 1.0) / l).ceil() as u32;
    poisson_tail(needed_sessions.max(1), lambda_sessions)
}

/// Incrementally evaluated upper Poisson tails at one fixed `lambda`.
///
/// [`poisson_tail`] rebuilds `pmf(0..k)` on every call; this type keeps
/// the running pmf and the cdf prefix sums, so `tail(k)` extends the
/// series only past the largest `k` seen so far and answers smaller `k`
/// from the stored prefixes. The recurrence (`pmf *= lambda / j;
/// cdf += pmf`) is the closed form's own loop, executed once — results
/// are bit-identical to [`poisson_tail`] for every `(k, lambda)`.
#[derive(Debug, Clone)]
pub struct PoissonTailSeries {
    lambda: f64,
    /// `pmf(j)` for the last accumulated term `j = cdfs.len() - 1`.
    pmf: f64,
    /// `cdfs[j] = P(X <= j)`, grown lazily.
    cdfs: Vec<f64>,
}

impl PoissonTailSeries {
    /// Starts a series for `lambda` (computes `exp(-lambda)` once).
    pub fn new(lambda: f64) -> Self {
        if lambda <= 0.0 {
            return Self {
                lambda,
                pmf: 0.0,
                cdfs: Vec::new(),
            };
        }
        let pmf = (-lambda).exp();
        Self {
            lambda,
            pmf,
            cdfs: vec![pmf],
        }
    }

    /// The series' `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// `P(X >= k)` for `X ~ Poisson(lambda)`; bit-identical to
    /// [`poisson_tail`]`(k, lambda)`.
    pub fn tail(&mut self, k: u32) -> f64 {
        if self.lambda <= 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if k == 0 {
            return 1.0;
        }
        while self.cdfs.len() < k as usize {
            let j = self.cdfs.len() as f64; // Next pmf term index.
            self.pmf *= self.lambda / j;
            let cdf = self.cdfs.last().expect("non-empty for lambda > 0") + self.pmf;
            self.cdfs.push(cdf);
        }
        (1.0 - self.cdfs[k as usize - 1]).clamp(0.0, 1.0)
    }
}

/// Multiplicative mixer for `f64`-bit cache keys: the default SipHash
/// would cost more than the tail math it guards.
#[derive(Debug, Default, Clone, Copy)]
pub struct BitsHasher(u64);

impl Hasher for BitsHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Memoizing evaluator for [`display_probability_bursty`].
///
/// The placement hot loop evaluates availability for dozens of
/// candidates per sale, and sells several ads per sync against the same
/// candidate set — the same session-arrival rate `lambda` recurs many
/// times with only the queue depth varying. The cache keys a
/// [`PoissonTailSeries`] on the *exact bit pattern* of the derived
/// `lambda`, so `exp(-lambda)` is paid once per distinct rate and deeper
/// queue depths extend the shared series.
///
/// Keys are exact (no lossy quantization): a coarser key would return
/// the tail of a *nearby* lambda, silently changing placement decisions
/// and breaking the bit-for-bit determinism contract the golden report
/// suite enforces. Full `f64`-bit keying makes the cache a pure
/// memoization — every returned value is exactly what the closed form
/// would produce.
#[derive(Debug)]
pub struct AvailabilityCache {
    dispersion: f64,
    series: HashMap<u64, PoissonTailSeries, BuildHasherDefault<BitsHasher>>,
    hits: u64,
    misses: u64,
}

impl AvailabilityCache {
    /// Bound on cached distinct lambdas; the map is cleared when it
    /// fills. Reuse is concentrated within a sync (tens of candidates,
    /// a handful of sales), so a modest bound loses nothing.
    const MAX_ENTRIES: usize = 4096;

    /// Creates a cache evaluating at the given day-level `dispersion`
    /// (see [`display_probability_bursty`]).
    pub fn new(dispersion: f64) -> Self {
        Self {
            dispersion,
            series: HashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Memoized [`display_probability_bursty`] at the cache's
    /// dispersion; bit-identical to the closed form.
    pub fn display_probability_bursty(
        &mut self,
        expected_slots: f64,
        queued_ahead: u32,
        slots_per_session: f64,
    ) -> f64 {
        let l = slots_per_session.max(1.0);
        let lambda_sessions = self.dispersion.clamp(0.0, 1.0) * expected_slots.max(0.0) / l;
        let needed_sessions = (((queued_ahead as f64 + 1.0) / l).ceil() as u32).max(1);
        if lambda_sessions <= 0.0 {
            // needed_sessions >= 1, so the closed form returns 0 here
            // without touching the series.
            return 0.0;
        }
        if self.series.len() >= Self::MAX_ENTRIES {
            self.series.clear();
        }
        match self.series.entry(lambda_sessions.to_bits()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                self.hits += 1;
                e.get_mut().tail(needed_sessions)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                v.insert(PoissonTailSeries::new(lambda_sessions))
                    .tail(needed_sessions)
            }
        }
    }

    /// `(hits, misses)` counters — the cache's effectiveness witness.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_at_zero_is_one() {
        assert_eq!(poisson_tail(0, 5.0), 1.0);
        assert_eq!(poisson_tail(0, 0.0), 1.0);
    }

    #[test]
    fn tail_with_zero_lambda() {
        assert_eq!(poisson_tail(1, 0.0), 0.0);
        assert_eq!(poisson_tail(5, 0.0), 0.0);
    }

    #[test]
    fn tail_k1_matches_closed_form() {
        for &l in &[0.1f64, 0.5, 1.0, 3.0, 10.0] {
            let expect = 1.0 - (-l).exp();
            assert!((poisson_tail(1, l) - expect).abs() < 1e-12, "lambda {l}");
        }
    }

    #[test]
    fn tail_is_monotone_in_k_and_lambda() {
        for k in 1..10u32 {
            assert!(poisson_tail(k, 4.0) >= poisson_tail(k + 1, 4.0));
        }
        for &pair in &[(0.5, 1.0), (1.0, 2.0), (2.0, 8.0)] {
            assert!(poisson_tail(3, pair.1) >= poisson_tail(3, pair.0));
        }
    }

    #[test]
    fn tail_matches_monte_carlo() {
        use adpf_stats::dist::{Distribution, Poisson};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let lambda = 2.5;
        let d = Poisson::new(lambda).unwrap();
        let n = 200_000;
        for k in [1u32, 2, 4] {
            let hits = (0..n).filter(|_| d.sample(&mut rng) >= k as u64).count();
            let mc = hits as f64 / n as f64;
            let analytic = poisson_tail(k, lambda);
            assert!(
                (mc - analytic).abs() < 0.005,
                "k {k}: mc {mc} vs {analytic}"
            );
        }
    }

    #[test]
    fn bursty_availability_is_below_poisson() {
        // Same expected slots, but clustered into 4-slot sessions: the
        // chance of at least one display drops sharply.
        let poisson = display_probability(8.0, 0);
        let bursty = display_probability_bursty(8.0, 0, 4.0, 1.0);
        assert!(bursty < poisson, "bursty {bursty} vs poisson {poisson}");
        // Equivalent closed form: P(>=1 session) with lambda = 2.
        assert!((bursty - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn bursty_dispersion_discounts() {
        let full = display_probability_bursty(8.0, 0, 4.0, 1.0);
        let half = display_probability_bursty(8.0, 0, 4.0, 0.5);
        assert!(half < full);
        assert_eq!(display_probability_bursty(8.0, 0, 4.0, 0.0), 0.0);
    }

    #[test]
    fn bursty_queue_needs_more_sessions() {
        // Queue of 4 with 4-slot sessions needs a second session.
        let shallow = display_probability_bursty(8.0, 0, 4.0, 1.0);
        let deep = display_probability_bursty(8.0, 4, 4.0, 1.0);
        assert!(deep < shallow);
        assert!((deep - poisson_tail(2, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn queueing_reduces_display_probability() {
        let free = display_probability(3.0, 0);
        let busy = display_probability(3.0, 3);
        assert!(free > busy);
        assert!(display_probability(0.0, 0) == 0.0);
        assert_eq!(display_probability(-1.0, 0), 0.0);
    }
}
