//! Per-client display-probability models.

/// A candidate client for holding a replica of a pre-sold ad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientAvailability {
    /// Client index (simulator-level id).
    pub client: u32,
    /// Probability the client shows this ad before its deadline.
    pub prob: f64,
}

/// Upper tail of the Poisson distribution: `P(X >= k)` for `X ~
/// Poisson(lambda)`.
///
/// Computed as `1 - sum_{j<k} pmf(j)` with an iteratively built pmf, which
/// is exact and stable for the small `k` (queue depths) used here.
pub fn poisson_tail(k: u32, lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if k == 0 {
        return 1.0;
    }
    let mut pmf = (-lambda).exp(); // P(X = 0).
    let mut cdf = pmf;
    for j in 1..k {
        pmf *= lambda / j as f64;
        cdf += pmf;
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// Probability a client displays *one more* pre-sold ad before the
/// deadline, given `expected_slots` predicted slots in that window and
/// `queued_ahead` ads already committed to the client.
///
/// Slot arrivals within the deadline window are modeled as Poisson with
/// mean `expected_slots`; the new ad is shown iff the client produces at
/// least `queued_ahead + 1` slots. This captures the two effects the
/// planner must respect: clients with low predicted demand are poor
/// replica holders, and even a heavy user stops being useful once its
/// queue is full.
pub fn display_probability(expected_slots: f64, queued_ahead: u32) -> f64 {
    poisson_tail(queued_ahead + 1, expected_slots.max(0.0))
}

/// Display probability under *bursty* demand: slots arrive in sessions.
///
/// Plain Poisson slot arrivals badly overestimate availability when slots
/// cluster — a client with 20 expected slots in a window usually gets them
/// from ~4 sessions, and `P(no session)` is far larger than
/// `P(no slot | independent slots)`. Model sessions as Poisson with mean
/// `dispersion * expected_slots / slots_per_session` (the `dispersion`
/// factor, in `(0, 1]`, absorbs day-level overdispersion: users take whole
/// days off more often than a Poisson process would) and require enough
/// sessions to cover the queue plus this ad.
pub fn display_probability_bursty(
    expected_slots: f64,
    queued_ahead: u32,
    slots_per_session: f64,
    dispersion: f64,
) -> f64 {
    let l = slots_per_session.max(1.0);
    let lambda_sessions = dispersion.clamp(0.0, 1.0) * expected_slots.max(0.0) / l;
    let needed_sessions = ((queued_ahead as f64 + 1.0) / l).ceil() as u32;
    poisson_tail(needed_sessions.max(1), lambda_sessions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_at_zero_is_one() {
        assert_eq!(poisson_tail(0, 5.0), 1.0);
        assert_eq!(poisson_tail(0, 0.0), 1.0);
    }

    #[test]
    fn tail_with_zero_lambda() {
        assert_eq!(poisson_tail(1, 0.0), 0.0);
        assert_eq!(poisson_tail(5, 0.0), 0.0);
    }

    #[test]
    fn tail_k1_matches_closed_form() {
        for &l in &[0.1f64, 0.5, 1.0, 3.0, 10.0] {
            let expect = 1.0 - (-l).exp();
            assert!((poisson_tail(1, l) - expect).abs() < 1e-12, "lambda {l}");
        }
    }

    #[test]
    fn tail_is_monotone_in_k_and_lambda() {
        for k in 1..10u32 {
            assert!(poisson_tail(k, 4.0) >= poisson_tail(k + 1, 4.0));
        }
        for &pair in &[(0.5, 1.0), (1.0, 2.0), (2.0, 8.0)] {
            assert!(poisson_tail(3, pair.1) >= poisson_tail(3, pair.0));
        }
    }

    #[test]
    fn tail_matches_monte_carlo() {
        use adpf_stats::dist::{Distribution, Poisson};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let lambda = 2.5;
        let d = Poisson::new(lambda).unwrap();
        let n = 200_000;
        for k in [1u32, 2, 4] {
            let hits = (0..n).filter(|_| d.sample(&mut rng) >= k as u64).count();
            let mc = hits as f64 / n as f64;
            let analytic = poisson_tail(k, lambda);
            assert!(
                (mc - analytic).abs() < 0.005,
                "k {k}: mc {mc} vs {analytic}"
            );
        }
    }

    #[test]
    fn bursty_availability_is_below_poisson() {
        // Same expected slots, but clustered into 4-slot sessions: the
        // chance of at least one display drops sharply.
        let poisson = display_probability(8.0, 0);
        let bursty = display_probability_bursty(8.0, 0, 4.0, 1.0);
        assert!(bursty < poisson, "bursty {bursty} vs poisson {poisson}");
        // Equivalent closed form: P(>=1 session) with lambda = 2.
        assert!((bursty - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn bursty_dispersion_discounts() {
        let full = display_probability_bursty(8.0, 0, 4.0, 1.0);
        let half = display_probability_bursty(8.0, 0, 4.0, 0.5);
        assert!(half < full);
        assert_eq!(display_probability_bursty(8.0, 0, 4.0, 0.0), 0.0);
    }

    #[test]
    fn bursty_queue_needs_more_sessions() {
        // Queue of 4 with 4-slot sessions needs a second session.
        let shallow = display_probability_bursty(8.0, 0, 4.0, 1.0);
        let deep = display_probability_bursty(8.0, 4, 4.0, 1.0);
        assert!(deep < shallow);
        assert!((deep - poisson_tail(2, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn queueing_reduces_display_probability() {
        let free = display_probability(3.0, 0);
        let busy = display_probability(3.0, 3);
        assert!(free > busy);
        assert!(display_probability(0.0, 0) == 0.0);
        assert_eq!(display_probability(-1.0, 0), 0.0);
    }
}
