//! Replica-set construction policies.

use crate::availability::ClientAvailability;
use crate::estimator::{expected_duplicates, sla_violation_prob};
use adpf_desim::InlineVec;

/// Inline capacity for per-ad holder lists: replica factors above 8 never
/// occur in practice (config `max_replicas` defaults are small), so plans
/// are allocation-free on the hot path and spill gracefully otherwise.
pub const PLAN_INLINE: usize = 8;

/// A chosen replica set for one pre-sold ad.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Chosen client ids, in placement order.
    pub clients: InlineVec<u32, PLAN_INLINE>,
    /// Per-chosen-client display probabilities (aligned with `clients`).
    pub probs: InlineVec<f64, PLAN_INLINE>,
    /// `P(shown before deadline)` for this set.
    pub success_prob: f64,
    /// Expected duplicate displays without cancellation.
    pub expected_duplicates: f64,
}

impl Plan {
    fn from_choice(chosen: &[(u32, f64)]) -> Self {
        let mut clients = InlineVec::new();
        let mut probs = InlineVec::new();
        for &(c, p) in chosen {
            clients.push(c);
            probs.push(p);
        }
        let success_prob = 1.0 - sla_violation_prob(&probs);
        let expected_duplicates = expected_duplicates(&probs);
        Self {
            clients,
            probs,
            success_prob,
            expected_duplicates,
        }
    }

    /// An empty plan (the ad is left unplaced).
    pub fn empty() -> Self {
        Self {
            clients: InlineVec::new(),
            probs: InlineVec::new(),
            success_prob: 0.0,
            expected_duplicates: 0.0,
        }
    }

    /// Replication factor.
    pub fn replicas(&self) -> usize {
        self.clients.len()
    }
}

/// `true` when `a` precedes `b` in selection order: decreasing
/// availability, ties broken by ascending client id. Client ids are unique
/// within a candidate pool, so the order is total over finite
/// probabilities.
#[inline]
fn precedes(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// The best positive-probability candidate strictly after `prev` in
/// selection order, or `None` when the pool is exhausted.
///
/// Planners take at most `max_replicas` holders (single digits) from pools
/// of at most `candidate_pool` entries, so repeated `O(n)` partial
/// selection replaces the full sort the hot path used to pay per sold ad —
/// and, because the order is total, picks exactly the same clients in
/// exactly the same sequence.
#[inline]
fn next_in_order(
    candidates: &[ClientAvailability],
    prev: Option<(f64, u32)>,
) -> Option<(f64, u32)> {
    let mut best: Option<(f64, u32)> = None;
    for c in candidates {
        if c.prob <= 0.0 {
            continue;
        }
        let key = (c.prob, c.client);
        if let Some(p) = prev {
            if !precedes(p, key) {
                continue;
            }
        }
        if best.is_none_or(|b| precedes(key, b)) {
            best = Some(key);
        }
    }
    best
}

/// A policy that picks replica holders for one ad.
pub trait ReplicationPlanner {
    /// Chooses a replica set from `candidates` aiming for
    /// `P(shown) >= sla_target`, using at most `max_replicas` holders.
    ///
    /// Candidates may arrive in any order and may include zero-probability
    /// clients; planners must tolerate both.
    fn plan(&self, candidates: &[ClientAvailability], sla_target: f64, max_replicas: usize)
        -> Plan;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's planner: take clients in decreasing availability until the
/// SLA target is met (or replicas run out).
///
/// Sorting by availability minimizes the number of replicas — and therefore
/// the expected duplicates — needed to reach a given success probability,
/// because the highest-probability holder contributes the largest single
/// factor to `1 - prod(1 - p_i)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPlanner;

impl ReplicationPlanner for GreedyPlanner {
    fn plan(
        &self,
        candidates: &[ClientAvailability],
        sla_target: f64,
        max_replicas: usize,
    ) -> Plan {
        let target = sla_target.clamp(0.0, 1.0);
        let mut chosen: InlineVec<(u32, f64), PLAN_INLINE> = InlineVec::new();
        let mut violation = 1.0;
        let mut prev = None;
        while chosen.len() < max_replicas {
            if !chosen.is_empty() && 1.0 - violation >= target {
                break;
            }
            let Some((prob, client)) = next_in_order(candidates, prev) else {
                break;
            };
            chosen.push((client, prob));
            violation *= 1.0 - prob;
            prev = Some((prob, client));
        }
        Plan::from_choice(&chosen)
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Always replicates to exactly `k` holders (highest availability first),
/// regardless of the SLA target — the static-overbooking ablation.
#[derive(Debug, Clone, Copy)]
pub struct FixedFactorPlanner {
    /// Replication factor.
    pub k: usize,
}

impl ReplicationPlanner for FixedFactorPlanner {
    fn plan(
        &self,
        candidates: &[ClientAvailability],
        _sla_target: f64,
        max_replicas: usize,
    ) -> Plan {
        let take = self.k.min(max_replicas);
        let mut chosen: InlineVec<(u32, f64), PLAN_INLINE> = InlineVec::new();
        let mut prev = None;
        while chosen.len() < take {
            let Some((prob, client)) = next_in_order(candidates, prev) else {
                break;
            };
            chosen.push((client, prob));
            prev = Some((prob, client));
        }
        Plan::from_choice(&chosen)
    }

    fn name(&self) -> &'static str {
        "fixed-k"
    }
}

/// Never replicates — the no-overbooking ablation. Callers that keep a
/// primary copy elsewhere get zero insurance replicas from this planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoReplicationPlanner;

impl ReplicationPlanner for NoReplicationPlanner {
    fn plan(
        &self,
        _candidates: &[ClientAvailability],
        _sla_target: f64,
        _max_replicas: usize,
    ) -> Plan {
        Plan::empty()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Places exactly one copy on the best client — the no-overbooking
/// ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleCopyPlanner;

impl ReplicationPlanner for SingleCopyPlanner {
    fn plan(
        &self,
        candidates: &[ClientAvailability],
        sla_target: f64,
        max_replicas: usize,
    ) -> Plan {
        FixedFactorPlanner { k: 1 }.plan(candidates, sla_target, max_replicas)
    }

    fn name(&self) -> &'static str {
        "single"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(probs: &[f64]) -> Vec<ClientAvailability> {
        probs
            .iter()
            .enumerate()
            .map(|(i, &p)| ClientAvailability {
                client: i as u32,
                prob: p,
            })
            .collect()
    }

    #[test]
    fn greedy_meets_target_with_fewest_replicas() {
        let c = cands(&[0.2, 0.9, 0.5, 0.3]);
        let plan = GreedyPlanner.plan(&c, 0.9, 10);
        // The 0.9 client alone meets the target.
        assert_eq!(plan.clients, vec![1]);
        assert!((plan.success_prob - 0.9).abs() < 1e-12);
        assert_eq!(plan.expected_duplicates, 0.0);
    }

    #[test]
    fn greedy_stacks_replicas_for_high_targets() {
        let c = cands(&[0.5, 0.5, 0.5, 0.5, 0.5]);
        let plan = GreedyPlanner.plan(&c, 0.95, 10);
        // Need 1 - 0.5^k >= 0.95 → k = 5.
        assert_eq!(plan.replicas(), 5);
        assert!(plan.success_prob >= 0.95);
    }

    #[test]
    fn greedy_respects_replica_cap() {
        let c = cands(&[0.1; 20]);
        let plan = GreedyPlanner.plan(&c, 0.999, 4);
        assert_eq!(plan.replicas(), 4);
        assert!(plan.success_prob < 0.999);
    }

    #[test]
    fn greedy_skips_zero_probability_clients() {
        let c = cands(&[0.0, 0.0, 0.6]);
        let plan = GreedyPlanner.plan(&c, 0.99, 10);
        assert_eq!(plan.clients, vec![2]);
    }

    #[test]
    fn greedy_with_no_candidates_is_empty() {
        let plan = GreedyPlanner.plan(&[], 0.9, 5);
        assert_eq!(plan.replicas(), 0);
        assert_eq!(plan.success_prob, 0.0);
        let plan = GreedyPlanner.plan(&cands(&[0.0, 0.0]), 0.9, 5);
        assert_eq!(plan.replicas(), 0);
    }

    #[test]
    fn greedy_always_places_at_least_one_when_possible() {
        // Even with a 0.0 target, a sold ad should be placed somewhere.
        let plan = GreedyPlanner.plan(&cands(&[0.4]), 0.0, 5);
        assert_eq!(plan.replicas(), 1);
    }

    #[test]
    fn fixed_factor_ignores_target() {
        let c = cands(&[0.9, 0.8, 0.7, 0.6]);
        let plan = FixedFactorPlanner { k: 3 }.plan(&c, 0.1, 10);
        assert_eq!(plan.clients, vec![0, 1, 2]);
        let plan = FixedFactorPlanner { k: 3 }.plan(&c, 0.99999, 2);
        assert_eq!(plan.replicas(), 2, "cap still applies");
    }

    #[test]
    fn single_copy_picks_best() {
        let c = cands(&[0.2, 0.7, 0.5]);
        let plan = SingleCopyPlanner.plan(&c, 0.99, 10);
        assert_eq!(plan.clients, vec![1]);
        assert!((plan.success_prob - 0.7).abs() < 1e-12);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let c = cands(&[0.5, 0.5, 0.5]);
        let a = GreedyPlanner.plan(&c, 0.74, 10);
        let b = GreedyPlanner.plan(&c, 0.74, 10);
        assert_eq!(a, b);
        assert_eq!(a.clients, vec![0, 1]);
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        // Pseudo-random pool with repeated probabilities to exercise the
        // client-id tie-break; the successive-maxima selection must visit
        // candidates in exactly the order a full sort would.
        let mut probs = Vec::new();
        let mut x: u64 = 0x9e37_79b9;
        for _ in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            probs.push(((x >> 33) % 8) as f64 / 8.0); // includes 0.0 and ties
        }
        let c = cands(&probs);
        let mut sorted: Vec<_> = c.iter().filter(|a| a.prob > 0.0).copied().collect();
        sorted.sort_by(|a, b| {
            b.prob
                .partial_cmp(&a.prob)
                .unwrap()
                .then(a.client.cmp(&b.client))
        });
        let mut prev = None;
        for want in &sorted {
            let got = next_in_order(&c, prev).expect("pool not exhausted");
            assert_eq!(got, (want.prob, want.client));
            prev = Some(got);
        }
        assert_eq!(next_in_order(&c, prev), None);
    }

    #[test]
    fn greedy_duplicates_grow_with_target() {
        let c = cands(&[0.5; 10]);
        let lo = GreedyPlanner.plan(&c, 0.5, 10);
        let hi = GreedyPlanner.plan(&c, 0.99, 10);
        assert!(hi.expected_duplicates > lo.expected_duplicates);
        assert!(hi.success_prob > lo.success_prob);
    }
}
