//! Replica reconciliation: first-display wins, the rest get cancelled.
//!
//! Replication makes duplicates *possible*; the reconciliation protocol
//! keeps them *rare*. When a client reports a display at its next sync, the
//! server queues cancellations for every other holder of the same ad. A
//! holder that syncs before showing the ad drops it; only holders that show
//! the ad inside the sync delay produce a real duplicate. The end-to-end
//! simulator measures exactly that residual.
//!
//! The tracker stores its state in arenas rather than hash maps. Ad ids are
//! handed out by a monotone counter and ads expire in rough deadline order,
//! so live ads occupy a sliding window of the id space: a `VecDeque` of
//! slots indexed by `ad - base` resolves every lookup with one subtraction
//! instead of a hash, and the window front advances as old ads are removed.
//! Cancellation queues are likewise a dense per-client `Vec` indexed by the
//! simulator's `u32` client handles.

use std::collections::VecDeque;

use crate::planner::PLAN_INLINE;
use adpf_desim::{InlineVec, SimTime};
use adpf_obs::ObsSink;

/// Disposition of a reported display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisplayDisposition {
    /// First display of this ad anywhere.
    First,
    /// The ad had already been displayed by another client.
    Duplicate,
    /// The ad is not tracked (already removed or never registered).
    Unknown,
}

#[derive(Debug)]
struct AdReplicas {
    /// Holder ids stay inline: replica sets are at most
    /// `max_replicas + 1` clients, comfortably within [`PLAN_INLINE`]
    /// (a rescue may push one past the inline cap; the vec spills).
    holders: InlineVec<u32, PLAN_INLINE>,
    displayed_by: Option<u32>,
    /// Contract deadline, for dark-holder rescue scans.
    deadline: SimTime,
    /// Whether this ad already received a rescue replica; at most one
    /// rescue per ad keeps the worst-case duplicate exposure bounded.
    rescued: bool,
}

/// Lifetime totals of replica-pool churn and reconciliation outcomes.
/// Pure counts of simulated events — deterministic by construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrackerStats {
    /// Ads registered with the tracker.
    pub ads_registered: u64,
    /// Replica holders registered beyond the first per ad.
    pub replicas_registered: u64,
    /// Deadline rescues that added a holder.
    pub rescues: u64,
    /// Rescue attempts refused (untracked/displayed/already rescued/
    /// duplicate holder).
    pub rescues_refused: u64,
    /// First displays (each queues cancellations for the other holders).
    pub first_displays: u64,
    /// Residual duplicate displays.
    pub duplicate_displays: u64,
    /// Displays reported for untracked ads.
    pub unknown_displays: u64,
    /// Cancellation hints queued for losing holders.
    pub cancellations_queued: u64,
    /// Ads removed after their deadline passed.
    pub ads_removed: u64,
    /// High-water mark of concurrently tracked ads.
    pub peak_tracked: u64,
}

/// Tracks which clients hold replicas of which ads and queues
/// cancellations after the first display.
#[derive(Debug, Default)]
pub struct ReplicaTracker {
    /// Sliding arena over the ad-id space: index `i` holds ad
    /// `base + i`. Vacant slots are ids that were never registered
    /// (realtime sales consume ids too) or already removed.
    slots: VecDeque<Option<AdReplicas>>,
    /// Ad id of `slots[0]`.
    base: u64,
    /// Number of occupied slots.
    live: usize,
    /// Queued cancellation hints, indexed by dense client id.
    pending_cancel: Vec<Vec<u64>>,
    stats: TrackerStats,
}

impl ReplicaTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, ad: u64) -> Option<&AdReplicas> {
        let i = ad.checked_sub(self.base)?;
        self.slots.get(i as usize)?.as_ref()
    }

    /// Registers an ad replicated across `holders`, due by `deadline`.
    ///
    /// The engine registers ads in increasing id order, so this normally
    /// extends the window tail; ids behind the window front are still
    /// accepted (the window slides back) so the API stays total.
    pub fn register(&mut self, ad: u64, holders: &[u32], deadline: SimTime) {
        if self.slots.is_empty() {
            self.base = ad;
        } else if ad < self.base {
            for _ in ad..self.base {
                self.slots.push_front(None);
            }
            self.base = ad;
        }
        let i = (ad - self.base) as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_some() {
            debug_assert!(false, "ad {ad} registered twice");
            return;
        }
        *slot = Some(AdReplicas {
            holders: InlineVec::from_slice(holders),
            displayed_by: None,
            deadline,
            rescued: false,
        });
        self.live += 1;
        self.stats.ads_registered += 1;
        self.stats.replicas_registered += (holders.len() as u64).saturating_sub(1);
        self.stats.peak_tracked = self.stats.peak_tracked.max(self.live as u64);
    }

    /// Adds `client` as an extra (rescue) replica holder for `ad`.
    ///
    /// Returns `false` — and changes nothing — when the ad is untracked,
    /// already displayed, already rescued once, or `client` already holds
    /// it. A successful rescue marks the ad so later scans skip it.
    pub fn rescue_to(&mut self, ad: u64, client: u32) -> bool {
        let entry = ad
            .checked_sub(self.base)
            .and_then(|i| self.slots.get_mut(i as usize))
            .and_then(Option::as_mut);
        let Some(entry) = entry else {
            self.stats.rescues_refused += 1;
            return false;
        };
        if entry.displayed_by.is_some()
            || entry.rescued
            || entry.holders.as_slice().contains(&client)
        {
            self.stats.rescues_refused += 1;
            return false;
        }
        entry.holders.push(client);
        entry.rescued = true;
        self.stats.rescues += 1;
        true
    }

    /// Collects `(ad, deadline)` for every tracked ad that is still
    /// undisplayed, has not been rescued, and is due before `t`.
    ///
    /// Appends to `out` in ascending ad-id order.
    pub fn undisplayed_due_before(&self, t: SimTime, out: &mut Vec<(u64, SimTime)>) {
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(e) = slot {
                if e.displayed_by.is_none() && !e.rescued && e.deadline < t {
                    out.push((self.base + i as u64, e.deadline));
                }
            }
        }
    }

    /// Records that `client` displayed `ad`; on the first display, queues
    /// cancellations for every other holder.
    pub fn record_display(&mut self, ad: u64, client: u32) -> DisplayDisposition {
        let entry = ad
            .checked_sub(self.base)
            .and_then(|i| self.slots.get_mut(i as usize))
            .and_then(Option::as_mut);
        let Some(entry) = entry else {
            self.stats.unknown_displays += 1;
            return DisplayDisposition::Unknown;
        };
        match entry.displayed_by {
            None => {
                entry.displayed_by = Some(client);
                for &h in &entry.holders {
                    if h != client {
                        let hi = h as usize;
                        if hi >= self.pending_cancel.len() {
                            self.pending_cancel.resize_with(hi + 1, Vec::new);
                        }
                        self.pending_cancel[hi].push(ad);
                        self.stats.cancellations_queued += 1;
                    }
                }
                self.stats.first_displays += 1;
                DisplayDisposition::First
            }
            Some(_) => {
                self.stats.duplicate_displays += 1;
                DisplayDisposition::Duplicate
            }
        }
    }

    /// Takes (and clears) the cancellation list for `client` — called when
    /// the client syncs.
    pub fn take_cancellations(&mut self, client: u32) -> Vec<u64> {
        self.pending_cancel
            .get_mut(client as usize)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Appends `client`'s queued cancellations to `out` and clears the
    /// queue in place, keeping its allocation for reuse — the zero-churn
    /// form of [`take_cancellations`](Self::take_cancellations) for hot
    /// sync loops.
    pub fn drain_cancellations(&mut self, client: u32, out: &mut Vec<u64>) {
        if let Some(q) = self.pending_cancel.get_mut(client as usize) {
            out.extend_from_slice(q);
            q.clear();
        }
    }

    /// Stops tracking an ad (its deadline passed); outstanding queued
    /// cancellations remain valid hints for holders.
    pub fn remove(&mut self, ad: u64) {
        let slot = ad
            .checked_sub(self.base)
            .and_then(|i| self.slots.get_mut(i as usize));
        let Some(slot) = slot else { return };
        if slot.take().is_some() {
            self.live -= 1;
            self.stats.ads_removed += 1;
            // Keep the window tight: trim vacant slots from both ends.
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
            while matches!(self.slots.back(), Some(None)) {
                self.slots.pop_back();
            }
        }
    }

    /// Lifetime churn and reconciliation totals.
    pub fn stats(&self) -> &TrackerStats {
        &self.stats
    }

    /// Publishes churn counters and the tracked-ads high-water mark.
    pub fn publish<S: ObsSink>(&self, sink: &S) {
        let s = &self.stats;
        sink.add("overbooking.ads_registered", s.ads_registered);
        sink.add("overbooking.replicas_registered", s.replicas_registered);
        sink.add("overbooking.rescues", s.rescues);
        sink.add("overbooking.rescues_refused", s.rescues_refused);
        sink.add("overbooking.first_displays", s.first_displays);
        sink.add("overbooking.duplicate_displays", s.duplicate_displays);
        sink.add("overbooking.unknown_displays", s.unknown_displays);
        sink.add("overbooking.cancellations_queued", s.cancellations_queued);
        sink.add("overbooking.ads_removed", s.ads_removed);
        sink.gauge_max("overbooking.peak_tracked", s.peak_tracked);
    }

    /// Clients holding replicas of `ad`, if tracked.
    pub fn holders(&self, ad: u64) -> Option<&[u32]> {
        self.slot(ad).map(|e| e.holders.as_slice())
    }

    /// Whether the ad has been displayed at least once.
    pub fn is_displayed(&self, ad: u64) -> bool {
        self.slot(ad)
            .map(|e| e.displayed_by.is_some())
            .unwrap_or(false)
    }

    /// Number of tracked ads.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no ads are tracked.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_display_cancels_other_holders() {
        let mut t = ReplicaTracker::new();
        t.register(7, &[1, 2, 3], SimTime::from_hours(1));
        assert_eq!(t.record_display(7, 2), DisplayDisposition::First);
        assert!(t.is_displayed(7));
        assert_eq!(t.take_cancellations(1), vec![7]);
        assert_eq!(t.take_cancellations(3), vec![7]);
        // The displaying client gets no cancellation.
        assert!(t.take_cancellations(2).is_empty());
        // Cancellations are consumed.
        assert!(t.take_cancellations(1).is_empty());
    }

    #[test]
    fn later_displays_are_duplicates() {
        let mut t = ReplicaTracker::new();
        t.register(1, &[10, 11], SimTime::from_hours(1));
        assert_eq!(t.record_display(1, 10), DisplayDisposition::First);
        assert_eq!(t.record_display(1, 11), DisplayDisposition::Duplicate);
        assert_eq!(t.record_display(1, 10), DisplayDisposition::Duplicate);
    }

    #[test]
    fn unknown_ads_are_flagged() {
        let mut t = ReplicaTracker::new();
        assert_eq!(t.record_display(5, 1), DisplayDisposition::Unknown);
        t.register(5, &[1], SimTime::from_hours(1));
        t.remove(5);
        assert_eq!(t.record_display(5, 1), DisplayDisposition::Unknown);
        assert!(!t.is_displayed(5));
    }

    #[test]
    fn cancellations_accumulate_across_ads() {
        let mut t = ReplicaTracker::new();
        t.register(1, &[1, 2], SimTime::from_hours(1));
        t.register(2, &[1, 3], SimTime::from_hours(1));
        t.record_display(1, 2);
        t.record_display(2, 3);
        let mut c = t.take_cancellations(1);
        c.sort_unstable();
        assert_eq!(c, vec![1, 2]);
    }

    #[test]
    fn drain_cancellations_clears_but_keeps_capacity() {
        let mut t = ReplicaTracker::new();
        t.register(1, &[1, 2], SimTime::from_hours(1));
        t.record_display(1, 2);
        let mut out = Vec::new();
        t.drain_cancellations(1, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        t.drain_cancellations(1, &mut out);
        assert!(out.is_empty(), "drain consumes the queue");
        // A client the tracker has never seen drains nothing.
        t.drain_cancellations(999, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_holder_needs_no_cancellation() {
        let mut t = ReplicaTracker::new();
        t.register(9, &[4], SimTime::from_hours(1));
        assert_eq!(t.record_display(9, 4), DisplayDisposition::First);
        assert!(t.take_cancellations(4).is_empty());
    }

    #[test]
    fn rescue_adds_holder_once_and_joins_cancellation_fanout() {
        let mut t = ReplicaTracker::new();
        t.register(7, &[1, 2], SimTime::from_hours(1));
        assert!(t.rescue_to(7, 3));
        assert_eq!(t.holders(7), Some(&[1, 2, 3][..]));
        // Second rescue is refused: at most one per ad.
        assert!(!t.rescue_to(7, 4));
        // Existing holders can't be "rescued to".
        assert!(!t.rescue_to(7, 1));
        // If the rescue replica displays first, original holders are
        // cancelled like any other losers.
        assert_eq!(t.record_display(7, 3), DisplayDisposition::First);
        assert_eq!(t.take_cancellations(1), vec![7]);
        assert_eq!(t.take_cancellations(2), vec![7]);
    }

    #[test]
    fn rescue_refused_for_displayed_or_unknown_ads() {
        let mut t = ReplicaTracker::new();
        assert!(!t.rescue_to(99, 1));
        t.register(5, &[1], SimTime::from_hours(1));
        t.record_display(5, 1);
        assert!(!t.rescue_to(5, 2));
    }

    #[test]
    fn due_scan_reports_undisplayed_unrescued_ads() {
        let mut t = ReplicaTracker::new();
        t.register(1, &[1], SimTime::from_hours(1));
        t.register(2, &[2], SimTime::from_hours(2));
        t.register(3, &[3], SimTime::from_hours(1));
        t.record_display(1, 1);
        t.rescue_to(3, 9);
        let mut due = Vec::new();
        t.undisplayed_due_before(SimTime::from_mins(90), &mut due);
        // Ad 1 displayed, ad 2 not yet due, ad 3 already rescued.
        assert!(due.is_empty());
        t.register(4, &[4], SimTime::from_mins(30));
        t.undisplayed_due_before(SimTime::from_mins(90), &mut due);
        assert_eq!(due, vec![(4, SimTime::from_mins(30))]);
    }

    #[test]
    fn stats_track_churn_and_reconciliation() {
        let mut t = ReplicaTracker::new();
        t.register(1, &[1, 2, 3], SimTime::from_hours(1));
        t.register(2, &[4], SimTime::from_hours(1));
        assert!(t.rescue_to(2, 5));
        assert!(!t.rescue_to(2, 6)); // second rescue refused
        t.record_display(1, 2); // cancels holders 1 and 3
        t.record_display(1, 3); // duplicate
        t.record_display(99, 1); // unknown
        t.remove(1);
        t.remove(1); // double remove does not double count
        let s = *t.stats();
        assert_eq!(s.ads_registered, 2);
        assert_eq!(s.replicas_registered, 2);
        assert_eq!(s.rescues, 1);
        assert_eq!(s.rescues_refused, 1);
        assert_eq!(s.first_displays, 1);
        assert_eq!(s.duplicate_displays, 1);
        assert_eq!(s.unknown_displays, 1);
        assert_eq!(s.cancellations_queued, 2);
        assert_eq!(s.ads_removed, 1);
        assert_eq!(s.peak_tracked, 2);

        let reg = adpf_obs::MetricRegistry::new();
        t.publish(&reg);
        assert_eq!(reg.counter_value("overbooking.cancellations_queued"), 2);
        assert_eq!(reg.gauge_value("overbooking.peak_tracked"), 2);
    }

    #[test]
    fn len_tracks_registration_and_removal() {
        let mut t = ReplicaTracker::new();
        assert!(t.is_empty());
        t.register(1, &[1], SimTime::from_hours(1));
        t.register(2, &[2], SimTime::from_hours(1));
        assert_eq!(t.len(), 2);
        t.remove(1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn arena_window_slides_over_gapped_monotone_ids() {
        // Realtime sales consume ids without registering them, so the
        // registered id stream is monotone with gaps; removal in id order
        // must advance the window front past the holes.
        let mut t = ReplicaTracker::new();
        for ad in [10u64, 13, 14, 20] {
            t.register(ad, &[1], SimTime::from_hours(1));
        }
        assert_eq!(t.len(), 4);
        t.remove(10);
        t.remove(13);
        assert_eq!(t.len(), 2);
        assert!(t.holders(14).is_some());
        assert!(t.holders(20).is_some());
        assert!(t.holders(10).is_none());
        // Interior removal leaves the window addressing later ads.
        t.remove(14);
        assert!(t.holders(20).is_some());
        t.remove(20);
        assert!(t.is_empty());
        // The arena keeps working after draining completely.
        t.register(31, &[2], SimTime::from_hours(2));
        assert_eq!(t.holders(31), Some(&[2][..]));
    }

    #[test]
    fn register_behind_window_front_still_lands() {
        let mut t = ReplicaTracker::new();
        t.register(50, &[1], SimTime::from_hours(1));
        t.register(40, &[2], SimTime::from_hours(1));
        assert_eq!(t.holders(40), Some(&[2][..]));
        assert_eq!(t.holders(50), Some(&[1][..]));
        assert_eq!(t.len(), 2);
    }
}
