//! Closed-form estimates for a replica set.

/// Probability that *no* replica holder displays the ad before the
/// deadline: `prod(1 - p_i)`.
pub fn sla_violation_prob(probs: &[f64]) -> f64 {
    probs
        .iter()
        .map(|p| 1.0 - p.clamp(0.0, 1.0))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Expected duplicate displays of one ad replicated with independent
/// per-holder display probabilities `probs`, assuming no cancellation:
/// `E[displays] - P(at least one display) = sum(p_i) - (1 - prod(1 - p_i))`.
///
/// The runtime cancellation protocol ([`crate::reconcile`]) pushes real
/// duplicates below this bound; the planner uses it as a conservative cost.
pub fn expected_duplicates(probs: &[f64]) -> f64 {
    let sum: f64 = probs.iter().map(|p| p.clamp(0.0, 1.0)).sum();
    let shown = 1.0 - sla_violation_prob(probs);
    (sum - shown).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_replicas_always_violates() {
        assert_eq!(sla_violation_prob(&[]), 1.0);
        assert_eq!(expected_duplicates(&[]), 0.0);
    }

    #[test]
    fn single_certain_replica() {
        assert_eq!(sla_violation_prob(&[1.0]), 0.0);
        assert_eq!(expected_duplicates(&[1.0]), 0.0);
    }

    #[test]
    fn two_replicas_hand_computed() {
        // p = {0.5, 0.5}: violation 0.25; E[dups] = 1.0 - 0.75 = 0.25.
        assert!((sla_violation_prob(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
        assert!((expected_duplicates(&[0.5, 0.5]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probs_are_clamped() {
        assert_eq!(sla_violation_prob(&[2.0]), 0.0);
        assert_eq!(sla_violation_prob(&[-1.0]), 1.0);
    }

    #[test]
    fn estimates_match_monte_carlo() {
        let probs = [0.7, 0.4, 0.2, 0.55];
        let mut rng = StdRng::seed_from_u64(4242);
        let n = 300_000;
        let mut violations = 0u64;
        let mut duplicates = 0u64;
        for _ in 0..n {
            let displays = probs.iter().filter(|&&p| rng.gen::<f64>() < p).count();
            if displays == 0 {
                violations += 1;
            } else {
                duplicates += (displays - 1) as u64;
            }
        }
        let mc_viol = violations as f64 / n as f64;
        let mc_dups = duplicates as f64 / n as f64;
        assert!((mc_viol - sla_violation_prob(&probs)).abs() < 0.005);
        assert!((mc_dups - expected_duplicates(&probs)).abs() < 0.01);
    }

    #[test]
    fn adding_replicas_trades_violation_for_duplicates() {
        let mut probs = vec![0.3];
        let mut last_viol = sla_violation_prob(&probs);
        let mut last_dups = expected_duplicates(&probs);
        for _ in 0..6 {
            probs.push(0.3);
            let viol = sla_violation_prob(&probs);
            let dups = expected_duplicates(&probs);
            assert!(viol < last_viol);
            assert!(dups > last_dups);
            last_viol = viol;
            last_dups = dups;
        }
    }
}
