//! Property tests pinning the incremental availability evaluators to the
//! closed-form reference implementations.
//!
//! The simulator's determinism contract demands *bit-identical* reports,
//! so these tests assert exact `f64` equality (`to_bits`), not tolerance:
//! [`PoissonTailSeries`] and [`AvailabilityCache`] must be pure
//! memoizations of [`poisson_tail`] and [`display_probability_bursty`],
//! never "close enough" approximations.

use adpf_overbooking::availability::{
    display_probability_bursty, poisson_tail, AvailabilityCache, PoissonTailSeries,
};
use proptest::prelude::*;

/// Asserts exact bitwise equality with a readable failure message.
macro_rules! assert_bits_eq {
    ($got:expr, $want:expr, $($ctx:tt)*) => {{
        let (got, want): (f64, f64) = ($got, $want);
        prop_assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{}: got {got:e}, want {want:e}",
            format_args!($($ctx)*)
        );
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A series queried at arbitrary `k` values — out of order, with
    /// repeats — always matches the direct summation bit for bit.
    #[test]
    fn series_matches_direct_tail_in_any_query_order(
        // Mostly positive rates, with zero and negative (degenerate)
        // cases mixed in via the selector byte.
        lambda in (0u8..5, 0.0f64..50.0).prop_map(|(sel, raw)| match sel {
            0 => 0.0,
            1 => -raw / 10.0,
            _ => raw,
        }),
        ks in prop::collection::vec(0u32..64, 1..40),
    ) {
        let mut series = PoissonTailSeries::new(lambda);
        for k in ks {
            assert_bits_eq!(
                series.tail(k),
                poisson_tail(k, lambda),
                "tail(k={k}, lambda={lambda})"
            );
        }
    }

    /// The memoizing cache agrees exactly with the free function across
    /// random workload-shaped inputs, including the `lambda = 0` and
    /// `queued_ahead > 0` edges, under repeated (cache-hitting) queries.
    #[test]
    fn cache_matches_free_function_exactly(
        // In-range dispersions plus the 0, 1, and above-clamp edges.
        dispersion in (0u8..7, 0.0f64..1.0).prop_map(|(sel, raw)| match sel {
            0 => 0.0,
            1 => 1.0,
            2 => 1.0 + raw * 2.0, // Above the clamp range.
            _ => raw,
        }),
        queries in prop::collection::vec(
            (0u8..5, 0.0f64..200.0, 0u32..20, 0.0f64..12.0).prop_map(
                |(sel, expected, queued, per_raw)| {
                    // sel 0: zero expected slots (lambda = 0 edge);
                    // sel 1: sub-1.0 slots-per-session (the max(1.0) clamp).
                    let expected = if sel == 0 { 0.0 } else { expected };
                    let per_session = if sel == 1 { per_raw / 12.0 } else { per_raw.max(1.0) };
                    (expected, queued, per_session)
                },
            ),
            1..60,
        ),
    ) {
        let mut cache = AvailabilityCache::new(dispersion);
        // Two passes: the second re-asks every query so answers served
        // from warm series prefixes are checked too.
        for pass in 0..2 {
            for &(expected, queued, per_session) in &queries {
                assert_bits_eq!(
                    cache.display_probability_bursty(expected, queued, per_session),
                    display_probability_bursty(expected, queued, per_session, dispersion),
                    "pass {pass}: expected={expected}, queued={queued}, \
                     per_session={per_session}, dispersion={dispersion}"
                );
            }
        }
        // Counters only tick for queries that reach the series map
        // (the lambda = 0 short-circuit bypasses it).
        let reaching = queries
            .iter()
            .filter(|&&(expected, _, per_session)| {
                dispersion.clamp(0.0, 1.0) * expected.max(0.0) / per_session.max(1.0) > 0.0
            })
            .count();
        let (hits, misses) = cache.stats();
        prop_assert_eq!((hits + misses) as usize, reaching * 2);
    }
}

/// Deterministic spot-check of the edges the ISSUE calls out, plus the
/// hit-counting that makes the cache worth having.
#[test]
fn cache_reuses_series_across_queue_depths() {
    let mut cache = AvailabilityCache::new(0.7);
    // Same rate inputs, varying queue depth: one miss then all hits.
    for queued in 0..10u32 {
        let got = cache.display_probability_bursty(24.0, queued, 5.0);
        let want = display_probability_bursty(24.0, queued, 5.0, 0.7);
        assert_eq!(got.to_bits(), want.to_bits(), "queued={queued}");
    }
    let (hits, misses) = cache.stats();
    assert_eq!((hits, misses), (9, 1));

    // lambda = 0 short-circuits without touching the map.
    assert_eq!(cache.display_probability_bursty(0.0, 3, 5.0), 0.0);
    assert_eq!(cache.stats(), (9, 1));
}
