//! One Criterion benchmark per reconstructed table/figure (E1–E15),
//! run at micro scale so each experiment's full pipeline is timed.

use adpf_bench::{all_ids, run_experiment, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments_micro");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(5));
    for id in all_ids() {
        // E9 shares E8's sweep.
        if id == "e9" {
            continue;
        }
        g.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, id| {
            b.iter(|| black_box(run_experiment(id, Scale::Micro).expect("known id")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
