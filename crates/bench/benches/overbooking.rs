//! Microbenchmarks of the overbooking math (substrate of E8/E9/E13).

use adpf_overbooking::availability::{poisson_tail, ClientAvailability};
use adpf_overbooking::planner::{GreedyPlanner, ReplicationPlanner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_poisson_tail(c: &mut Criterion) {
    c.bench_function("poisson_tail_k4", |b| {
        b.iter(|| black_box(poisson_tail(black_box(4), black_box(2.7))));
    });
}

fn bench_greedy_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_plan");
    for pool in [16usize, 64, 256] {
        let candidates: Vec<ClientAvailability> = (0..pool)
            .map(|i| ClientAvailability {
                client: i as u32,
                prob: 0.05 + 0.9 * ((i * 7919) % pool) as f64 / pool as f64,
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(pool),
            &candidates,
            |b, cands| {
                b.iter(|| black_box(GreedyPlanner.plan(cands, 0.95, 8)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_poisson_tail, bench_greedy_planner);
criterion_main!(benches);
