//! Macro-benchmark: the full simulator in both delivery modes.

use adpf_bench::Scale;
use adpf_core::{Simulator, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let trace = Scale::Micro.system_trace(42);
    let slots = trace.ad_slots(SystemConfig::realtime(1).ad_refresh).len() as u64;
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(5));
    g.throughput(Throughput::Elements(slots));
    g.bench_function("realtime", |b| {
        b.iter(|| black_box(Simulator::new(SystemConfig::realtime(1), &trace).run()));
    });
    g.bench_function("prefetch", |b| {
        b.iter(|| black_box(Simulator::new(SystemConfig::prefetch_default(1), &trace).run()));
    });
    g.finish();
}

/// Sharded simulation at 1 vs. 4 worker threads over the same trace: the
/// merged reports are identical, so the elem/s column isolates the
/// scheduling speedup.
fn bench_sharded(c: &mut Criterion) {
    let trace = Scale::Quick.system_trace(42);
    let slots = trace.ad_slots(SystemConfig::realtime(1).ad_refresh).len() as u64;
    let cfg = SystemConfig::prefetch_default(1);
    let mut g = c.benchmark_group("sharded");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(10));
    g.throughput(Throughput::Elements(slots));
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(Simulator::run_parallel(&cfg, &trace, threads)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_sharded);
criterion_main!(benches);
