//! Microbenchmarks of the radio energy model (substrate of E1/E2/E7).

use adpf_desim::SimTime;
use adpf_energy::{audit, profiles, Radio};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bench_radio_transfers(c: &mut Criterion) {
    let mut g = c.benchmark_group("radio");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("transfer_stream_1k", |b| {
        b.iter_batched(
            || Radio::new(profiles::umts_3g()),
            |mut radio| {
                for k in 0..1_000u64 {
                    radio.transfer(SimTime::from_secs(k * 7), 4 * 1024, 512);
                }
                black_box(radio.finish(SimTime::from_secs(8_000)))
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("transfer_stream_1k_with_timeline", |b| {
        b.iter_batched(
            || Radio::with_timeline(profiles::umts_3g()),
            |mut radio| {
                for k in 0..1_000u64 {
                    radio.transfer(SimTime::from_secs(k * 7), 4 * 1024, 512);
                }
                black_box(radio.finish(SimTime::from_secs(8_000)))
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_audit(c: &mut Criterion) {
    let apps = audit::top_apps();
    let radio = profiles::umts_3g();
    let ads = audit::AdTrafficModel::default();
    let baseline = audit::DeviceBaseline::default();
    c.bench_function("audit_top15_one_day", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for app in &apps {
                let sessions = audit::synth_sessions(app, 1);
                let a = audit::audit_app(&sessions, &app.traffic, &ads, &radio, &baseline);
                total += a.ad_comm_share();
            }
            black_box(total)
        });
    });
}

criterion_group!(benches, bench_radio_transfers, bench_audit);
criterion_main!(benches);
