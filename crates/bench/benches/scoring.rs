//! Microbenchmarks of the batched hot path's scoring kernel: the
//! gather → rate → score sweep the engine runs over its flat candidate
//! pool on every sync (the substrate of the `batched-hotpath` baseline
//! rows and the `--perf-check` CI gate).

use adpf_overbooking::availability::{display_probability_bursty, AvailabilityCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A synthetic candidate pool shaped like the engine's score-phase
/// input: a small set of distinct session rates (users cluster by
/// activity level, so the availability cache sees heavy lambda reuse)
/// with varying per-candidate queue depths.
fn pool(n: usize) -> Vec<(f64, u32, f64)> {
    (0..n)
        .map(|i| {
            let lambda = 2.0 + ((i * 7919) % 16) as f64 * 1.5;
            let queued = ((i * 31) % 5) as u32;
            (lambda, queued, 3.5)
        })
        .collect()
}

fn bench_closed_form(c: &mut Criterion) {
    c.bench_function("score_closed_form", |b| {
        b.iter(|| {
            black_box(display_probability_bursty(
                black_box(8.0),
                black_box(2),
                black_box(3.5),
                black_box(0.85),
            ))
        });
    });
}

fn bench_score_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("score_sweep");
    for n in [32usize, 128, 512] {
        let cands = pool(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &cands, |b, cands| {
            // One cache reused across iterations, exactly like the
            // engine reuses its cache across syncs: steady-state scoring
            // is almost entirely memoized-series extensions.
            let mut cache = AvailabilityCache::new(0.85);
            b.iter(|| {
                let mut acc = 0.0;
                for &(lambda, queued, mean_session) in cands {
                    acc += cache.display_probability_bursty(lambda, queued, mean_session);
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

fn bench_score_sweep_cold(c: &mut Criterion) {
    // The cache-miss path: a fresh cache per iteration pays
    // `exp(-lambda)` and the series build for every distinct rate.
    let cands = pool(128);
    let mut g = c.benchmark_group("score_sweep_cold");
    g.throughput(Throughput::Elements(cands.len() as u64));
    g.bench_function("128", |b| {
        b.iter(|| {
            let mut cache = AvailabilityCache::new(0.85);
            let mut acc = 0.0;
            for &(lambda, queued, mean_session) in &cands {
                acc += cache.display_probability_bursty(lambda, queued, mean_session);
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_closed_form,
    bench_score_sweep,
    bench_score_sweep_cold
);
criterion_main!(benches);
