//! Microbenchmarks of trace generation and slot derivation (E3/E4 input).

use adpf_desim::SimDuration;
use adpf_traces::PopulationConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let cfg = PopulationConfig {
        num_users: 200,
        days: 14,
        ..PopulationConfig::iphone_like(42)
    };
    let mut g = c.benchmark_group("tracegen");
    g.throughput(Throughput::Elements(200 * 14));
    g.bench_function("generate_200u_14d", |b| {
        b.iter(|| black_box(cfg.generate()));
    });
    let trace = cfg.generate();
    g.bench_function("derive_slots", |b| {
        b.iter(|| black_box(trace.ad_slots(SimDuration::from_secs(30))));
    });
    g.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
