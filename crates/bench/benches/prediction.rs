//! Microbenchmarks of the demand predictors (substrate of E5/E6/E12).

use adpf_desim::{SimDuration, SimTime};
use adpf_prediction::PredictorKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Builds a 28-day slot series with two 5-slot sessions per day.
fn slot_series() -> Vec<SimTime> {
    let mut out = Vec::new();
    for d in 0..28u64 {
        for s in 0..2u64 {
            let start = SimTime::from_days(d) + SimDuration::from_hours(9 + s * 9);
            for k in 0..5u64 {
                out.push(start + SimDuration::from_secs(30 * k));
            }
        }
    }
    out
}

fn bench_predictors(c: &mut Criterion) {
    let slots = slot_series();
    let kinds = [
        PredictorKind::GlobalRate,
        PredictorKind::Ewma(0.3),
        PredictorKind::TimeOfDay,
        PredictorKind::DayHour,
        PredictorKind::Quantile(0.5),
        PredictorKind::SessionAware,
        PredictorKind::Oracle,
    ];
    let mut g = c.benchmark_group("predictor_train_predict_28d_2h");
    for kind in kinds {
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, k| {
            b.iter(|| {
                let mut p = k.build(&slots);
                let window = SimDuration::from_hours(2);
                let mut cursor = 0usize;
                let mut acc = 0.0;
                let mut t = SimTime::ZERO;
                while t < SimTime::from_days(28) {
                    let end = t + window;
                    let begin = cursor;
                    while cursor < slots.len() && slots[cursor] < end {
                        cursor += 1;
                    }
                    acc += p.predict(t, window);
                    p.observe(t, end, &slots[begin..cursor]);
                    t = end;
                }
                black_box(acc)
            });
        });
    }
    g.finish();
}

/// The hot path of replication planning: one availability prediction.
fn bench_predict_only(c: &mut Criterion) {
    let slots = slot_series();
    let mut p = PredictorKind::SessionAware.build(&slots);
    // Train over the whole trace first.
    let day = SimDuration::from_days(1);
    let mut cursor = 0;
    for d in 0..28u64 {
        let start = SimTime::from_days(d);
        let begin = cursor;
        while cursor < slots.len() && slots[cursor] < start + day {
            cursor += 1;
        }
        p.observe(start, start + day, &slots[begin..cursor]);
    }
    c.bench_function("session_aware_predict_hot", |b| {
        b.iter(|| black_box(p.predict(SimTime::from_days(28), SimDuration::from_hours(12))));
    });
}

criterion_group!(benches, bench_predictors, bench_predict_only);
criterion_main!(benches);
