//! Microbenchmarks of the exchange (substrate of E14a and every system run).

use adpf_auction::{CampaignCatalog, Exchange, SlotOffer};
use adpf_desim::SimTime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_auctions(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_auction");
    for campaigns in [10u32, 50, 200] {
        g.throughput(Throughput::Elements(1_000));
        g.bench_with_input(
            BenchmarkId::from_parameter(campaigns),
            &campaigns,
            |b, &n| {
                let mut ex = Exchange::new(CampaignCatalog::synthetic(n, 7).into_campaigns(), 7);
                let offer = SlotOffer::realtime(SimTime::ZERO, None);
                b.iter(|| {
                    let mut filled = 0u32;
                    for _ in 0..1_000 {
                        if ex.run_auction(&offer).is_some() {
                            filled += 1;
                        }
                    }
                    black_box(filled)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_auctions);
criterion_main!(benches);
