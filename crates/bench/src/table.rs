//! Aligned text tables for experiment output.

use core::fmt;

/// One experiment table (a reconstructed figure series or table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id, e.g. `"E7"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// What the paper reports for this table/figure (for EXPERIMENTS.md).
    pub note: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, note: &str, header: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            note: note.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extra cells are kept.
    pub fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut w = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        if !self.note.is_empty() {
            writeln!(f, "   (paper: {})", self.note)?;
        }
        let w = self.widths();
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("E0", "demo", "a note", &["name", "value"]);
        t.push(vec!["longer-name".into(), "1".into()]);
        t.push(vec!["x".into(), "123.45".into()]);
        let s = t.to_string();
        assert!(s.contains("E0: demo"));
        assert!(s.contains("(paper: a note)"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus the two title lines.
        assert_eq!(lines.len(), 6);
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[4].len().max(lines[2].len()));
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new("E0", "demo", "", &["a", "b"]);
        t.push(vec!["1".into()]);
        t.push(vec!["1".into(), "2".into(), "3".into()]);
        let s = t.to_string();
        assert!(s.contains('3'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.1234), "12.34%");
    }
}
