//! One module per experiment family; see DESIGN.md's experiment index.

pub mod marketplace;
pub mod mechanisms;
pub mod motivation;
pub mod netem;
pub mod obs;
pub mod prediction;
pub mod scaling;
pub mod scenario;
pub mod serving;
pub mod system;
pub mod traces;

use crate::scale::Scale;
use crate::table::Table;

/// All experiment ids, in DESIGN.md order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
        "e15", "e16", "e17", "e18", "e19", "e20", "e21", "e22",
    ]
}

/// Runs one experiment by id (case-insensitive); `None` for unknown ids.
///
/// Some ids return more than one table (e.g. E2's gap sweep plus state
/// timeline; E8/E9 are two views of one sweep and both appear under
/// either id).
pub fn run_experiment(id: &str, scale: Scale) -> Option<Vec<Table>> {
    run_experiment_threads(id, scale, 1)
}

/// [`run_experiment`] with a worker-thread count for the experiments
/// that exercise the sharded simulator (currently E14's throughput
/// section); single-run experiments ignore it.
pub fn run_experiment_threads(id: &str, scale: Scale, threads: usize) -> Option<Vec<Table>> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(vec![motivation::e1_ad_energy_share(scale)]),
        "e2" => Some(motivation::e2_tail_energy()),
        "e3" => Some(vec![traces::e3_dataset_table(scale)]),
        "e4" => Some(traces::e4_predictability(scale)),
        "e5" => Some(vec![prediction::e5_accuracy_by_window(scale)]),
        "e6" => Some(vec![prediction::e6_error_cdf(scale)]),
        "e7" => Some(system::e7_energy_vs_interval(scale)),
        "e8" | "e9" => {
            let (sla, loss) = system::e8_e9_overbooking_sweep(scale);
            Some(vec![sla, loss])
        }
        "e10" => Some(vec![system::e10_deadline_sensitivity(scale)]),
        "e11" => Some(vec![system::e11_tradeoff_frontier(scale)]),
        "e12" => Some(vec![system::e12_predictor_ablation(scale)]),
        "e13" => Some(vec![system::e13_planner_ablation(scale)]),
        "e14" => Some(scaling::e14_scaling_threads(scale, threads)),
        "e15" => Some(vec![mechanisms::e15_mechanism_ablation(scale)]),
        "e16" => Some(vec![netem::e16_degraded_network(scale, threads)]),
        // E17 sweeps its own thread counts; the caller's `threads` is
        // irrelevant to a scaling experiment.
        "e17" => Some(vec![scaling::e17_thread_scaling(scale)]),
        "e18" => Some(vec![obs::e18_observability_breakdown(scale, threads)]),
        "e19" => Some(vec![marketplace::e19_reactive_marketplace(scale, threads)]),
        // E20 sweeps its own thread counts, like E17.
        "e20" => Some(vec![serving::e20_serving_load(scale)]),
        "e21" => Some(vec![scenario::e21_population_mix(scale, threads)]),
        "e22" => Some(vec![scenario::e22_flash_crowd(scale, threads)]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("e99", Scale::Micro).is_none());
    }

    #[test]
    fn ids_are_complete() {
        assert_eq!(all_ids().len(), 22);
    }
}
