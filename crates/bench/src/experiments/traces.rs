//! E3–E4: trace characterization (dataset table, predictability).

use adpf_desim::SimDuration;
use adpf_traces::stats::{daily_autocorrelation, slots_per_day_ecdf};
use adpf_traces::{TraceStats, UserId};

use crate::scale::Scale;
use crate::table::{f, pct, Table};

const REFRESH: SimDuration = SimDuration::from_secs(30);

/// E3: the dataset summary table.
pub fn e3_dataset_table(scale: Scale) -> Table {
    let mut table = Table::new(
        "E3",
        "usage trace datasets (synthetic substitutes, 30 s ad refresh)",
        "paper: 1,693 iPhone users + in-lab Windows Phone users over several weeks",
        &[
            "dataset",
            "users",
            "active",
            "days",
            "sessions",
            "sess/user/day",
            "slots/user/day",
            "median sess s",
        ],
    );
    for (name, cfg) in [
        ("iphone-like", scale.iphone(42)),
        ("wp-like", scale.windows_phone(43)),
    ] {
        let trace = cfg.generate();
        let s = TraceStats::compute(&trace, REFRESH);
        table.push(vec![
            name.into(),
            s.users.to_string(),
            s.active_users.to_string(),
            s.days.to_string(),
            s.sessions.to_string(),
            f(s.sessions_per_user_day.mean, 1),
            f(s.slots_per_user_day.mean, 1),
            f(s.session_secs.median, 0),
        ]);
    }
    table
}

/// E4: predictability of slot demand — per-user slots/day CDF, the
/// hour-of-day demand profile, and day-over-day autocorrelation.
pub fn e4_predictability(scale: Scale) -> Vec<Table> {
    let trace = scale.iphone(42).generate();

    let mut cdf = Table::new(
        "E4a",
        "CDF of per-user ad slots per day (iphone-like)",
        "per-user demand is heterogeneous and heavy-tailed",
        &["percentile", "slots/day"],
    );
    let e = slots_per_day_ecdf(&trace, REFRESH);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        cdf.push(vec![pct(q), f(e.quantile(q), 1)]);
    }

    let stats = TraceStats::compute(&trace, REFRESH);
    let mut hours = Table::new(
        "E4b",
        "hour-of-day share of slot demand",
        "demand is strongly diurnal, the basis of the client models",
        &["hour", "share"],
    );
    for h in 0..24 {
        hours.push(vec![format!("{h:02}"), pct(stats.slot_hours.fraction(h))]);
    }

    let mut ac = Table::new(
        "E4c",
        "mean day-over-day autocorrelation of per-user daily slot counts",
        "yesterday predicts today: the client models have signal to work with",
        &["lag days", "mean autocorrelation"],
    );
    let sample: Vec<u32> = (0..trace.num_users().min(60)).collect();
    for lag in [1usize, 2, 7] {
        let mut acc = 0.0;
        for &u in &sample {
            acc += daily_autocorrelation(&trace, UserId(u), REFRESH, lag);
        }
        ac.push(vec![lag.to_string(), f(acc / sample.len() as f64, 3)]);
    }

    vec![cdf, hours, ac]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_has_both_datasets() {
        let t = e3_dataset_table(Scale::Micro);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "iphone-like");
        let slots: f64 = t.rows[0][6].parse().unwrap();
        let sessions: f64 = t.rows[0][5].parse().unwrap();
        assert!(slots >= sessions, "every session has at least one slot");
    }

    #[test]
    fn e4_shapes_match_expectations() {
        let tables = e4_predictability(Scale::Micro);
        // CDF is non-decreasing.
        let vals: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        // Evening exceeds pre-dawn demand.
        let share =
            |t: &Table, h: usize| -> f64 { t.rows[h][1].trim_end_matches('%').parse().unwrap() };
        assert!(share(&tables[1], 20) > share(&tables[1], 3));
        // Positive day-over-day autocorrelation at lag 1.
        let ac1: f64 = tables[2].rows[0][1].parse().unwrap();
        assert!(ac1 > -0.2, "lag-1 autocorrelation {ac1}");
    }
}
