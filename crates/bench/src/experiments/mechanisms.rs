//! E15: ablation of the reconstruction's mechanism-level design choices.
//!
//! DESIGN.md documents four mechanisms introduced while reconstructing the
//! system from the abstract (piggybacked syncs, replica holdback, deferred
//! reports, bursty availability) plus the failure-injection knob. This
//! experiment turns each off (or to its naive setting) individually and
//! shows what it buys.

use adpf_core::{Simulator, SystemConfig};

use crate::scale::Scale;
use crate::table::{pct, Table};

fn variant(label: &str, tweak: impl FnOnce(&mut SystemConfig)) -> (String, SystemConfig) {
    let mut cfg = SystemConfig::prefetch_default(1);
    tweak(&mut cfg);
    (label.to_string(), cfg)
}

/// E15: each mechanism disabled in isolation, against the default.
pub fn e15_mechanism_ablation(scale: Scale) -> Table {
    let trace = scale.system_trace(42);
    let rt = Simulator::new(SystemConfig::realtime(1), &trace).run();

    let variants: Vec<(String, SystemConfig)> = vec![
        variant("default", |_| {}),
        // The session-aware predictor deliberately sells ~nothing while
        // idle, so without piggybacked syncs it degenerates to real-time;
        // the fair interval-only variant pairs it with a diurnal model
        // that sells speculatively at periodic syncs.
        variant("no piggyback", |c| c.piggyback_on_fallback = false),
        variant("no piggyback + day-hour", |c| {
            c.piggyback_on_fallback = false;
            c.predictor = adpf_prediction::PredictorKind::DayHour;
        }),
        variant("eager reports", |c| c.defer_report_syncs = false),
        variant("no replica holdback", |c| {
            // Replicas displayable for their whole lifetime.
            c.replica_window = c.deadline;
        }),
        variant("poisson availability", |c| {
            // No day-level overdispersion discount.
            c.availability_dispersion = 1.0;
        }),
        variant("20% sync dropout", |c| c.sync_dropout = 0.2),
    ];

    let mut table = Table::new(
        "E15",
        "mechanism ablation (each knob flipped in isolation)",
        "reconstruction-level design choices: what each mechanism buys",
        &[
            "variant",
            "savings",
            "cache hit",
            "loss",
            "SLA viol",
            "dup/slot",
        ],
    );
    for (label, cfg) in variants {
        let pf = Simulator::new(cfg, &trace).run();
        table.push(vec![
            label,
            pct(pf.energy_savings_vs(&rt)),
            pct(pf.cache_hit_rate()),
            pct(pf.revenue_loss_vs(&rt)),
            pct(pf.sla_violation_rate()),
            pct(pf.ledger.duplicates as f64 / pf.slots.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_mechanisms_earn_their_keep() {
        let t = e15_mechanism_ablation(Scale::Micro);
        let get = |name: &str, col: usize| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))[col]
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        // Piggybacking is a large chunk of the energy story.
        assert!(
            get("default", 1) > get("no piggyback", 1),
            "piggybacking must save energy"
        );
        // Removing the holdback increases duplicate displays.
        assert!(get("no replica holdback", 5) >= get("default", 5));
        // Dropout degrades but does not zero the savings.
        assert!(get("20% sync dropout", 1) > 10.0);
    }
}
