//! E20: closed-loop serving load sweep.
//!
//! The batch experiments ask what prefetching costs; this one asks what
//! *serving* those decisions online costs. A load generator serializes a
//! population's slot stream to the serve wire protocol and replays it
//! into an in-process [`adpf_serve::serve`] instance, closing the loop:
//! every decision is made in-line before the next event is dequeued, so
//! the recorded latency percentiles reflect real queueing under the
//! offered load, not an open-loop approximation.

use std::time::Instant;

use adpf_core::SystemConfig;
use adpf_obs::Histogram;
use adpf_serve::{serve, write_events, ServeOptions, DECISION_LATENCY_METRIC};
use adpf_traces::PopulationConfig;

use crate::scale::Scale;
use crate::table::{f, pct, Table};

/// Decision-latency SLA for the miss-rate column, in microseconds.
/// Deliberately a power of two: every octave boundary is also a
/// log-linear sub-bucket boundary, so a bucket starts exactly at
/// 1024 µs and "missed the SLA" is an exact bucket sum, not a
/// bucket-boundary approximation.
const SLA_US: u64 = 1024;

/// Fraction of decisions that took `SLA_US` or longer.
fn sla_miss_rate(h: &Histogram) -> f64 {
    if h.count() == 0 {
        return 0.0;
    }
    let missed: u64 = h
        .nonzero_buckets()
        .filter(|&(i, _)| Histogram::bucket_upper_bound(i) >= SLA_US)
        .map(|(_, n)| n)
        .sum();
    missed as f64 / h.count() as f64
}

/// E20: offered load (population size) × worker threads → request
/// throughput, decision-latency percentiles, and SLA-miss rate.
///
/// The sweep replays each population's full slot stream as fast as the
/// server drains it, so requests/s is the closed-loop capacity at that
/// thread count. The report-hash column is the determinism witness:
/// serving is pure scheduling, so every thread count must reproduce the
/// identical report for a given population.
pub fn e20_serving_load(scale: Scale) -> Table {
    let mut table = Table::new(
        "E20",
        "closed-loop serving: offered load × threads → latency + SLA misses",
        "the online server decides the replayed slot stream in-line; percentiles are \
         log-linear-bucket upper bounds from the serve.decision_latency_us histogram and the \
         SLA column counts decisions at 1024 us or slower",
        &[
            "users",
            "threads",
            "requests",
            "req/s",
            "p50 us",
            "p95 us",
            "p99 us",
            "SLA miss",
            "report hash",
        ],
    );
    let cfg = SystemConfig::prefetch_default(1);
    for users in scale.scaling_sizes() {
        let pop = PopulationConfig {
            num_users: users,
            days: 7,
            ..PopulationConfig::iphone_like(42)
        };
        let trace = pop.generate();
        let mut stream = Vec::new();
        write_events(&trace, cfg.ad_refresh, &mut stream).expect("in-memory write");
        for threads in scale.thread_counts() {
            let mut opts = ServeOptions::new(cfg.clone());
            opts.threads = threads;
            opts.error_sample = 0;
            let t0 = Instant::now();
            let out = serve(&opts, stream.as_slice()).expect("generated streams ingest cleanly");
            let wall = t0.elapsed().as_secs_f64();
            let hist = out
                .registry
                .histogram_snapshot(DECISION_LATENCY_METRIC)
                .unwrap_or_default();
            table.push(vec![
                users.to_string(),
                threads.to_string(),
                out.requests.to_string(),
                f(out.requests as f64 / wall.max(1e-9), 0),
                hist.quantile_upper_bound(0.50).to_string(),
                hist.quantile_upper_bound(0.95).to_string(),
                hist.quantile_upper_bound(0.99).to_string(),
                pct(sla_miss_rate(&hist)),
                format!("{:016x}", out.report.stable_hash()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_is_deterministic_across_thread_counts() {
        let t = e20_serving_load(Scale::Micro);
        let sizes = Scale::Micro.scaling_sizes();
        let threads = Scale::Micro.thread_counts();
        assert_eq!(t.rows.len(), sizes.len() * threads.len());
        // Rows group by population; within a group only wall-clock
        // columns may vary — the hash is the determinism witness.
        for group in t.rows.chunks(threads.len()) {
            let hashes: Vec<&String> = group.iter().map(|r| &r[8]).collect();
            assert!(
                hashes.windows(2).all(|w| w[0] == w[1]),
                "thread count changed a served report: {hashes:?}"
            );
            let requests: Vec<&String> = group.iter().map(|r| &r[2]).collect();
            assert!(requests.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn sla_misses_count_exact_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 500, 1023] {
            h.record(v);
        }
        assert_eq!(sla_miss_rate(&h), 0.0, "1023 us makes the 1024 us SLA");
        h.record(1024);
        h.record(u64::MAX);
        assert!((sla_miss_rate(&h) - 2.0 / 6.0).abs() < 1e-12);
    }
}
