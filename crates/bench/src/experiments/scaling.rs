//! E14: exchange behaviour and simulator scaling.

use std::time::Instant;

use adpf_auction::{CampaignCatalog, Exchange, SlotOffer};
use adpf_core::{Simulator, SystemConfig};
use adpf_desim::SimTime;
use adpf_traces::PopulationConfig;

use crate::scale::Scale;
use crate::table::{f, pct, Table};

/// E14: (a) real-time vs. advance clearing prices in the exchange, and
/// (b) simulator throughput versus population size, single-threaded.
pub fn e14_scaling(scale: Scale) -> Vec<Table> {
    e14_scaling_threads(scale, 1)
}

/// [`e14_scaling`] running the sharded simulator on `threads` worker
/// threads for the throughput section, plus a thread-sweep table (E14c)
/// measuring sharded scaling on the largest population of the scale.
pub fn e14_scaling_threads(scale: Scale, threads: usize) -> Vec<Table> {
    let mut prices = Table::new(
        "E14a",
        "exchange clearing: real-time vs. advance sale",
        "advance slots clear at second price minus the risk discount; contextual campaigns \
         cannot bid on them, so targeting erodes advance prices further",
        &[
            "discount",
            "contextual",
            "auctions",
            "fill",
            "advance/realtime revenue",
        ],
    );
    for (discount, contextual) in [(1.0, 0.0), (0.95, 0.0), (0.9, 0.0), (1.0, 0.3), (1.0, 0.6)] {
        let n = 5_000;
        let mut rt_rev = 0.0;
        let mut adv_rev = 0.0;
        let mk = || {
            Exchange::new(
                CampaignCatalog::synthetic_with_targeting(40, 7, contextual, 1.5).into_campaigns(),
                7,
            )
        };
        let mut rt = mk();
        let mut adv = mk();
        adv.advance_discount = discount;
        for k in 0..n {
            let category = Some((k % 8) as u8);
            if let Some(s) = rt.run_auction(&SlotOffer::realtime(SimTime::ZERO, category)) {
                rt_rev += s.price;
            }
            if let Some(s) =
                adv.run_auction(&SlotOffer::advance(SimTime::ZERO, SimTime::from_hours(12)))
            {
                adv_rev += s.price;
            }
        }
        prices.push(vec![
            f(discount, 2),
            pct(contextual),
            n.to_string(),
            pct(adv.fill_rate()),
            f(adv_rev / rt_rev, 3),
        ]);
    }

    let mut throughput = Table::new(
        "E14b",
        "simulator throughput vs. population size (prefetch mode, sharded)",
        "the event-driven design scales linearly in slots",
        &["users", "threads", "slots", "wall s", "slots/s"],
    );
    for users in scale.scaling_sizes() {
        let cfg = PopulationConfig {
            num_users: users,
            days: 7,
            ..PopulationConfig::iphone_like(42)
        };
        let trace = cfg.generate();
        let t0 = Instant::now();
        let report = Simulator::run_parallel(&SystemConfig::prefetch_default(1), &trace, threads);
        let wall = t0.elapsed().as_secs_f64();
        throughput.push(vec![
            users.to_string(),
            threads.to_string(),
            report.slots.to_string(),
            f(wall, 2),
            f(report.slots as f64 / wall.max(1e-9), 0),
        ]);
    }

    let mut thread_sweep = Table::new(
        "E14c",
        "sharded throughput vs. worker threads",
        "shards are fixed, so the merged report is identical at every thread count; \
         only wall-clock changes",
        &["threads", "slots", "wall s", "slots/s", "speedup"],
    );
    let sweep_users = *scale.scaling_sizes().last().expect("scales are non-empty");
    let sweep_trace = PopulationConfig {
        num_users: sweep_users,
        days: 7,
        ..PopulationConfig::iphone_like(42)
    }
    .generate();
    let mut single_thread_wall = None;
    for threads in scale.thread_counts() {
        let t0 = Instant::now();
        let report =
            Simulator::run_parallel(&SystemConfig::prefetch_default(1), &sweep_trace, threads);
        let wall = t0.elapsed().as_secs_f64();
        let base = *single_thread_wall.get_or_insert(wall);
        thread_sweep.push(vec![
            threads.to_string(),
            report.slots.to_string(),
            f(wall, 2),
            f(report.slots as f64 / wall.max(1e-9), 0),
            f(base / wall.max(1e-9), 2),
        ]);
    }

    vec![prices, throughput, thread_sweep]
}

/// E17: thread scaling of the parallel pipeline. Trace generation and
/// sharded simulation are timed separately at each worker-thread count
/// (generation used to be serial and dominated bench setup); the report
/// hash column is the determinism witness — threads are pure scheduling,
/// so it must be identical in every row.
pub fn e17_thread_scaling(scale: Scale) -> Table {
    let users = *scale.scaling_sizes().last().expect("scales are non-empty");
    let pop = PopulationConfig {
        num_users: users,
        days: 7,
        ..PopulationConfig::iphone_like(42)
    };
    let cfg = SystemConfig::prefetch_default(1);
    let mut table = Table::new(
        "E17",
        "pipeline thread scaling: parallel generation + work-stealing simulation",
        "threads are pure scheduling: the trace and the merged report are bit-identical \
         at every count, so the speedup columns carry no semantic drift",
        &[
            "threads",
            "gen s",
            "sim s",
            "events/s",
            "sim speedup",
            "report hash",
        ],
    );
    let mut base_wall = None;
    let mut base_hash = None;
    for threads in scale.thread_counts() {
        let t_gen = Instant::now();
        let trace = pop.generate_parallel(threads);
        let gen_s = t_gen.elapsed().as_secs_f64();
        let t_sim = Instant::now();
        let report = Simulator::run_parallel(&cfg, &trace, threads);
        let wall = t_sim.elapsed().as_secs_f64();
        let hash = crate::baseline::report_hash(&report);
        let expect = *base_hash.get_or_insert(hash);
        assert_eq!(hash, expect, "thread count changed the merged report");
        let events = report.slots + report.syncs + report.syncs_skipped + report.syncs_dropped;
        let base = *base_wall.get_or_insert(wall);
        table.push(vec![
            threads.to_string(),
            f(gen_s, 2),
            f(wall, 2),
            f(events as f64 / wall.max(1e-9), 0),
            f(base / wall.max(1e-9), 2),
            format!("{hash:016x}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_discount_tracks_revenue_ratio() {
        let tables = e14_scaling(Scale::Micro);
        let prices = &tables[0];
        for row in &prices.rows {
            let discount: f64 = row[0].parse().unwrap();
            let contextual: f64 = row[1].trim_end_matches('%').parse().unwrap();
            let ratio: f64 = row[4].parse().unwrap();
            if contextual == 0.0 {
                assert!(
                    (ratio - discount).abs() < 0.05,
                    "discount {discount} ratio {ratio}"
                );
            } else {
                // Contextual campaigns can only lift real-time revenue.
                assert!(ratio < 1.0, "contextual {contextual}% ratio {ratio}");
            }
        }
        assert_eq!(tables[1].rows.len(), Scale::Micro.scaling_sizes().len());
    }

    #[test]
    fn e17_hashes_are_identical_at_every_thread_count() {
        let t = e17_thread_scaling(Scale::Micro);
        assert_eq!(t.rows.len(), Scale::Micro.thread_counts().len());
        let hashes: Vec<&String> = t.rows.iter().map(|r| &r[5]).collect();
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "report hash must not depend on threads: {hashes:?}"
        );
    }

    #[test]
    fn e14_thread_sweep_simulates_the_same_slots_at_every_count() {
        let tables = e14_scaling_threads(Scale::Micro, 2);
        let sweep = &tables[2];
        assert_eq!(sweep.rows.len(), Scale::Micro.thread_counts().len());
        let slots: Vec<&String> = sweep.rows.iter().map(|r| &r[1]).collect();
        assert!(
            slots.windows(2).all(|w| w[0] == w[1]),
            "thread count must not change the simulated work: {slots:?}"
        );
    }
}
