//! E1–E2: the motivation study (ad energy share, tail energy).

use adpf_desim::{SimDuration, SimTime};
use adpf_energy::{audit, profiles, Radio};

use crate::scale::Scale;
use crate::table::{f, pct, Table};

/// E1: per-app share of energy attributable to in-app ads.
pub fn e1_ad_energy_share(scale: Scale) -> Table {
    let days = match scale {
        Scale::Micro => 1,
        Scale::Quick => 3,
        Scale::Full => 14,
    };
    let radio = profiles::umts_3g();
    let ads = audit::AdTrafficModel::default();
    let baseline = audit::DeviceBaseline::default();
    let mut table = Table::new(
        "E1",
        "in-app advertising energy share, top-15 free apps (3G)",
        "ads account for ~65% of app communication energy and ~23% of total app energy",
        &[
            "app",
            "category",
            "comm J/day",
            "ad J/day",
            "ad% of comm",
            "ad% of total",
        ],
    );
    let mut comm_shares = Vec::new();
    let mut total_shares = Vec::new();
    for app in audit::top_apps() {
        let sessions = audit::synth_sessions(&app, days);
        let a = audit::audit_app(&sessions, &app.traffic, &ads, &radio, &baseline);
        comm_shares.push(a.ad_comm_share());
        total_shares.push(a.ad_total_share());
        table.push(vec![
            app.name.to_string(),
            app.category.to_string(),
            f(a.comm_with_ads.total_j() / days as f64, 1),
            f(a.ad_comm_j() / days as f64, 1),
            pct(a.ad_comm_share()),
            pct(a.ad_total_share()),
        ]);
    }
    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    table.push(vec![
        "AVERAGE".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        pct(avg(&comm_shares)),
        pct(avg(&total_shares)),
    ]);
    table
}

/// E2: the tail-energy mechanism — per-ad energy versus inter-fetch gap,
/// and a radio-state timeline of one ad-supported session.
pub fn e2_tail_energy() -> Vec<Table> {
    let profile = profiles::umts_3g();

    let mut sweep = Table::new(
        "E2a",
        "per-ad radio energy vs. inter-fetch gap (3G, 4 KB ads)",
        "closely spaced fetches share one tail; beyond the ~17 s tail every fetch pays in full",
        &["gap s", "J/ad", "tail share", "promotions"],
    );
    for gap_s in [1u64, 5, 10, 15, 20, 30, 45, 60] {
        let mut radio = Radio::new(profile.clone());
        let n = 20u64;
        for k in 0..n {
            radio.transfer(SimTime::from_secs(k * gap_s), 4 * 1024, 512);
        }
        let e = radio.finish(SimTime::from_secs(n * gap_s + 3_600));
        sweep.push(vec![
            gap_s.to_string(),
            f(e.total_j() / n as f64, 2),
            pct(e.tail_fraction()),
            e.promotions.to_string(),
        ]);
    }

    let mut timeline = Table::new(
        "E2b",
        "radio state timeline: one 2-minute session, 30 s ad refresh (3G)",
        "each refresh re-wakes the radio into multi-second high-power tails",
        &["start", "end", "state", "seconds"],
    );
    let mut radio = Radio::with_timeline(profile);
    for k in 0..4u64 {
        radio.transfer(SimTime::from_secs(k * 30), 4 * 1024, 512);
    }
    radio.finish(SimTime::from_secs(120) + SimDuration::from_secs(60));
    for iv in radio.timeline().expect("timeline enabled").intervals() {
        timeline.push(vec![
            iv.start.to_string(),
            iv.end.to_string(),
            iv.state.label(),
            f(iv.duration().as_secs_f64(), 2),
        ]);
    }
    vec![sweep, timeline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_average_lands_in_paper_band() {
        let t = e1_ad_energy_share(Scale::Micro);
        assert_eq!(t.rows.len(), 16); // 15 apps + average.
        let avg = t.rows.last().unwrap();
        let comm: f64 = avg[4].trim_end_matches('%').parse().unwrap();
        let total: f64 = avg[5].trim_end_matches('%').parse().unwrap();
        assert!((45.0..85.0).contains(&comm), "comm share {comm}");
        assert!((10.0..40.0).contains(&total), "total share {total}");
    }

    #[test]
    fn e2_energy_grows_with_gap_then_saturates() {
        let tables = e2_tail_energy();
        let sweep = &tables[0];
        let j: Vec<f64> = sweep.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(j.first().unwrap() * 2.0 < *j.last().unwrap());
        // Beyond the 17 s tail the cost per ad is flat.
        let idx30 = sweep.rows.iter().position(|r| r[0] == "30").unwrap();
        let idx60 = sweep.rows.iter().position(|r| r[0] == "60").unwrap();
        assert!((j[idx30] - j[idx60]).abs() < 0.05);
        // The timeline covers all macro states.
        let states: Vec<&str> = tables[1].rows.iter().map(|r| r[2].as_str()).collect();
        assert!(states.contains(&"PROMO"));
        assert!(states.contains(&"XFER"));
        assert!(states.contains(&"TAIL0"));
    }
}
