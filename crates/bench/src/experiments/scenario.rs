//! E21/E22: the scenario-suite sweeps.
//!
//! Every earlier sweep runs one homogeneous population on one radio
//! profile; these two stress the paper's affordability claim with the
//! regimes it skips. E21 crosses the device-class mix against the
//! prefetch policy and reads the user-cost counters the scenario layer
//! adds — metered bytes, wasted prefetch traffic, data-cap blocks,
//! display latency. E22 composes a flash crowd with an AdCell-style
//! per-region cell ceiling and the planner's overbooking aggressiveness.

use adpf_core::scenario::{CellCapacity, CellPolicy};
use adpf_core::{Simulator, SystemConfig};
use adpf_desim::SimDuration;
use adpf_scenario::{ClassSpec, PopulationMix, ScenarioPopulation, ScenarioSpec};
use adpf_traces::PopulationConfig;

use crate::scale::Scale;
use crate::table::{f, pct, Table};

const SEED: u64 = 42;

/// The scenario sweeps' base population: the iPhone-like shape at the
/// experiment scale, capped at sweep size (like `Scale::system_trace`)
/// because each table cell is a full simulation run.
fn base_population(scale: Scale) -> PopulationConfig {
    let mut cfg = scale.iphone(SEED);
    if matches!(scale, Scale::Full) {
        cfg.num_users = 600;
    }
    cfg
}

/// A homogeneous single-class scenario: one class of the canonical mix
/// promoted to the whole population. Rows for these are the per-class
/// breakdown of E21 — class membership is the only axis that moves.
fn solo(class: &ClassSpec) -> ScenarioSpec {
    let mut device = class.device.clone();
    device.weight = 1.0;
    ScenarioSpec {
        name: format!("solo-{}", device.name),
        mix: PopulationMix {
            classes: vec![ClassSpec {
                device,
                session_scale: class.session_scale,
            }],
        },
        ..ScenarioSpec::mixed()
    }
}

/// The population-mix axis: the canonical three-way mix plus each class
/// alone.
fn mixes() -> Vec<(String, ScenarioSpec)> {
    let mut axis = vec![("mixed".to_string(), ScenarioSpec::mixed())];
    for class in &PopulationMix::mixed().classes {
        axis.push((class.device.name.clone(), solo(class)));
    }
    axis
}

/// The prefetch-policy axis: pure on-demand delivery, the paper's
/// default 2 h prefetch interval, and an aggressive 30 min interval
/// (more syncs, fresher caches, more wasted bytes).
fn policies(seed: u64) -> Vec<(&'static str, SystemConfig)> {
    let mut aggressive = SystemConfig::prefetch_default(seed);
    aggressive.prefetch_interval = SimDuration::from_mins(30);
    vec![
        ("realtime", SystemConfig::realtime(seed)),
        ("prefetch 2h", SystemConfig::prefetch_default(seed)),
        ("prefetch 30m", aggressive),
    ]
}

/// E21: population mix × prefetch policy → energy and user-cost.
///
/// The per-class rows answer what the mixed aggregate hides: WiFi-heavy
/// users pay no metered bytes at all, LTE users pay in bytes but never
/// hit a cap, and 3G-budget users exhaust their plan allowance under
/// prefetching — the cap-block column — then fall back to (still
/// metered) on-demand fetches.
pub fn e21_population_mix(scale: Scale, threads: usize) -> Table {
    let mut table = Table::new(
        "E21",
        "population mix x prefetch policy: energy + user-cost per class",
        "scenario-layer counters: metered bytes bill against the user's data plan, wasted MB is \
         prefetch traffic that expired undisplayed, cap-blk counts prefetch syncs blocked by an \
         exhausted plan, display latency from the scenario.display_latency_ms histogram",
        &[
            "mix",
            "policy",
            "J/imp",
            "metered MB",
            "MB/user-day",
            "wasted MB",
            "wasted ads",
            "cap-blk",
            "disp p50 ms",
            "disp p95 ms",
        ],
    );
    let base = base_population(scale);
    for (mix_label, spec) in mixes() {
        let pop = ScenarioPopulation::new(base.clone(), spec);
        let trace = pop.generate_parallel(threads);
        for (policy, mut cfg) in policies(1) {
            pop.apply_to(&mut cfg);
            let r = Simulator::run_parallel(&cfg, &trace, threads);
            let sc = &r.scenario;
            let user_days = (r.users as f64 * r.days as f64).max(1.0);
            table.push(vec![
                mix_label.clone(),
                policy.to_string(),
                f(r.energy_per_impression_j(), 3),
                f(sc.metered_bytes() as f64 / 1e6, 2),
                f(sc.metered_bytes() as f64 / 1e6 / user_days, 3),
                f(sc.prefetch_wasted_bytes as f64 / 1e6, 2),
                sc.prefetch_wasted_ads.to_string(),
                sc.cap_blocked_syncs.to_string(),
                sc.display_latency_p(0.50).to_string(),
                sc.display_latency_p(0.95).to_string(),
            ]);
        }
    }
    table
}

/// The cell-ceiling axis for E22: no ceiling, then a tight per-region
/// budget under each overflow policy. The budget scales with the
/// population (per region-minute) so the ceiling stays binding at every
/// experiment scale. `regions` is pinned to the flashcrowd preset's so
/// the burst's regional targeting — baked into the trace — is identical
/// across cells of the sweep.
fn cell_axis(users: u32) -> Vec<(&'static str, CellCapacity)> {
    let tight = (users / 20).max(1);
    let mut drop = CellCapacity::capped(4, tight, SimDuration::from_mins(1));
    drop.policy = CellPolicy::Drop;
    let mut defer = drop.clone();
    defer.policy = CellPolicy::Defer;
    vec![
        ("uncapped", CellCapacity::disabled()),
        ("tight/drop", drop),
        ("tight/defer", defer),
    ]
}

/// E22: flash-crowd intensity × cell capacity × overbooking.
///
/// Each intensity generates one trace (the burst is trace-side); the
/// cell ceiling and the planner's SLA target are engine-side, so they
/// sweep over the same bytes. Dropped fetches surface as unfilled
/// slots; deferred ones as display latency. A less aggressive
/// overbooking target (0.50) leans harder on realtime fetches, which is
/// exactly the traffic the saturated cell throttles.
pub fn e22_flash_crowd(scale: Scale, threads: usize) -> Table {
    let mut table = Table::new(
        "E22",
        "flash crowd x cell capacity x overbooking",
        "burst = mean extra sessions per affected user over the 2 h window (0 = outage-only \
         baseline); the cell ceiling admits a per-region fetch budget per minute and drops or \
         defers the overflow",
        &[
            "burst",
            "cell",
            "SLA tgt",
            "dropped",
            "deferred",
            "unfilled",
            "SLA viol",
            "disp p95 ms",
            "J/imp",
        ],
    );
    let base = base_population(scale);
    for intensity in [0.0, 3.0, 6.0] {
        let mut spec = ScenarioSpec::flash_crowd();
        spec.burst.as_mut().unwrap().intensity = intensity;
        let pop = ScenarioPopulation::new(base.clone(), spec);
        let trace = pop.generate_parallel(threads);
        for (cell_label, cell) in cell_axis(base.num_users) {
            for sla_target in [0.95, 0.50] {
                let mut cfg = SystemConfig::prefetch_default(1);
                cfg.sla_target = sla_target;
                pop.apply_to(&mut cfg);
                cfg.scenario.cell = cell.clone();
                let r = Simulator::run_parallel(&cfg, &trace, threads);
                let sc = &r.scenario;
                table.push(vec![
                    f(intensity, 1),
                    cell_label.to_string(),
                    f(sla_target, 2),
                    sc.cell_dropped_fetches.to_string(),
                    sc.cell_deferred_fetches.to_string(),
                    r.unfilled.to_string(),
                    pct(r.sla_violation_rate()),
                    sc.display_latency_p(0.95).to_string(),
                    f(r.energy_per_impression_j(), 3),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn e21_shape_and_per_class_cost_structure() {
        let t = e21_population_mix(Scale::Micro, 2);
        assert_eq!(t.rows.len(), 4 * 3, "4 mixes x 3 policies");

        let row = |mix: &str, policy: &str| -> &Vec<String> {
            t.rows
                .iter()
                .find(|r| r[0] == mix && r[1] == policy)
                .unwrap_or_else(|| panic!("row {mix}/{policy}"))
        };
        // WiFi is unmetered: the solo WiFi-heavy class pays zero metered
        // bytes under every policy.
        for (policy, _) in policies(1) {
            assert_eq!(num(&row("wifi-heavy", policy)[3]), 0.0);
        }
        // Pure on-demand delivery prefetches nothing, so it wastes
        // nothing and never hits a data cap.
        for mix in ["mixed", "wifi-heavy", "lte", "3g-budget"] {
            assert_eq!(num(&row(mix, "realtime")[5]), 0.0);
            assert_eq!(row(mix, "realtime")[7], "0");
        }
        // The budget class's tiny plan allowance blocks prefetch syncs,
        // and metered LTE users pay real bytes.
        assert!(num(&row("3g-budget", "prefetch 2h")[7]) > 0.0);
        assert!(num(&row("lte", "prefetch 2h")[3]) > 0.0);
    }

    #[test]
    fn e21_is_deterministic_across_thread_counts() {
        let a = e21_population_mix(Scale::Micro, 1);
        let b = e21_population_mix(Scale::Micro, 4);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn e22_shape_and_ceiling_effects() {
        let t = e22_flash_crowd(Scale::Micro, 2);
        assert_eq!(
            t.rows.len(),
            3 * 3 * 2,
            "3 intensities x 3 cells x 2 targets"
        );

        let cell = |burst: &str, cell: &str, tgt: &str, col: usize| -> f64 {
            num(&t
                .rows
                .iter()
                .find(|r| r[0] == burst && r[1] == cell && r[2] == tgt)
                .unwrap_or_else(|| panic!("row {burst}/{cell}/{tgt}"))[col])
        };
        // The uncapped rows never drop or defer.
        for r in t.rows.iter().filter(|r| r[1] == "uncapped") {
            assert_eq!(r[3], "0");
            assert_eq!(r[4], "0");
        }
        // A tight ceiling under the heavy crowd actually intervenes, and
        // each policy routes the overflow to its own counter.
        assert!(
            cell("6.0", "tight/drop", "0.50", 3) > 0.0,
            "drops under load"
        );
        assert_eq!(cell("6.0", "tight/drop", "0.50", 4), 0.0);
        assert!(
            cell("6.0", "tight/defer", "0.50", 4) > 0.0,
            "defers under load"
        );
        assert_eq!(cell("6.0", "tight/defer", "0.50", 3), 0.0);
        // Dropped fetches leave slots unfilled relative to the same
        // run without a ceiling.
        assert!(cell("6.0", "tight/drop", "0.50", 5) >= cell("6.0", "uncapped", "0.50", 5));
    }

    #[test]
    fn e22_is_deterministic_across_thread_counts() {
        let a = e22_flash_crowd(Scale::Micro, 1);
        let b = e22_flash_crowd(Scale::Micro, 4);
        assert_eq!(a.rows, b.rows);
    }
}
