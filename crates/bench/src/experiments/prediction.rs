//! E5–E6: offline prediction accuracy.

use adpf_desim::{SimDuration, SimTime};
use adpf_prediction::{evaluate_predictor, PredictorKind};
use adpf_stats::Ecdf;

use crate::scale::Scale;
use crate::table::{f, pct, Table};

const REFRESH: SimDuration = SimDuration::from_secs(30);

fn predictors() -> Vec<PredictorKind> {
    vec![
        PredictorKind::GlobalRate,
        PredictorKind::Ewma(0.3),
        PredictorKind::TimeOfDay,
        PredictorKind::DayHour,
        PredictorKind::Markov,
        PredictorKind::Quantile(0.5),
        PredictorKind::SessionAware,
        PredictorKind::Oracle,
    ]
}

/// E5: over/under-prediction versus prediction-window length, per
/// predictor family.
pub fn e5_accuracy_by_window(scale: Scale) -> Table {
    let trace = scale.iphone(42).generate();
    let users = trace.slots_by_user(REFRESH);
    let horizon = trace.horizon();
    let warmup = SimTime::from_days(scale.warmup_days());

    let mut table = Table::new(
        "E5",
        "slot-demand prediction accuracy by window length",
        "diurnal models beat flat rates; longer windows are easier; the knob trades over- for under-prediction",
        &["predictor", "window h", "over", "under", "exact", "MAE", "bias"],
    );
    for kind in predictors() {
        for window_h in [1u64, 2, 4, 8, 12, 24] {
            let r = evaluate_predictor(
                &users,
                horizon,
                SimDuration::from_hours(window_h),
                warmup,
                |slots| kind.build(slots),
            );
            table.push(vec![
                kind.label(),
                window_h.to_string(),
                pct(r.over_rate),
                pct(r.under_rate),
                pct(r.exact_rate),
                f(r.mean_abs_err, 2),
                f(r.bias(), 2),
            ]);
        }
    }
    table
}

/// E6: CDF of normalized prediction error for the session-aware and
/// day-hour models at several windows.
pub fn e6_error_cdf(scale: Scale) -> Table {
    let trace = scale.iphone(42).generate();
    let users = trace.slots_by_user(REFRESH);
    let horizon = trace.horizon();
    let warmup = SimTime::from_days(scale.warmup_days());

    let mut table = Table::new(
        "E6",
        "CDF of normalized prediction error (pred - actual) / max(actual, 1)",
        "errors concentrate near zero; the tails drive overbooking and fallbacks",
        &["predictor", "window h", "p10", "p25", "p50", "p75", "p90"],
    );
    for kind in [PredictorKind::DayHour, PredictorKind::SessionAware] {
        for window_h in [2u64, 8, 24] {
            let r = evaluate_predictor(
                &users,
                horizon,
                SimDuration::from_hours(window_h),
                warmup,
                |slots| kind.build(slots),
            );
            let e = Ecdf::new(r.norm_errors);
            table.push(vec![
                kind.label(),
                window_h.to_string(),
                f(e.quantile(0.10), 2),
                f(e.quantile(0.25), 2),
                f(e.quantile(0.50), 2),
                f(e.quantile(0.75), 2),
                f(e.quantile(0.90), 2),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_oracle_dominates_and_rates_sum_to_one() {
        let t = e5_accuracy_by_window(Scale::Micro);
        assert_eq!(t.rows.len(), 8 * 6);
        for row in &t.rows {
            let over: f64 = row[2].trim_end_matches('%').parse().unwrap();
            let under: f64 = row[3].trim_end_matches('%').parse().unwrap();
            let exact: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!((over + under + exact - 100.0).abs() < 0.2, "{row:?}");
        }
        let oracle_rows: Vec<_> = t.rows.iter().filter(|r| r[0] == "oracle").collect();
        for r in oracle_rows {
            let exact: f64 = r[4].trim_end_matches('%').parse().unwrap();
            assert!(exact > 99.9, "oracle exact {exact}");
        }
    }

    #[test]
    fn e6_quantiles_are_monotone() {
        let t = e6_error_cdf(Scale::Micro);
        for row in &t.rows {
            let qs: Vec<f64> = row[2..].iter().map(|c| c.parse().unwrap()).collect();
            assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{row:?}");
        }
    }
}
