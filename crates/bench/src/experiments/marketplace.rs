//! E19: reactive marketplace — overbooking aggressiveness × pacing
//! regime.
//!
//! The paper's revenue-loss numbers assume a *static* exchange: campaigns
//! bid fixed distributions and never react to the supply shifts that
//! overbooked prefetching creates. This experiment re-runs the E8/E9
//! overbooking sweep with the marketplace layer enabled — campaigns
//! pacing spend against budget schedules, converging to target CPCs, and
//! a first-price variant — and reports each regime's revenue against the
//! static exchange at the *same* overbooking level, so the deltas are
//! attributable to marketplace dynamics alone.

use adpf_auction::{MarketplaceConfig, PricingRule};
use adpf_core::{Simulator, SystemConfig};

use crate::scale::Scale;
use crate::table::{pct, Table};

/// The overbooking-aggressiveness axis (replication SLA targets, the
/// E8/E9 sweep points that matter at quick scale).
const SLA_TARGETS: [f64; 3] = [0.80, 0.95, 0.99];

/// The pacing-regime axis: the static exchange baseline, then the paced
/// marketplace under both pricing rules.
fn regimes() -> Vec<(&'static str, MarketplaceConfig)> {
    let mut paced_first = MarketplaceConfig::paced();
    paced_first.pricing = PricingRule::FirstPrice;
    vec![
        ("static", MarketplaceConfig::disabled()),
        ("paced", MarketplaceConfig::paced()),
        ("paced-first", paced_first),
    ]
}

/// E19: revenue under reactive campaigns vs the static exchange, across
/// overbooking levels.
pub fn e19_reactive_marketplace(scale: Scale, threads: usize) -> Table {
    let trace = scale.system_trace(42);
    let mut table = Table::new(
        "E19",
        "reactive marketplace: overbooking aggressiveness x pacing regime",
        "revenue loss vs the static exchange at the same SLA target",
        &[
            "sla target",
            "regime",
            "revenue",
            "loss vs static",
            "SLA viol",
            "refunded",
        ],
    );
    for sla in SLA_TARGETS {
        let mut static_cfg = SystemConfig::prefetch_default(1);
        static_cfg.sla_target = sla;
        let baseline = Simulator::run_parallel(&static_cfg, &trace, threads);
        for (regime, mc) in regimes() {
            let r = if mc.enabled {
                let mut cfg = static_cfg.clone();
                cfg.marketplace = mc;
                Simulator::run_parallel(&cfg, &trace, threads)
            } else {
                baseline.clone()
            };
            table.push(vec![
                format!("{sla:.2}"),
                regime.to_string(),
                format!("{:.4}", r.revenue()),
                pct(r.revenue_loss_vs(&baseline)),
                pct(r.sla_violation_rate()),
                format!("{:.4}", r.ledger.refunded),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, sla: &str, regime: &str, col: usize) -> f64 {
        t.rows
            .iter()
            .find(|r| r[0] == sla && r[1] == regime)
            .unwrap_or_else(|| panic!("row {sla}/{regime}"))[col]
            .trim_end_matches('%')
            .parse()
            .unwrap()
    }

    #[test]
    fn e19_shape_and_static_baseline() {
        let t = e19_reactive_marketplace(Scale::Micro, 2);
        assert_eq!(t.rows.len(), 3 * 3, "3 SLA targets x 3 regimes");
        for sla in ["0.80", "0.95", "0.99"] {
            // The static regime is its own baseline: zero loss by
            // definition, positive revenue by construction.
            assert_eq!(cell(&t, sla, "static", 3), 0.0);
            assert!(cell(&t, sla, "static", 2) > 0.0);
        }
    }

    #[test]
    fn e19_pacing_actually_moves_revenue() {
        let t = e19_reactive_marketplace(Scale::Micro, 2);
        // Reactive campaigns must change auction outcomes somewhere in
        // the sweep — a paced run bit-identical to the static exchange
        // would mean the marketplace layer never engaged.
        let moved = ["0.80", "0.95", "0.99"].iter().any(|sla| {
            cell(&t, sla, "paced", 2) != cell(&t, sla, "static", 2)
                || cell(&t, sla, "paced-first", 2) != cell(&t, sla, "static", 2)
        });
        assert!(moved, "paced regimes left every revenue cell unchanged");
    }

    #[test]
    fn e19_is_deterministic_across_thread_counts() {
        let a = e19_reactive_marketplace(Scale::Micro, 1);
        let b = e19_reactive_marketplace(Scale::Micro, 4);
        assert_eq!(a.rows, b.rows);
    }
}
