//! E7–E13: the end-to-end system sweeps.

use adpf_core::{PlannerKind, SimReport, Simulator, SystemConfig};
use adpf_desim::SimDuration;
use adpf_prediction::PredictorKind;
use adpf_traces::Trace;

use crate::scale::Scale;
use crate::table::{f, pct, Table};

fn realtime_baseline(trace: &Trace) -> SimReport {
    Simulator::new(SystemConfig::realtime(1), trace).run()
}

fn prefetch(trace: &Trace, tweak: impl FnOnce(&mut SystemConfig)) -> SimReport {
    let mut cfg = SystemConfig::prefetch_default(1);
    tweak(&mut cfg);
    Simulator::new(cfg, trace).run()
}

/// E7: the headline figure — ad energy overhead versus prefetch interval,
/// plus the CDF of per-user savings at the default configuration.
pub fn e7_energy_vs_interval(scale: Scale) -> Vec<Table> {
    let trace = scale.system_trace(42);
    let rt = realtime_baseline(&trace);
    let mut table = Table::new(
        "E7",
        "ad energy vs. prefetch interval (vs. real-time baseline)",
        "prefetching cuts ad energy by >50%; savings are insensitive to the exact interval",
        &[
            "interval h",
            "energy J/impr",
            "savings",
            "cache hit",
            "syncs/user/day",
            "loss",
            "SLA viol",
        ],
    );
    table.push(vec![
        "realtime".into(),
        f(rt.energy_per_impression_j(), 2),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    let mut default_run = None;
    for interval_h in [1u64, 2, 4, 8, 12] {
        let pf = prefetch(&trace, |c| {
            c.prefetch_interval = SimDuration::from_hours(interval_h);
            c.deadline = SimDuration::from_hours(interval_h.max(12));
        });
        table.push(vec![
            interval_h.to_string(),
            f(pf.energy_per_impression_j(), 2),
            pct(pf.energy_savings_vs(&rt)),
            pct(pf.cache_hit_rate()),
            f(pf.syncs_per_user_day(), 1),
            pct(pf.revenue_loss_vs(&rt)),
            pct(pf.sla_violation_rate()),
        ]);
        if interval_h == 2 {
            default_run = Some(pf);
        }
    }

    // Per-user distribution of the savings at the default interval: the
    // paper reports savings hold across users, not just on average.
    let mut cdf = Table::new(
        "E7b",
        "CDF of per-user ad energy savings (2 h interval)",
        "savings are broad-based: most users save, not just the heavy ones",
        &["percentile", "energy savings"],
    );
    let pf = default_run.expect("interval 2 is in the sweep");
    let savings = pf.per_user_savings_vs(&rt);
    let ecdf = adpf_stats::Ecdf::new(savings);
    for q in [0.05, 0.10, 0.25, 0.50, 0.75, 0.90] {
        cdf.push(vec![pct(q), pct(ecdf.quantile(q))]);
    }
    vec![table, cdf]
}

/// E8/E9: SLA violations and revenue loss versus overbooking
/// aggressiveness (the SLA target the planner aims for).
pub fn e8_e9_overbooking_sweep(scale: Scale) -> (Table, Table) {
    let trace = scale.system_trace(42);
    let rt = realtime_baseline(&trace);
    let mut sla = Table::new(
        "E8",
        "SLA violations vs. overbooking aggressiveness (greedy planner)",
        "replication drives violations toward the target residual",
        &["SLA target", "replicas/ad", "SLA viol", "expired", "sold"],
    );
    let mut loss = Table::new(
        "E9",
        "revenue loss vs. overbooking aggressiveness",
        "duplicates (the cost of replication) stay negligible thanks to holdback + cancellation",
        &[
            "SLA target",
            "replicas/ad",
            "duplicates",
            "dup/slot",
            "loss",
        ],
    );
    for target in [0.5, 0.8, 0.9, 0.95, 0.99] {
        let pf = prefetch(&trace, |c| c.sla_target = target);
        let advance_sold = pf.ledger.sold.saturating_sub(pf.realtime_fetches);
        let replicas_per_ad = if advance_sold == 0 {
            0.0
        } else {
            pf.replicas_assigned as f64 / advance_sold as f64
        };
        sla.push(vec![
            f(target, 2),
            f(replicas_per_ad, 2),
            pct(pf.sla_violation_rate()),
            pf.ledger.expired.to_string(),
            pf.ledger.sold.to_string(),
        ]);
        loss.push(vec![
            f(target, 2),
            f(replicas_per_ad, 2),
            pf.ledger.duplicates.to_string(),
            pct(pf.ledger.duplicates as f64 / pf.slots.max(1) as f64),
            pct(pf.revenue_loss_vs(&rt)),
        ]);
    }
    (sla, loss)
}

/// E10: sensitivity to the ad display deadline the exchange demands.
pub fn e10_deadline_sensitivity(scale: Scale) -> Table {
    let trace = scale.system_trace(42);
    let rt = realtime_baseline(&trace);
    let mut table = Table::new(
        "E10",
        "deadline sensitivity (2 h syncs)",
        "short deadlines strand inventory; by ~12-24 h violations and loss become negligible",
        &["deadline h", "SLA viol", "loss", "savings", "duplicates"],
    );
    for deadline_h in [2u64, 4, 8, 12, 24] {
        let pf = prefetch(&trace, |c| {
            c.deadline = SimDuration::from_hours(deadline_h);
        });
        table.push(vec![
            deadline_h.to_string(),
            pct(pf.sla_violation_rate()),
            pct(pf.revenue_loss_vs(&rt)),
            pct(pf.energy_savings_vs(&rt)),
            pf.ledger.duplicates.to_string(),
        ]);
    }
    table
}

/// E11: the energy-vs-revenue trade-off frontier, swept by sell margin
/// and sync interval.
pub fn e11_tradeoff_frontier(scale: Scale) -> Table {
    let trace = scale.system_trace(42);
    let rt = realtime_baseline(&trace);
    let mut table = Table::new(
        "E11",
        "energy savings vs. revenue loss frontier",
        "aggressive selling buys little energy and costs revenue; the knee sits near margin 1",
        &["interval h", "sell margin", "savings", "loss", "SLA viol"],
    );
    for interval_h in [1u64, 2, 4] {
        for margin in [0.5, 1.0, 1.5] {
            let pf = prefetch(&trace, |c| {
                c.prefetch_interval = SimDuration::from_hours(interval_h);
                c.sell_margin = margin;
            });
            table.push(vec![
                interval_h.to_string(),
                f(margin, 1),
                pct(pf.energy_savings_vs(&rt)),
                pct(pf.revenue_loss_vs(&rt)),
                pct(pf.sla_violation_rate()),
            ]);
        }
    }
    table
}

/// E12: how prediction quality propagates into system metrics.
pub fn e12_predictor_ablation(scale: Scale) -> Table {
    let trace = scale.system_trace(42);
    let rt = realtime_baseline(&trace);
    let mut table = Table::new(
        "E12",
        "predictor ablation inside the full system",
        "better client models raise cache hits and savings; the oracle bounds what prediction can buy",
        &["predictor", "savings", "cache hit", "loss", "SLA viol"],
    );
    let kinds = [
        PredictorKind::Zero,
        PredictorKind::GlobalRate,
        PredictorKind::TimeOfDay,
        PredictorKind::DayHour,
        PredictorKind::Markov,
        PredictorKind::Quantile(0.25),
        PredictorKind::Quantile(0.75),
        PredictorKind::SessionAware,
        PredictorKind::Oracle,
    ];
    for kind in kinds {
        let pf = prefetch(&trace, |c| c.predictor = kind);
        table.push(vec![
            kind.label(),
            pct(pf.energy_savings_vs(&rt)),
            pct(pf.cache_hit_rate()),
            pct(pf.revenue_loss_vs(&rt)),
            pct(pf.sla_violation_rate()),
        ]);
    }
    table
}

/// E13: replication-policy ablation.
pub fn e13_planner_ablation(scale: Scale) -> Table {
    let trace = scale.system_trace(42);
    let rt = realtime_baseline(&trace);
    let mut table = Table::new(
        "E13",
        "replication policy ablation",
        "no replication violates the SLA on risky ads; fixed factors overpay in duplicates; greedy sits between",
        &["planner", "replicas/ad", "SLA viol", "duplicates", "loss"],
    );
    let planners = [
        PlannerKind::NoReplication,
        PlannerKind::FixedK(1),
        PlannerKind::FixedK(2),
        PlannerKind::FixedK(4),
        PlannerKind::Greedy,
    ];
    for planner in planners {
        let pf = prefetch(&trace, |c| c.planner = planner);
        let advance_sold = pf.ledger.sold.saturating_sub(pf.realtime_fetches);
        let replicas_per_ad = if advance_sold == 0 {
            0.0
        } else {
            pf.replicas_assigned as f64 / advance_sold as f64
        };
        table.push(vec![
            planner.label(),
            f(replicas_per_ad, 2),
            pct(pf.sla_violation_rate()),
            pf.ledger.duplicates.to_string(),
            pct(pf.revenue_loss_vs(&rt)),
        ]);
    }
    table
}

/// Shared helper for integration tests: one quick prefetch-vs-realtime
/// pair on the given trace.
pub fn headline_pair(trace: &Trace) -> (SimReport, SimReport) {
    let rt = realtime_baseline(trace);
    let pf = prefetch(trace, |_| {});
    (rt, pf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_reproduces_the_headline() {
        let tables = e7_energy_vs_interval(Scale::Micro);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 6);
        // Every prefetch row saves substantial energy (the Micro trace is
        // cold-start dominated; Quick/Full land above 50%).
        for row in &t.rows[1..] {
            let savings: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(savings > 30.0, "interval {} savings {savings}", row[0]);
        }
        // The per-user CDF is monotone and the median user saves energy.
        let cdf = &tables[1];
        let median: f64 = cdf.rows[3][1].trim_end_matches('%').parse().unwrap();
        assert!(median > 20.0, "median per-user savings {median}%");
    }

    #[test]
    fn e8_replicas_grow_with_target() {
        let (sla, loss) = e8_e9_overbooking_sweep(Scale::Micro);
        let reps: Vec<f64> = sla.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            reps.last().unwrap() >= reps.first().unwrap(),
            "replicas {reps:?}"
        );
        // Duplicate share of slots stays small everywhere.
        for row in &loss.rows {
            let dup_share: f64 = row[3].trim_end_matches('%').parse().unwrap();
            assert!(dup_share < 5.0, "{row:?}");
        }
    }

    #[test]
    fn e10_long_deadlines_reduce_violations() {
        let t = e10_deadline_sensitivity(Scale::Micro);
        let viol: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].trim_end_matches('%').parse().unwrap())
            .collect();
        assert!(
            viol.last().unwrap() < viol.first().unwrap(),
            "violations {viol:?}"
        );
    }

    #[test]
    fn e12_oracle_beats_zero() {
        let t = e12_predictor_ablation(Scale::Micro);
        let get = |name: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[col]
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(get("oracle", 2) > get("zero", 2), "oracle hit rate wins");
    }

    #[test]
    fn e13_greedy_beats_no_replication_on_sla() {
        let t = e13_planner_ablation(Scale::Micro);
        let viol = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(viol("greedy") <= viol("none"));
    }
}
