//! E16: degraded-network sweep — outage intensity × retry policy.
//!
//! The paper evaluates prefetching under an ideal always-on network and
//! reports negligible SLA violations. This experiment asks what survives
//! contact with realistic mobile connectivity: per-client flaky links
//! (`adpf-netem`'s state machine) and correlated regional blackouts, under
//! client retry policies of increasing persistence. Every cell reports the
//! cost against the *ideal-network* prefetch baseline, so the deltas are
//! attributable to the network alone. Runs go through the sharded
//! simulator, which also exercises the netem determinism contract.

use adpf_core::{Simulator, SystemConfig};
use adpf_desim::SimDuration;
use adpf_netem::{NetemConfig, RetryPolicy};

use crate::scale::Scale;
use crate::table::{pct, Table};

/// The outage-intensity axis: plain flaky links, then a 6-hour blackout
/// two days in covering half or all of the population.
fn scenarios() -> Vec<(&'static str, NetemConfig)> {
    let blackout =
        |f: f64| NetemConfig::flaky_cellular().with_outage(48, SimDuration::from_hours(6), f);
    vec![
        ("flaky", NetemConfig::flaky_cellular()),
        ("blackout 50%", blackout(0.5)),
        ("blackout 100%", blackout(1.0)),
    ]
}

/// The retry-policy axis.
fn policies() -> Vec<(&'static str, RetryPolicy)> {
    vec![
        ("none", RetryPolicy::none()),
        ("capped-3", RetryPolicy::capped_exponential()),
        ("aggressive-6", RetryPolicy::aggressive()),
    ]
}

/// E16: SLA violations, revenue loss, and ad energy under degraded
/// networks, relative to the ideal-network prefetch baseline.
pub fn e16_degraded_network(scale: Scale, threads: usize) -> Table {
    let trace = scale.system_trace(42);
    let ideal_cfg = SystemConfig::prefetch_default(1);
    let ideal = Simulator::run_parallel(&ideal_cfg, &trace, threads);

    let mut table = Table::new(
        "E16",
        "degraded networks: outage intensity x retry policy",
        "deltas vs the ideal-network prefetch baseline (paper's operating point)",
        &[
            "scenario",
            "retries",
            "sync fail",
            "abandoned",
            "rescued",
            "cache hit",
            "SLA viol",
            "loss",
            "energy d",
        ],
    );
    table.push(vec![
        "ideal".into(),
        "-".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        pct(ideal.cache_hit_rate()),
        pct(ideal.sla_violation_rate()),
        pct(0.0),
        pct(0.0),
    ]);
    for (scenario, netem) in scenarios() {
        for (policy, retry) in policies() {
            let mut cfg = ideal_cfg.clone();
            cfg.netem = netem.clone().with_retry(retry);
            let r = Simulator::run_parallel(&cfg, &trace, threads);
            let energy_delta = if ideal.energy.total_j() > 0.0 {
                r.energy.total_j() / ideal.energy.total_j() - 1.0
            } else {
                0.0
            };
            table.push(vec![
                scenario.to_string(),
                policy.to_string(),
                r.netem.sync_failures.to_string(),
                r.netem.syncs_abandoned.to_string(),
                r.netem.ads_rescued.to_string(),
                pct(r.cache_hit_rate()),
                pct(r.sla_violation_rate()),
                pct(r.revenue_loss_vs(&ideal)),
                pct(energy_delta),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &Table, scenario: &str, policy: &str, col: usize) -> f64 {
        t.rows
            .iter()
            .find(|r| r[0] == scenario && r[1] == policy)
            .unwrap_or_else(|| panic!("row {scenario}/{policy}"))[col]
            .trim_end_matches('%')
            .parse()
            .unwrap()
    }

    #[test]
    fn e16_shape_and_directional_effects() {
        let t = e16_degraded_network(Scale::Micro, 2);
        assert_eq!(t.rows.len(), 1 + 3 * 3, "ideal + 3 scenarios x 3 policies");

        // Degraded links must actually fail syncs.
        assert!(cell(&t, "flaky", "capped-3", 2) > 0.0);
        // A no-retry client abandons every failed sync; persistent
        // clients abandon no more than it under identical weather.
        assert!(
            cell(&t, "flaky", "none", 3) >= cell(&t, "flaky", "aggressive-6", 3),
            "persistence cannot increase abandonment"
        );
        // The full blackout strands more syncs than plain flaky links
        // under the same policy.
        assert!(cell(&t, "blackout 100%", "capped-3", 2) > cell(&t, "flaky", "capped-3", 2));
        // The ideal network is the SLA floor for a no-retry client under
        // a full blackout (micro-scale noise can invert subtler cells).
        let ideal_sla: f64 = t.rows[0][6].trim_end_matches('%').parse().unwrap();
        assert!(cell(&t, "blackout 100%", "none", 6) >= ideal_sla);
    }

    #[test]
    fn e16_is_deterministic_across_thread_counts() {
        let a = e16_degraded_network(Scale::Micro, 1);
        let b = e16_degraded_network(Scale::Micro, 4);
        assert_eq!(a.rows, b.rows);
    }
}
