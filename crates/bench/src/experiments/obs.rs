//! E18: observability breakdown — where a smoke run spends its time and
//! what the metric registry sees at every layer.
//!
//! Unlike E1–E17, which reproduce figures from the paper, E18 documents
//! the harness itself: the pipeline-phase wall-clock split (trace
//! generation, per-shard setup, event loops, merge) and the
//! simulated-event counters the observability layer collects across
//! desim, netem, overbooking, and energy. The wall-clock column is
//! host-dependent by nature; everything in the `count` column is
//! deterministic and thread-count-independent.

use std::time::Instant;

use adpf_core::{Simulator, SystemConfig};
use adpf_netem::NetemConfig;
use adpf_obs::ObsSink;

use crate::scale::Scale;
use crate::table::{f, Table};

/// E18: phase timings and cross-layer counters from one observed run.
pub fn e18_observability_breakdown(scale: Scale, threads: usize) -> Table {
    let t_gen = Instant::now();
    let trace = scale.system_trace(42);
    let gen_ms = t_gen.elapsed().as_secs_f64() * 1e3;

    let mut cfg = SystemConfig::prefetch_default(1);
    cfg.netem = NetemConfig::flaky_cellular();
    let (report, reg) = Simulator::run_parallel_observed(&cfg, &trace, threads);
    reg.add_time_ns("phase.trace_gen", (gen_ms * 1e6) as u64);

    let mut table = Table::new(
        "E18",
        "observability breakdown: phase timings and layer counters",
        "phase.* columns are wall-clock (host-dependent); counts are deterministic",
        &["metric", "layer", "wall ms", "count"],
    );
    let ms = |ns: u64| f(ns as f64 / 1e6, 2);
    for phase in [
        "phase.trace_gen",
        "phase.shard_setup",
        "phase.event_loop",
        "phase.merge",
    ] {
        table.push(vec![
            phase.into(),
            "pipeline".into(),
            ms(reg.time_ns(phase)),
            "-".into(),
        ]);
    }
    let counters = [
        ("sim.event.slot", "desim"),
        ("sim.event.sync", "desim"),
        ("sim.event.retry", "desim"),
        ("sim.pool.candidates_scored", "core"),
        ("netem.attempts", "netem"),
        ("netem.backoffs", "netem"),
        ("overbooking.rescues", "overbooking"),
        ("overbooking.first_displays", "overbooking"),
    ];
    for (name, layer) in counters {
        table.push(vec![
            name.into(),
            layer.into(),
            "-".into(),
            reg.counter_value(name).to_string(),
        ]);
    }
    // One histogram summarized by its mean: per-user radio-active time.
    if let Some(h) = reg.histogram_snapshot("energy.user.active_ms") {
        table.push(vec![
            "energy.user.active_ms (mean)".into(),
            "energy".into(),
            "-".into(),
            f(h.mean(), 0),
        ]);
    }
    table.push(vec![
        "sim.slots (report)".into(),
        "core".into(),
        "-".into(),
        report.slots.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_counters_are_live_and_deterministic() {
        let a = e18_observability_breakdown(Scale::Micro, 1);
        let b = e18_observability_breakdown(Scale::Micro, 4);
        // Wall-clock columns differ; the count column must not.
        let counts = |t: &Table| {
            t.rows
                .iter()
                .map(|r| (r[0].clone(), r[3].clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(counts(&a), counts(&b));
        let count_of = |t: &Table, name: &str| -> u64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name}"))[3]
                .parse()
                .unwrap()
        };
        assert!(count_of(&a, "sim.event.slot") > 0);
        assert!(count_of(&a, "netem.attempts") > 0);
        assert_eq!(
            count_of(&a, "sim.event.slot"),
            count_of(&a, "sim.slots (report)")
        );
    }
}
