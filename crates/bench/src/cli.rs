//! Argument parsing for the `simulate` binary, split out of the binary so
//! the parser is unit-testable (no process exit, no I/O).

use adpf_auction::{MarketplaceConfig, PriceFloors, PricingRule};
use adpf_core::{DeliveryMode, PlannerKind, SystemConfig};
use adpf_desim::SimDuration;
use adpf_energy::profiles;
use adpf_netem::{NetemConfig, RetryPolicy};
use adpf_prediction::PredictorKind;
use adpf_scenario::{ScenarioPopulation, ScenarioSpec};
use adpf_traces::PopulationConfig;

/// Parsed `simulate` options, with defaults applied.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateOpts {
    /// CSV trace path; `None` uses the synthetic `preset`.
    pub trace: Option<String>,
    /// Synthetic population preset (`iphone`, `wp`, `small`).
    pub preset: String,
    /// Delivery mode: `realtime`, `prefetch`, or `both`.
    pub mode: String,
    /// Sync period in hours.
    pub interval_h: u64,
    /// Display deadline in hours.
    pub deadline_h: u64,
    /// SLA target probability.
    pub sla: f64,
    /// Predictor name (see [`parse_predictor`]).
    pub predictor: String,
    /// Planner name (see [`parse_planner`]).
    pub planner: String,
    /// Radio profile name (`3g`, `lte`, `wifi`).
    pub radio: String,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the sharded simulator.
    pub threads: usize,
    /// Network emulation preset (`off`, `flaky`, `degraded`, `blackout`).
    pub netem: String,
    /// Override of the netem retry budget (`None` keeps the preset's).
    pub netem_retries: Option<u32>,
    /// Marketplace regime (`off`, `static`, `paced`).
    pub marketplace: String,
    /// Override of the pricing rule (`first`, `second`; `None` keeps the
    /// regime's default). Requires `--marketplace` other than `off`.
    pub pricing: Option<String>,
    /// Uniform price floor for both slot kinds (`None` = no floor).
    /// Requires `--marketplace` other than `off`.
    pub floor: Option<f64>,
    /// Run the bounded-memory streaming pipeline: each shard generates
    /// (synthetic presets) or re-reads from the CSV file (recorded
    /// traces) only its own user range, so the full trace never exists
    /// in memory. Reports are byte-identical to the default path.
    pub stream: bool,
    /// Population-size override for synthetic presets (`None` keeps the
    /// preset's). This is how million-user runs are requested.
    pub users: Option<u32>,
    /// Trace-length override in days for synthetic presets.
    pub days: Option<u32>,
    /// Scenario preset (`mixed`, `churn`, `flashcrowd`; `None` runs the
    /// plain population). Shapes the synthetic trace *and* enables the
    /// engine's scenario layer (device classes, data-plan caps, cell
    /// ceiling, user-cost metrics) with the matching assignment seed.
    pub scenario: Option<String>,
    /// Print the metric registry as a table after each run.
    pub metrics: bool,
    /// Write the metric registry as JSON lines to this path (implies
    /// metric collection, independent of `metrics`).
    pub metrics_out: Option<String>,
}

impl Default for SimulateOpts {
    fn default() -> Self {
        Self {
            trace: None,
            preset: "small".into(),
            mode: "both".into(),
            interval_h: 2,
            deadline_h: 12,
            sla: 0.95,
            predictor: "session".into(),
            planner: "greedy".into(),
            radio: "3g".into(),
            seed: 1,
            threads: 1,
            netem: "off".into(),
            netem_retries: None,
            marketplace: "off".into(),
            pricing: None,
            floor: None,
            stream: false,
            users: None,
            days: None,
            scenario: None,
            metrics: false,
            metrics_out: None,
        }
    }
}

/// Why parsing did not produce options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was requested.
    Help,
    /// The arguments are unusable, with a human-readable reason.
    Invalid(String),
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CliError::Help => f.write_str("help requested"),
            CliError::Invalid(reason) => f.write_str(reason),
        }
    }
}

fn invalid(reason: impl Into<String>) -> CliError {
    CliError::Invalid(reason.into())
}

/// Parses `simulate` arguments (without the program name).
///
/// Every enumerated value (`--mode`, `--predictor`, `--planner`,
/// `--radio`, `--preset`) is validated here, so a typo fails fast with a
/// message instead of surfacing after a long trace load.
pub fn parse_simulate_args(args: &[String]) -> Result<SimulateOpts, CliError> {
    let mut o = SimulateOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(CliError::Help);
        }
        // Boolean flags take no value; handle them before the value fetch.
        if flag == "--metrics" {
            o.metrics = true;
            i += 1;
            continue;
        }
        if flag == "--stream" {
            o.stream = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| invalid(format!("flag `{flag}` is missing its value")))?;
        let parse_err = |name: &str| invalid(format!("invalid `{name}` value `{value}`"));
        match flag {
            "--trace" => o.trace = Some(value.clone()),
            "--preset" => o.preset = value.clone(),
            "--mode" => o.mode = value.clone(),
            "--interval-h" => {
                o.interval_h = value.parse().map_err(|_| parse_err("--interval-h"))?
            }
            "--deadline-h" => {
                o.deadline_h = value.parse().map_err(|_| parse_err("--deadline-h"))?
            }
            "--sla" => o.sla = value.parse().map_err(|_| parse_err("--sla"))?,
            "--predictor" => o.predictor = value.clone(),
            "--planner" => o.planner = value.clone(),
            "--radio" => o.radio = value.clone(),
            "--seed" => o.seed = value.parse().map_err(|_| parse_err("--seed"))?,
            "--threads" => o.threads = value.parse().map_err(|_| parse_err("--threads"))?,
            "--netem" => o.netem = value.clone(),
            "--netem-retries" => {
                o.netem_retries = Some(value.parse().map_err(|_| parse_err("--netem-retries"))?)
            }
            "--marketplace" => o.marketplace = value.clone(),
            "--pricing" => o.pricing = Some(value.clone()),
            "--floor" => o.floor = Some(value.parse().map_err(|_| parse_err("--floor"))?),
            "--users" => o.users = Some(value.parse().map_err(|_| parse_err("--users"))?),
            "--days" => o.days = Some(value.parse().map_err(|_| parse_err("--days"))?),
            "--scenario" => o.scenario = Some(value.clone()),
            "--metrics-out" => o.metrics_out = Some(value.clone()),
            other => return Err(invalid(format!("unknown flag `{other}`"))),
        }
        i += 2;
    }
    if !matches!(o.mode.as_str(), "realtime" | "prefetch" | "both") {
        return Err(invalid(format!("unknown mode `{}`", o.mode)));
    }
    if o.trace.is_none() && !matches!(o.preset.as_str(), "iphone" | "wp" | "small") {
        return Err(invalid(format!("unknown preset `{}`", o.preset)));
    }
    if o.threads == 0 {
        return Err(invalid("--threads must be at least 1"));
    }
    parse_predictor(&o.predictor).map_err(CliError::Invalid)?;
    parse_planner(&o.planner).map_err(CliError::Invalid)?;
    if !matches!(o.radio.as_str(), "3g" | "lte" | "wifi") {
        return Err(invalid(format!("unknown radio `{}`", o.radio)));
    }
    parse_netem(&o.netem).map_err(CliError::Invalid)?;
    parse_marketplace(&o.marketplace).map_err(CliError::Invalid)?;
    if let Some(p) = &o.pricing {
        parse_pricing(p).map_err(CliError::Invalid)?;
    }
    if let Some(f) = o.floor {
        if !(f.is_finite() && f >= 0.0) {
            return Err(invalid(format!("--floor {f} must be finite and >= 0")));
        }
    }
    // Population overrides regenerate from a synthetic preset; a CSV
    // trace already fixes its own shape, so combining them would
    // silently ignore one side. Reject instead. (`--stream` combines
    // with both: synthetic presets regenerate per shard, recorded
    // traces re-read the file per shard through `read_trace_shard`.)
    if o.trace.is_some() && (o.users.is_some() || o.days.is_some()) {
        return Err(invalid(
            "--users/--days override a synthetic --preset, not --trace",
        ));
    }
    // A scenario shapes the *synthetic* trace and keys class assignment
    // on the population seed; a CSV trace fixes its own sessions and has
    // no such seed, so the combination would silently half-apply.
    if let Some(name) = &o.scenario {
        ScenarioSpec::parse_preset(name).map_err(CliError::Invalid)?;
        if o.trace.is_some() {
            return Err(invalid(
                "--scenario shapes a synthetic --preset, not --trace",
            ));
        }
    }
    if o.days == Some(0) {
        return Err(invalid("--days must be at least 1"));
    }
    Ok(o)
}

/// Resolves the synthetic population for parsed options: the `--preset`
/// shape with any `--users`/`--days` overrides applied. Errors when the
/// options name a CSV trace instead (callers handle that path
/// separately).
pub fn build_population(o: &SimulateOpts) -> Result<PopulationConfig, String> {
    if o.trace.is_some() {
        return Err("a CSV trace has no synthetic population".into());
    }
    let mut pop = match o.preset.as_str() {
        "iphone" => PopulationConfig::iphone_like(o.seed),
        "wp" => PopulationConfig::windows_phone_like(o.seed),
        "small" => PopulationConfig::small_test(o.seed),
        other => return Err(format!("unknown preset `{other}`")),
    };
    if let Some(users) = o.users {
        pop.num_users = users;
    }
    if let Some(days) = o.days {
        pop.days = days;
    }
    Ok(pop)
}

/// Resolves the scenario population for parsed options: the synthetic
/// population wrapped with the `--scenario` preset's spec. `Ok(None)`
/// when no scenario was requested.
pub fn build_scenario(o: &SimulateOpts) -> Result<Option<ScenarioPopulation>, String> {
    let Some(name) = &o.scenario else {
        return Ok(None);
    };
    let spec = ScenarioSpec::parse_preset(name)?;
    Ok(Some(ScenarioPopulation::new(build_population(o)?, spec)))
}

/// Resolves a netem preset name (delegates to
/// [`NetemConfig::parse_preset`], the canonical parser).
pub fn parse_netem(name: &str) -> Result<NetemConfig, String> {
    NetemConfig::parse_preset(name)
}

/// Resolves a marketplace regime name (delegates to
/// [`MarketplaceConfig::parse_regime`], the canonical parser).
pub fn parse_marketplace(name: &str) -> Result<MarketplaceConfig, String> {
    MarketplaceConfig::parse_regime(name)
}

/// Resolves a pricing-rule name (delegates to [`PricingRule::parse`],
/// the canonical parser).
pub fn parse_pricing(name: &str) -> Result<PricingRule, String> {
    PricingRule::parse(name)
}

/// Resolves a predictor name (delegates to [`PredictorKind::parse`],
/// the canonical parser).
pub fn parse_predictor(name: &str) -> Result<PredictorKind, String> {
    PredictorKind::parse(name)
}

/// Resolves a planner name (delegates to [`PlannerKind::parse`], the
/// canonical parser).
pub fn parse_planner(name: &str) -> Result<PlannerKind, String> {
    PlannerKind::parse(name)
}

/// Builds the validated [`SystemConfig`] for one delivery mode from
/// parsed options.
pub fn build_config(o: &SimulateOpts, mode: DeliveryMode) -> Result<SystemConfig, String> {
    let mut cfg = match mode {
        DeliveryMode::RealTime => SystemConfig::realtime(o.seed),
        DeliveryMode::Prefetch => SystemConfig::prefetch_default(o.seed),
    };
    cfg.prefetch_interval = SimDuration::from_hours(o.interval_h);
    cfg.deadline = SimDuration::from_hours(o.deadline_h);
    cfg.sla_target = o.sla;
    cfg.predictor = parse_predictor(&o.predictor)?;
    cfg.planner = parse_planner(&o.planner)?;
    cfg.radio = profiles::by_name(&o.radio)?;
    cfg.netem = parse_netem(&o.netem)?;
    if let Some(n) = o.netem_retries {
        if !cfg.netem.enabled {
            return Err("--netem-retries requires a --netem preset other than `off`".into());
        }
        cfg.netem.retry = RetryPolicy {
            max_retries: n,
            ..cfg.netem.retry
        };
    }
    cfg.marketplace = parse_marketplace(&o.marketplace)?;
    if let Some(p) = &o.pricing {
        if !cfg.marketplace.enabled {
            return Err("--pricing requires a --marketplace regime other than `off`".into());
        }
        cfg.marketplace.pricing = parse_pricing(p)?;
    }
    if let Some(f) = o.floor {
        if !cfg.marketplace.enabled {
            return Err("--floor requires a --marketplace regime other than `off`".into());
        }
        cfg.marketplace.floors = PriceFloors::uniform(f);
    }
    if let Some(name) = &o.scenario {
        let spec = ScenarioSpec::parse_preset(name)?;
        // The population seed is `o.seed` (see `build_population`), so
        // the engine's class assignment matches the trace generator's.
        // An explicit `--netem` preset wins over the scenario's binding,
        // so the two flags compose instead of silently clobbering.
        let explicit_netem = (o.netem != "off").then(|| cfg.netem.clone());
        spec.apply_to(&mut cfg, o.seed);
        if let Some(netem) = explicit_netem {
            cfg.netem = netem;
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_yield_defaults() {
        let o = parse_simulate_args(&[]).unwrap();
        assert_eq!(o, SimulateOpts::default());
    }

    #[test]
    fn threads_flag_is_accepted() {
        let o = parse_simulate_args(&argv("--preset iphone --threads 4")).unwrap();
        assert_eq!(o.threads, 4);
        assert_eq!(o.preset, "iphone");
    }

    #[test]
    fn zero_threads_are_rejected() {
        let err = parse_simulate_args(&argv("--threads 0")).unwrap_err();
        assert!(matches!(err, CliError::Invalid(r) if r.contains("--threads")));
    }

    #[test]
    fn unknown_mode_is_rejected() {
        let err = parse_simulate_args(&argv("--mode warp")).unwrap_err();
        assert_eq!(err, CliError::Invalid("unknown mode `warp`".into()));
    }

    #[test]
    fn unknown_planner_is_rejected() {
        let err = parse_simulate_args(&argv("--planner quantum")).unwrap_err();
        assert_eq!(err, CliError::Invalid("unknown planner `quantum`".into()));
        // fixed-K with junk K is also a reject, not a silent default.
        assert!(parse_simulate_args(&argv("--planner fixed-x")).is_err());
        assert_eq!(parse_planner("fixed-3"), Ok(PlannerKind::FixedK(3)));
    }

    #[test]
    fn unknown_flag_predictor_radio_preset_are_rejected() {
        assert!(parse_simulate_args(&argv("--bogus 1")).is_err());
        assert!(parse_simulate_args(&argv("--predictor psychic")).is_err());
        assert!(parse_simulate_args(&argv("--radio 5g")).is_err());
        assert!(parse_simulate_args(&argv("--preset android")).is_err());
    }

    #[test]
    fn missing_value_and_help_are_distinct() {
        assert!(matches!(
            parse_simulate_args(&argv("--seed")),
            Err(CliError::Invalid(_))
        ));
        assert_eq!(parse_simulate_args(&argv("--help")), Err(CliError::Help));
    }

    #[test]
    fn build_config_honors_parsed_options() {
        let o = parse_simulate_args(&argv(
            "--interval-h 4 --deadline-h 12 --sla 0.9 --predictor oracle --planner none --radio lte",
        ))
        .unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert_eq!(cfg.prefetch_interval, SimDuration::from_hours(4));
        assert_eq!(cfg.sla_target, 0.9);
        assert_eq!(cfg.planner, PlannerKind::NoReplication);
        assert_eq!(cfg.radio.name, "LTE");
    }

    #[test]
    fn netem_flags_parse_and_reach_the_config() {
        let o = parse_simulate_args(&argv("--netem flaky --netem-retries 5")).unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(cfg.netem.enabled);
        assert_eq!(cfg.netem.name, "flaky");
        assert_eq!(cfg.netem.retry.max_retries, 5);

        let blackout = parse_simulate_args(&argv("--netem blackout")).unwrap();
        let cfg = build_config(&blackout, DeliveryMode::Prefetch).unwrap();
        assert_eq!(cfg.netem.outages.len(), 1);
    }

    #[test]
    fn netem_defaults_off_and_bad_values_are_rejected() {
        let o = parse_simulate_args(&[]).unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(!cfg.netem.enabled);

        assert!(parse_simulate_args(&argv("--netem lossy")).is_err());
        assert!(parse_simulate_args(&argv("--netem-retries many")).is_err());
        // Retries without an active preset would silently do nothing;
        // reject instead.
        let o = parse_simulate_args(&argv("--netem-retries 2")).unwrap();
        assert!(build_config(&o, DeliveryMode::Prefetch).is_err());
    }

    #[test]
    fn marketplace_flags_parse_and_reach_the_config() {
        let o = parse_simulate_args(&argv("--marketplace paced --pricing first --floor 0.0005"))
            .unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(cfg.marketplace.enabled);
        assert!(cfg.marketplace.paced);
        assert_eq!(cfg.marketplace.pricing, PricingRule::FirstPrice);
        assert_eq!(cfg.marketplace.floors, PriceFloors::uniform(0.0005));

        // The static regime applies floors/pricing without pacing.
        let o = parse_simulate_args(&argv("--marketplace static --pricing second")).unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(cfg.marketplace.enabled && !cfg.marketplace.paced);
    }

    #[test]
    fn marketplace_defaults_off_and_bad_values_are_rejected() {
        let o = parse_simulate_args(&[]).unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(!cfg.marketplace.enabled);

        assert!(parse_simulate_args(&argv("--marketplace chaotic")).is_err());
        assert!(parse_simulate_args(&argv("--pricing dutch")).is_err());
        assert!(parse_simulate_args(&argv("--floor -0.1")).is_err());
        assert!(parse_simulate_args(&argv("--floor cheap")).is_err());

        // Pricing/floor overrides without an active marketplace would
        // silently do nothing; reject instead, mirroring --netem-retries.
        let o = parse_simulate_args(&argv("--pricing first")).unwrap();
        assert!(build_config(&o, DeliveryMode::Prefetch).is_err());
        let o = parse_simulate_args(&argv("--floor 0.001")).unwrap();
        assert!(build_config(&o, DeliveryMode::Prefetch).is_err());
    }

    #[test]
    fn metrics_flags_parse() {
        // `--metrics` is a bare boolean: it must not swallow the flag
        // that follows it.
        let o = parse_simulate_args(&argv("--metrics --threads 4")).unwrap();
        assert!(o.metrics);
        assert_eq!(o.threads, 4);
        assert_eq!(o.metrics_out, None);

        let o = parse_simulate_args(&argv("--metrics-out out.jsonl")).unwrap();
        assert!(!o.metrics);
        assert_eq!(o.metrics_out.as_deref(), Some("out.jsonl"));

        let o = parse_simulate_args(&[]).unwrap();
        assert!(!o.metrics && o.metrics_out.is_none());
    }

    #[test]
    fn stream_and_population_flags_parse() {
        // `--stream` is a bare boolean: it must not swallow what follows.
        let o =
            parse_simulate_args(&argv("--stream --preset iphone --users 100000 --days 2")).unwrap();
        assert!(o.stream);
        assert_eq!(o.users, Some(100_000));
        assert_eq!(o.days, Some(2));
        let pop = build_population(&o).unwrap();
        assert_eq!((pop.num_users, pop.days), (100_000, 2));

        // Overrides default to the preset's own shape.
        let o = parse_simulate_args(&argv("--preset small")).unwrap();
        assert_eq!(
            build_population(&o).unwrap(),
            adpf_traces::PopulationConfig::small_test(o.seed)
        );
    }

    #[test]
    fn stream_and_overrides_reject_csv_traces_and_zero_days() {
        // Streaming a recorded trace is supported (per-shard file
        // re-reads); only the population overrides conflict with one.
        let o = parse_simulate_args(&argv("--trace t.csv --stream")).unwrap();
        assert!(o.stream && o.trace.is_some());
        assert!(parse_simulate_args(&argv("--trace t.csv --users 10")).is_err());
        assert!(parse_simulate_args(&argv("--trace t.csv --days 2")).is_err());
        assert!(parse_simulate_args(&argv("--days 0")).is_err());
        assert!(parse_simulate_args(&argv("--users many")).is_err());
        let o = parse_simulate_args(&argv("--trace t.csv")).unwrap();
        assert!(build_population(&o).is_err());
    }

    #[test]
    fn scenario_flag_parses_and_reaches_the_config() {
        let o = parse_simulate_args(&argv("--scenario mixed --seed 777")).unwrap();
        assert_eq!(o.scenario.as_deref(), Some("mixed"));
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(cfg.scenario.enabled);
        assert_eq!(
            cfg.scenario.assign_seed, 777,
            "assignment keys on the population seed"
        );
        assert_eq!(cfg.scenario.classes.len(), 3);
        let pop = build_scenario(&o).unwrap().unwrap();
        assert_eq!(pop.assign_seed(), 777);

        // No scenario: config layer off, no population wrapper.
        let o = parse_simulate_args(&[]).unwrap();
        assert!(
            !build_config(&o, DeliveryMode::Prefetch)
                .unwrap()
                .scenario
                .enabled
        );
        assert!(build_scenario(&o).unwrap().is_none());
    }

    #[test]
    fn scenario_flag_rejects_unknown_presets_and_csv_traces() {
        assert!(parse_simulate_args(&argv("--scenario rush-hour")).is_err());
        assert!(parse_simulate_args(&argv("--trace t.csv --scenario mixed")).is_err());
    }

    #[test]
    fn explicit_netem_wins_over_the_scenario_binding() {
        // flashcrowd binds flaky+outage; an explicit --netem degraded
        // must override it, while the default `off` accepts the binding.
        let o = parse_simulate_args(&argv("--scenario flashcrowd")).unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert!(cfg.netem.enabled);
        assert!(cfg.netem.name.contains("outage"));

        let o = parse_simulate_args(&argv("--scenario flashcrowd --netem degraded")).unwrap();
        let cfg = build_config(&o, DeliveryMode::Prefetch).unwrap();
        assert_eq!(cfg.netem.name, "degraded");
        assert!(
            cfg.scenario.cell.enabled,
            "cell ceiling survives the override"
        );
    }

    #[test]
    fn build_config_rejects_invalid_combinations() {
        // Parses fine, but violates a SystemConfig invariant
        // (deadline < interval): the validation error surfaces.
        let o = parse_simulate_args(&argv("--interval-h 8 --deadline-h 2")).unwrap();
        assert!(build_config(&o, DeliveryMode::Prefetch).is_err());
    }
}
