//! Fixed-seed throughput baselines: the repo's recorded perf trajectory.
//!
//! Every perf-sensitive PR runs the `baseline` binary, which replays
//! deterministic workloads and appends one measurement entry per
//! `(label, threads)` pair to `BENCH_baseline.json`. Because the
//! workloads are fixed-seed, entries recorded before and after a change
//! are directly comparable, and the report hash doubles as a determinism
//! check: an optimization that alters any simulated outcome — even one
//! bit of one float — changes the hash.

use std::io::{self, Read, Write};
use std::sync::mpsc;
use std::time::Instant;

use adpf_core::{SimReport, Simulator, SystemConfig};
use adpf_scenario::{ScenarioPopulation, ScenarioSpec};
use adpf_traces::{PopulationConfig, Trace};

/// A fixed-seed throughput workload.
///
/// The trace and config seeds are part of the workload identity: two
/// measurements are comparable only when every field here matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineWorkload {
    /// Workload name recorded with each measurement.
    pub name: &'static str,
    /// Population size.
    pub users: u32,
    /// Trace length in days.
    pub days: u32,
    /// Seed for trace generation.
    pub trace_seed: u64,
    /// Master seed for the simulator config.
    pub config_seed: u64,
}

impl BaselineWorkload {
    /// The E14-style throughput workload: an iPhone-shaped population
    /// large enough that a run takes O(seconds), replayed under the
    /// default prefetch config.
    pub fn e14_style() -> Self {
        Self {
            name: "e14-iphone-300u-7d",
            users: 300,
            days: 7,
            trace_seed: 42,
            config_seed: 1,
        }
    }

    /// A seconds-scale smoke workload for CI: small enough to run in a
    /// quick gate, still exercising every simulator subsystem.
    pub fn smoke() -> Self {
        Self {
            name: "smoke-small-777",
            users: 0, // Population comes from `small_test`; users unused.
            days: 0,
            trace_seed: 777,
            config_seed: 5,
        }
    }

    /// The online-serving workload (`--workload serve`): the smoke
    /// trace serialized to the wire protocol and replayed through
    /// [`adpf_serve::serve`]. Same seeds as [`BaselineWorkload::smoke`],
    /// so every recorded serve entry is held to the batch smoke golden
    /// hash — the throughput columns measure the ingest path, not a
    /// different simulation.
    pub fn serve_smoke() -> Self {
        Self {
            name: "serve-smoke-777",
            users: 0, // Population comes from `small_test`; users unused.
            days: 0,
            trace_seed: 777,
            config_seed: 5,
        }
    }

    /// A population-scale workload for the streaming pipeline: too big
    /// to measure comfortably materialized, routine when each shard
    /// generates and consumes its own user range.
    pub fn scale_100k() -> Self {
        Self {
            name: "scale-iphone-100k-2d",
            users: 100_000,
            days: 2,
            trace_seed: 42,
            config_seed: 1,
        }
    }

    /// The million-user variant of [`BaselineWorkload::scale_100k`].
    /// Streaming-only in practice: materializing this trace costs tens
    /// of gigabytes, while the streaming pipeline holds one shard
    /// (≈2k users) per worker thread.
    pub fn scale_1m() -> Self {
        Self {
            name: "scale-iphone-1m-1d",
            users: 1_000_000,
            days: 1,
            trace_seed: 42,
            config_seed: 1,
        }
    }

    /// The paced-serving workload: the smoke trace replayed through the
    /// server at a fixed sub-saturation event rate instead of as fast
    /// as the server drains it, so the recorded latency percentiles
    /// measure per-decision cost without ingest queueing. Same seeds as
    /// [`BaselineWorkload::smoke`], same golden hash.
    pub fn serve_smoke_paced() -> Self {
        Self {
            name: "serve-smoke-777-paced",
            users: 0, // Population comes from `small_test`; users unused.
            days: 0,
            trace_seed: 777,
            config_seed: 5,
        }
    }

    /// The scenario-layer variant of [`BaselineWorkload::scale_100k`]:
    /// the same population run through the `mixed` device-class
    /// scenario, streamed, with `peak_rss_mb` recorded — the witness
    /// that the scenario layer preserves the bounded-memory contract.
    pub fn scale_100k_mixed() -> Self {
        Self {
            name: "scale-100k-mixed",
            users: 100_000,
            days: 2,
            trace_seed: 42,
            config_seed: 1,
        }
    }

    /// The `--mem-check` gate workload: big enough that materializing
    /// its full trace first would blow the gate's committed RSS
    /// ceiling several times over, small enough to stream through in
    /// seconds on a 1-CPU CI container.
    pub fn mem_check() -> Self {
        Self {
            name: "memcheck-iphone-100k-1d",
            users: 100_000,
            days: 1,
            trace_seed: 42,
            config_seed: 1,
        }
    }

    /// The workload's population config — the single source both
    /// pipelines generate from. The materialized path calls
    /// [`PopulationConfig::generate`]; the streaming path calls
    /// [`PopulationConfig::generate_shard`] per shard. Both produce the
    /// same users, so the two pipelines stay hash-comparable.
    pub fn population(&self) -> PopulationConfig {
        if self.name.contains("smoke") {
            PopulationConfig::small_test(self.trace_seed)
        } else {
            PopulationConfig {
                num_users: self.users,
                days: self.days,
                ..PopulationConfig::iphone_like(self.trace_seed)
            }
        }
    }

    /// The scenario the workload runs under, if any (`*-mixed`
    /// workloads use the canonical three-class device mix).
    pub fn scenario(&self) -> Option<ScenarioSpec> {
        self.name.contains("mixed").then(ScenarioSpec::mixed)
    }

    /// Generates the workload's trace.
    pub fn trace(&self) -> Trace {
        self.trace_threads(1)
    }

    /// Generates the workload's trace across `threads` OS threads —
    /// byte-identical to [`BaselineWorkload::trace`] at any count.
    pub fn trace_threads(&self, threads: usize) -> Trace {
        match self.scenario() {
            Some(spec) => {
                ScenarioPopulation::new(self.population(), spec).generate_parallel(threads)
            }
            None => self.population().generate_parallel(threads),
        }
    }

    /// Builds the workload's simulator config, with the scenario layer
    /// installed for scenario workloads (assignment keyed on the trace
    /// seed, exactly as the trace generator keys class membership).
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::prefetch_default(self.config_seed);
        if let Some(spec) = self.scenario() {
            spec.apply_to(&mut cfg, self.trace_seed);
        }
        cfg
    }
}

/// One recorded throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineMeasurement {
    /// Free-form label naming the code state (e.g. `pre-hotpath`).
    pub label: String,
    /// Workload name (see [`BaselineWorkload::name`]).
    pub workload: String,
    /// Worker threads used.
    pub threads: usize,
    /// Logical CPUs on the recording host. Wall-clock columns are only
    /// comparable between entries recorded on similar hardware; this
    /// stamp makes "similar" checkable instead of assumed.
    pub cpus: usize,
    /// Wall-clock seconds for the simulation run alone. Trace generation
    /// is timed separately in `gen_wall_s` and never charged to the
    /// simulator — `events_per_sec` divides by this field only.
    pub wall_s: f64,
    /// Wall-clock seconds spent generating the trace (at the same thread
    /// count), reported alongside so generation scaling is visible too.
    pub gen_wall_s: f64,
    /// Simulation events processed: slots plus syncs (taken, skipped,
    /// and dropped) — the unit of simulator work.
    pub events: u64,
    /// Ads placed (advance sales registered with the ledger).
    pub ads_placed: u64,
    /// `events / wall_s`.
    pub events_per_sec: f64,
    /// `ads_placed / wall_s`.
    pub ads_placed_per_sec: f64,
    /// Wall-clock cost of metric collection on the smoke workload, in
    /// percent (observed vs plain run, min-of-N, clamped at zero). See
    /// [`measure_obs_overhead`].
    pub obs_overhead_pct: f64,
    /// Process peak RSS (kernel VmHWM) after the run, in MiB, or `0.0`
    /// where no `/proc` exposes it. A lifetime high-water mark: it
    /// bounds this run *plus* everything before it in the process, so
    /// the baseline binary measures memory-sensitive workloads first.
    pub peak_rss_mb: f64,
    /// FNV-1a hash of the canonical report bytes (determinism witness).
    pub report_hash: u64,
    /// Serving-path columns, present only for measurements taken
    /// through [`measure_serve`]; batch and streaming entries keep the
    /// historical line shape exactly.
    pub serve: Option<ServeColumns>,
}

/// The serve-only measurement columns: request throughput and the
/// enqueue-to-decision latency percentiles (upper bounds of the
/// log-linear histogram buckets — within 25% of the true sample, see
/// `adpf_obs::Histogram::quantile_upper_bound`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeColumns {
    /// Slot events decided by the server.
    pub requests: u64,
    /// `requests / wall_s`.
    pub requests_per_sec: f64,
    /// Median decision latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile decision latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile decision latency, microseconds.
    pub p99_us: u64,
}

impl BaselineMeasurement {
    /// Serializes the measurement as one JSON object on a single line.
    /// Serve-path entries append their extra columns after
    /// `report_hash`; every other entry keeps the historical shape.
    pub fn to_json_line(&self) -> String {
        let mut line = format!(
            concat!(
                "{{\"label\":\"{}\",\"workload\":\"{}\",\"threads\":{},",
                "\"cpus\":{},",
                "\"wall_s\":{:.4},\"gen_wall_s\":{:.4},",
                "\"events\":{},\"events_per_sec\":{:.0},",
                "\"ads_placed\":{},\"ads_placed_per_sec\":{:.0},",
                "\"obs_overhead_pct\":{:.2},",
                "\"peak_rss_mb\":{:.1},",
                "\"report_hash\":\"{:016x}\""
            ),
            self.label,
            self.workload,
            self.threads,
            self.cpus,
            self.wall_s,
            self.gen_wall_s,
            self.events,
            self.events_per_sec,
            self.ads_placed,
            self.ads_placed_per_sec,
            self.obs_overhead_pct,
            self.peak_rss_mb,
            self.report_hash,
        );
        if let Some(s) = &self.serve {
            line.push_str(&format!(
                concat!(
                    ",\"requests\":{},\"requests_per_sec\":{:.0},",
                    "\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}"
                ),
                s.requests, s.requests_per_sec, s.p50_us, s.p95_us, s.p99_us
            ));
        }
        line.push('}');
        line
    }
}

/// Runs `workload` once at `threads` worker threads and measures it.
///
/// Trace generation runs first, at the same thread count, under its own
/// timer (`gen_wall_s`); the simulation timer starts only once the trace
/// exists, so `events_per_sec` measures the simulator alone. The
/// returned numbers are wall-clock (noisy between machines); the
/// `report_hash` is exact and machine-independent.
pub fn measure(workload: &BaselineWorkload, threads: usize, label: &str) -> BaselineMeasurement {
    let t_gen = Instant::now();
    let trace = workload.trace_threads(threads);
    let gen_wall_s = t_gen.elapsed().as_secs_f64();
    let cfg = workload.config();
    let t0 = Instant::now();
    let report = Simulator::run_parallel(&cfg, &trace, threads);
    let wall_s = t0.elapsed().as_secs_f64();
    let mut m = measurement_from(&report, workload, threads, label, wall_s);
    m.gen_wall_s = gen_wall_s;
    m.peak_rss_mb = peak_rss_mb();
    m
}

/// Runs `workload` through the bounded-memory streaming pipeline
/// ([`Simulator::run_streaming`]) and measures it.
///
/// Shard count comes from [`adpf_core::default_shards`], exactly as the
/// `simulate --stream` path derives it, so recorded hashes match CLI
/// runs. Generation happens *inside* the pipeline (each shard generates
/// its own user range), so `gen_wall_s` here reports the summed
/// per-shard generation time observed by the `phase.trace_gen` span —
/// CPU-seconds of generation, not a separate wall-clock phase — and
/// `wall_s` covers the whole pipeline.
pub fn measure_streaming(
    workload: &BaselineWorkload,
    threads: usize,
    label: &str,
) -> BaselineMeasurement {
    let pop = workload.population();
    let cfg = workload.config();
    let n_shards = adpf_core::default_shards(pop.num_users);
    let scenario_pop = workload
        .scenario()
        .map(|spec| ScenarioPopulation::new(pop.clone(), spec));
    let t0 = Instant::now();
    let (report, reg) =
        Simulator::run_streaming_observed(&cfg, pop.num_users, n_shards, threads, |i| {
            match &scenario_pop {
                Some(sp) => sp.generate_shard(i, n_shards),
                None => pop.generate_shard(i, n_shards),
            }
        });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut m = measurement_from(&report, workload, threads, label, wall_s);
    m.gen_wall_s = reg.time_ns("phase.trace_gen") as f64 / 1e9;
    m.peak_rss_mb = peak_rss_mb();
    m
}

/// Replays `workload`'s trace through the online serving path
/// ([`adpf_serve::serve`]) and measures it: the load-generator half of
/// the closed loop, run in-process so the measurement excludes socket
/// transport and times parse + route + decide alone.
///
/// The trace is generated and serialized to the wire protocol up front
/// (both charged to `gen_wall_s`); `wall_s` covers only the server
/// draining the in-memory stream. The serve report is bit-identical to
/// the batch run of the same workload (`tests/serving.rs` proves it;
/// the recorded `report_hash` column is held to the same golden), and
/// the extra [`ServeColumns`] carry requests/s plus the p50/p95/p99
/// decision latencies from the server's log-linear histogram.
pub fn measure_serve(
    workload: &BaselineWorkload,
    threads: usize,
    label: &str,
) -> BaselineMeasurement {
    let cfg = workload.config();
    let t_gen = Instant::now();
    let trace = workload.trace_threads(threads);
    let mut stream = Vec::new();
    adpf_serve::write_events(&trace, cfg.ad_refresh, &mut stream)
        .expect("in-memory serialization cannot fail");
    let gen_wall_s = t_gen.elapsed().as_secs_f64();
    let mut opts = adpf_serve::ServeOptions::new(cfg);
    opts.threads = threads;
    opts.error_sample = 0;
    let t0 = Instant::now();
    let out = adpf_serve::serve(&opts, stream.as_slice())
        .expect("a generated trace stream always ingests cleanly");
    let wall_s = t0.elapsed().as_secs_f64();
    let mut m = measurement_from(&out.report, workload, threads, label, wall_s);
    m.gen_wall_s = gen_wall_s;
    m.peak_rss_mb = peak_rss_mb();
    let q = |p: f64| {
        out.registry
            .histogram_snapshot(adpf_serve::DECISION_LATENCY_METRIC)
            .map_or(0, |h| h.quantile_upper_bound(p))
    };
    m.serve = Some(ServeColumns {
        requests: out.requests,
        requests_per_sec: out.requests as f64 / wall_s.max(1e-9),
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
    });
    m
}

/// Replays `workload`'s trace through the online serving path at a
/// fixed sub-saturation event rate (`events_per_sec` wall-clock), the
/// paced counterpart of [`measure_serve`]. The paced writer runs on its
/// own thread and feeds the server through an in-memory pipe, so the
/// server experiences real inter-arrival gaps: the recorded latency
/// percentiles are per-decision cost without ingest queueing, and
/// `requests_per_sec` approximates the offered rate instead of the
/// drain rate. The report is still bit-identical to the batch run.
pub fn measure_serve_paced(
    workload: &BaselineWorkload,
    threads: usize,
    label: &str,
    events_per_sec: f64,
) -> BaselineMeasurement {
    let cfg = workload.config();
    let t_gen = Instant::now();
    let trace = workload.trace_threads(threads);
    let gen_wall_s = t_gen.elapsed().as_secs_f64();
    let refresh = cfg.ad_refresh;
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || {
        let mut w = ChannelWriter(tx);
        // The receiver hanging up (server error) surfaces as a short
        // write; the measurement below reports it through serve's own
        // error path, so the writer just stops.
        let _ = adpf_serve::write_events_paced(&trace, refresh, events_per_sec, &mut w);
    });
    let mut opts = adpf_serve::ServeOptions::new(cfg);
    opts.threads = threads;
    opts.error_sample = 0;
    let t0 = Instant::now();
    let out = adpf_serve::serve(&opts, io::BufReader::new(ChannelReader::new(rx)))
        .expect("a generated trace stream always ingests cleanly");
    let wall_s = t0.elapsed().as_secs_f64();
    writer.join().expect("paced writer thread cannot panic");
    let mut m = measurement_from(&out.report, workload, threads, label, wall_s);
    m.gen_wall_s = gen_wall_s;
    m.peak_rss_mb = peak_rss_mb();
    let q = |p: f64| {
        out.registry
            .histogram_snapshot(adpf_serve::DECISION_LATENCY_METRIC)
            .map_or(0, |h| h.quantile_upper_bound(p))
    };
    m.serve = Some(ServeColumns {
        requests: out.requests,
        requests_per_sec: out.requests as f64 / wall_s.max(1e-9),
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
    });
    m
}

/// Write half of the in-memory pipe behind [`measure_serve_paced`]:
/// each write becomes one channel message. `write_events_paced` flushes
/// before every sleep, so chunks reach the reader without buffering
/// delay on top of the pacing.
struct ChannelWriter(mpsc::Sender<Vec<u8>>);

impl Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "reader hung up"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Read half of the pipe: drains channel messages in order, reporting
/// EOF once the writer hangs up and the backlog is empty.
struct ChannelReader {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelReader {
    fn new(rx: mpsc::Receiver<Vec<u8>>) -> Self {
        Self {
            rx,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos == self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // Writer gone, backlog drained.
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Host CPU count as stamped into measurements (0 when undetectable).
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(0, |n| n.get())
}

/// Process peak RSS in MiB, or `0.0` where `/proc` is unavailable.
pub fn peak_rss_mb() -> f64 {
    adpf_obs::peak_rss_kb().map_or(0.0, |kb| kb as f64 / 1024.0)
}

/// Builds a measurement record from an already-produced report.
pub fn measurement_from(
    report: &SimReport,
    workload: &BaselineWorkload,
    threads: usize,
    label: &str,
    wall_s: f64,
) -> BaselineMeasurement {
    let events = report.slots + report.syncs + report.syncs_skipped + report.syncs_dropped;
    let ads_placed = report.ledger.sold;
    let denom = wall_s.max(1e-9);
    BaselineMeasurement {
        label: label.to_string(),
        workload: workload.name.to_string(),
        threads,
        cpus: host_cpus(),
        wall_s,
        gen_wall_s: 0.0,
        events,
        ads_placed,
        events_per_sec: events as f64 / denom,
        ads_placed_per_sec: ads_placed as f64 / denom,
        obs_overhead_pct: 0.0,
        peak_rss_mb: 0.0,
        report_hash: report_hash(report),
        serve: None,
    }
}

/// Result of [`measure_obs_overhead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsOverhead {
    /// `(observed - plain) / plain` in percent, min-of-N per mode,
    /// clamped at zero (timer noise on small workloads can make the
    /// observed run measure *faster*).
    pub overhead_pct: f64,
    /// Hash of the plain run's report.
    pub plain_hash: u64,
    /// Hash of the observed run's report — must equal `plain_hash`.
    pub observed_hash: u64,
}

/// Measures what metric collection costs: the smoke workload run plain
/// vs through [`Simulator::run_parallel_observed`], single-threaded,
/// taking the minimum wall time of `reps` repetitions per mode to shave
/// scheduler noise. The two modes alternate order between repetitions so
/// slow host-level drift (another process waking up mid-measurement)
/// cannot bias one side. The two report hashes come back so callers can
/// also assert that observation changed nothing.
pub fn measure_obs_overhead(reps: usize) -> ObsOverhead {
    let w = BaselineWorkload::smoke();
    let trace = w.trace();
    let cfg = w.config();
    let mut plain_best = f64::INFINITY;
    let mut observed_best = f64::INFINITY;
    let mut plain_hash = 0;
    let mut observed_hash = 0;
    let mut run_plain = |best: &mut f64| {
        let t0 = Instant::now();
        let r = Simulator::run_parallel(&cfg, &trace, 1);
        *best = best.min(t0.elapsed().as_secs_f64());
        plain_hash = report_hash(&r);
    };
    let mut run_observed = |best: &mut f64| {
        let t0 = Instant::now();
        let (r, _reg) = Simulator::run_parallel_observed(&cfg, &trace, 1);
        *best = best.min(t0.elapsed().as_secs_f64());
        observed_hash = report_hash(&r);
    };
    for rep in 0..reps.max(1) {
        if rep % 2 == 0 {
            run_plain(&mut plain_best);
            run_observed(&mut observed_best);
        } else {
            run_observed(&mut observed_best);
            run_plain(&mut plain_best);
        }
    }
    ObsOverhead {
        overhead_pct: ((observed_best - plain_best) / plain_best.max(1e-9) * 100.0).max(0.0),
        plain_hash,
        observed_hash,
    }
}

/// FNV-1a over a canonical byte serialization of every report field.
///
/// Any change to any simulated outcome — a counter, a float bit, a
/// per-user energy entry — changes this hash, which is what makes it a
/// cheap determinism witness for perf work. Delegates to
/// [`SimReport::stable_hash`], where the canonical serialization now
/// lives so `adpf-serve` can hash reports without depending on bench.
pub fn report_hash(r: &SimReport) -> u64 {
    r.stable_hash()
}

/// Extracts the entry lines of an existing `BENCH_baseline.json`.
///
/// The file is a JSON array with one object per line; this parser only
/// needs to split it back into those lines, so hand-rolled JSON stays
/// honest (we re-emit lines verbatim).
pub fn parse_entry_lines(contents: &str) -> Vec<String> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{'))
        .map(|l| l.trim_end_matches(',').to_string())
        .collect()
}

/// Renders entry lines back into the JSON-array file format.
pub fn render_file(entries: &[String]) -> String {
    if entries.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("  ");
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Appends `new` measurements to the JSON file at `path`, preserving
/// previously recorded entries verbatim.
pub fn append_to_file(path: &str, new: &[BaselineMeasurement]) -> io::Result<()> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(contents) => parse_entry_lines(&contents),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    entries.extend(new.iter().map(BaselineMeasurement::to_json_line));
    std::fs::write(path, render_file(&entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measurement_is_deterministic_across_threads() {
        let w = BaselineWorkload::smoke();
        let a = measure(&w, 1, "t");
        let b = measure(&w, 4, "t");
        assert_eq!(
            a.report_hash, b.report_hash,
            "hash must not depend on threads"
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.ads_placed, b.ads_placed);
        assert!(a.events > 0 && a.ads_placed > 0);
    }

    #[test]
    fn report_hash_is_sensitive_to_every_field_class() {
        let w = BaselineWorkload::smoke();
        let base = Simulator::run_parallel(&w.config(), &w.trace(), 1);
        let h0 = report_hash(&base);
        let mut counters = base.clone();
        counters.cache_hits += 1;
        assert_ne!(report_hash(&counters), h0);
        let mut floats = base.clone();
        // One ULP, not a fixed epsilon: the hash covers exact bit
        // patterns, and a fixed offset can round away at large values.
        floats.ledger.revenue = floats.ledger.revenue.next_up();
        assert_ne!(report_hash(&floats), h0);
        let mut series = base.clone();
        if let Some(e) = series.per_user_energy_j.first_mut() {
            *e = e.next_up();
        }
        assert_ne!(report_hash(&series), h0);
    }

    #[test]
    fn json_round_trip_preserves_existing_entries() {
        let m = BaselineMeasurement {
            label: "pre".into(),
            workload: "w".into(),
            threads: 1,
            cpus: 8,
            wall_s: 1.25,
            gen_wall_s: 0.5,
            events: 1000,
            ads_placed: 500,
            events_per_sec: 800.0,
            ads_placed_per_sec: 400.0,
            obs_overhead_pct: 1.25,
            peak_rss_mb: 123.4,
            report_hash: 0xdead_beef,
            serve: None,
        };
        let file = render_file(&[m.to_json_line()]);
        let lines = parse_entry_lines(&file);
        assert_eq!(lines, vec![m.to_json_line()]);
        // Appending keeps old lines byte-identical.
        let file2 = render_file(
            &lines
                .iter()
                .cloned()
                .chain([m.to_json_line()])
                .collect::<Vec<_>>(),
        );
        assert_eq!(parse_entry_lines(&file2).len(), 2);
        assert!(file2.contains("\"report_hash\":\"00000000deadbeef\""));
    }

    #[test]
    fn parallel_trace_generation_matches_and_is_timed_separately() {
        let w = BaselineWorkload::smoke();
        assert_eq!(
            w.trace(),
            w.trace_threads(4),
            "generation thread count must not change the trace"
        );
        let m = measure(&w, 2, "t");
        assert!(m.gen_wall_s > 0.0, "generation time must be recorded");
        assert!(m.wall_s > 0.0);
    }

    #[test]
    fn entry_line_is_valid_single_object() {
        let m = measure(&BaselineWorkload::smoke(), 1, "x");
        let line = m.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        for key in [
            "label",
            "workload",
            "threads",
            "cpus",
            "wall_s",
            "gen_wall_s",
            "events",
            "events_per_sec",
            "ads_placed",
            "ads_placed_per_sec",
            "obs_overhead_pct",
            "peak_rss_mb",
            "report_hash",
        ] {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }

    #[test]
    fn streaming_measure_matches_materialized_hash_and_stamps_host_facts() {
        let w = BaselineWorkload::smoke();
        let m = measure(&w, 1, "t");
        let s = measure_streaming(&w, 2, "t");
        assert_eq!(
            s.report_hash, m.report_hash,
            "streaming measure must reproduce the materialized hash"
        );
        assert_eq!(s.events, m.events);
        assert_eq!(s.cpus, host_cpus());
        assert!(s.gen_wall_s > 0.0, "trace_gen span must be recorded");
        if adpf_obs::peak_rss_kb().is_some() {
            assert!(m.peak_rss_mb > 0.0 && s.peak_rss_mb > 0.0);
        }
    }

    #[test]
    fn scale_workloads_describe_large_populations() {
        let w = BaselineWorkload::scale_100k();
        assert_eq!(w.population().num_users, 100_000);
        assert_eq!(
            BaselineWorkload::scale_1m().population().num_users,
            1_000_000
        );
        // The smoke population ignores `users`/`days` by design.
        assert_eq!(
            BaselineWorkload::smoke().population(),
            adpf_traces::PopulationConfig::small_test(777)
        );
    }

    #[test]
    fn serve_measure_reproduces_the_batch_hash_and_stamps_latency_columns() {
        let batch = measure(&BaselineWorkload::smoke(), 1, "t");
        let m = measure_serve(&BaselineWorkload::serve_smoke(), 2, "t");
        assert_eq!(
            m.report_hash, batch.report_hash,
            "serving the replayed stream must reproduce the batch report"
        );
        assert_eq!(m.events, batch.events, "event accounting must agree");
        let s = m.serve.expect("serve measurements carry serve columns");
        assert!(s.requests > 0 && s.requests_per_sec > 0.0);
        // Sub-microsecond decisions land in the zero bucket, so the
        // quantiles are only guaranteed monotone, not strictly positive.
        assert!(
            s.p50_us <= s.p95_us && s.p95_us <= s.p99_us,
            "quantiles must be monotone: {s:?}"
        );
        // Serve columns ride alongside the existing ones in the line.
        let line = m.to_json_line();
        for key in [
            "requests_per_sec",
            "p50_us",
            "p95_us",
            "p99_us",
            "events_per_sec",
        ] {
            assert!(line.contains(&format!("\"{key}\":")), "missing {key}");
        }
        // Batch entries keep the historical line shape exactly.
        assert!(!batch.to_json_line().contains("p99_us"));
    }

    #[test]
    fn mixed_workloads_install_the_scenario_on_both_halves() {
        let w = BaselineWorkload::scale_100k_mixed();
        assert!(w.scenario().is_some());
        let cfg = w.config();
        assert!(cfg.scenario.enabled);
        assert_eq!(cfg.scenario.assign_seed, w.trace_seed);
        assert_eq!(cfg.scenario.classes.len(), 3);
        // Every pre-existing workload stays scenario-free: their
        // recorded hashes must keep comparing against history.
        for w in [
            BaselineWorkload::smoke(),
            BaselineWorkload::serve_smoke(),
            BaselineWorkload::serve_smoke_paced(),
            BaselineWorkload::e14_style(),
            BaselineWorkload::scale_100k(),
            BaselineWorkload::mem_check(),
        ] {
            assert!(w.scenario().is_none(), "{} grew a scenario", w.name);
            assert!(!w.config().scenario.enabled);
        }
    }

    #[test]
    fn paced_serve_measure_reproduces_the_batch_hash() {
        // A rate far above the drain rate: the pacing sleeps vanish and
        // the test stays fast, while still exercising the writer-thread
        // pipe path end to end.
        let batch = measure(&BaselineWorkload::smoke(), 1, "t");
        let m = measure_serve_paced(&BaselineWorkload::serve_smoke_paced(), 2, "t", 1e9);
        assert_eq!(m.report_hash, batch.report_hash);
        let s = m.serve.expect("paced measurements carry serve columns");
        assert!(s.requests > 0);
    }

    #[test]
    fn obs_overhead_compares_identical_reports() {
        let o = measure_obs_overhead(2);
        assert_eq!(
            o.plain_hash, o.observed_hash,
            "observation must not change the smoke report"
        );
        assert!(o.overhead_pct >= 0.0, "overhead is clamped at zero");
    }
}
