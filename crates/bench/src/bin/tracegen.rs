//! Generates synthetic usage traces in the CSV trace format.
//!
//! Usage:
//!
//! ```text
//! tracegen --preset iphone --out trace.csv
//! tracegen --users 500 --days 14 --seed 7 --out trace.csv
//! tracegen --preset iphone --threads 4   # parallel generation, same bytes
//! tracegen --preset wp            # writes to stdout
//! tracegen --preset small --seed 777 --events | serve --seed 5   # serve wire stream
//! ```
//!
//! `--events` switches the output from the CSV trace format to the
//! newline-delimited serve protocol (`adpf_serve::protocol`): the
//! trace's ad-slot stream, globally time-sorted, ready to pipe into the
//! `serve` binary or any other ingest endpoint. `--refresh-ms` sets the
//! slot refresh cadence and defaults to the simulator's 30 s
//! `ad_refresh`, so the default stream replays exactly the slots the
//! batch simulator would decide.
//!
//! `--pace RATE` (with `--events`) throttles emission to RATE events per
//! wall-clock second — the sub-saturation load generator for serve
//! latency measurements. The bytes are identical to the unpaced stream.
//!
//! `--scenario mixed|churn|flashcrowd` applies the scenario's trace-side
//! transforms (device-class session shapes, churn, bursts) before
//! writing, so a downstream `serve --scenario` sees the matching stream.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;

use adpf_scenario::{ScenarioPopulation, ScenarioSpec};
use adpf_traces::{csv, PopulationConfig, Trace, TraceStats};

fn usage() {
    eprintln!(
        "usage: tracegen [--preset iphone|wp|small] [--users N] [--days N] [--seed N]\n\
         \x20               [--threads N] [--out FILE] [--events] [--refresh-ms N]\n\
         \x20               [--pace RATE] [--scenario mixed|churn|flashcrowd]\n\
         Generates a synthetic app-usage trace in the adprefetch CSV format,\n\
         or (with --events) the serve wire protocol for the `serve` binary.\n\
         --threads parallelizes generation; the output is identical at any count.\n\
         --pace throttles event emission to RATE events/s (requires --events)."
    );
}

/// Parsed command line; `None` means print usage and fail.
struct Opts {
    preset: String,
    users: Option<u32>,
    days: Option<u32>,
    seed: u64,
    threads: usize,
    out: Option<String>,
    events: bool,
    refresh_ms: u64,
    pace: Option<f64>,
    scenario: Option<String>,
}

fn parse(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        preset: "iphone".to_string(),
        users: None,
        days: None,
        seed: 42,
        threads: 1,
        out: None,
        events: false,
        refresh_ms: 30_000,
        pace: None,
        scenario: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return None;
        }
        if flag == "--events" {
            opts.events = true;
            i += 1;
            continue;
        }
        let value = args.get(i + 1)?;
        match flag {
            "--preset" => opts.preset = value.clone(),
            "--users" => opts.users = Some(value.parse().ok()?),
            "--days" => opts.days = Some(value.parse().ok()?),
            "--seed" => opts.seed = value.parse().ok()?,
            "--threads" => {
                opts.threads = value.parse().ok().filter(|&n| n >= 1)?;
            }
            "--refresh-ms" => {
                opts.refresh_ms = value.parse().ok().filter(|&n| n >= 1)?;
            }
            "--pace" => {
                opts.pace = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&r: &f64| r.is_finite() && r > 0.0)?,
                );
            }
            "--scenario" => opts.scenario = Some(value.clone()),
            "--out" => opts.out = Some(value.clone()),
            other => {
                eprintln!("unknown flag `{other}`");
                return None;
            }
        }
        i += 2;
    }
    Some(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse(&args) else {
        usage();
        return ExitCode::FAILURE;
    };

    let mut cfg = match opts.preset.as_str() {
        "iphone" => PopulationConfig::iphone_like(opts.seed),
        "wp" => PopulationConfig::windows_phone_like(opts.seed),
        "small" => PopulationConfig::small_test(opts.seed),
        other => {
            eprintln!("unknown preset `{other}` (expected iphone, wp, or small)");
            usage();
            return ExitCode::FAILURE;
        }
    };
    cfg.seed = opts.seed;
    if let Some(u) = opts.users {
        cfg.num_users = u;
    }
    if let Some(d) = opts.days {
        cfg.days = d;
    }
    if cfg.num_users == 0 || cfg.days == 0 {
        eprintln!("--users and --days must be positive");
        return ExitCode::FAILURE;
    }
    if opts.pace.is_some() && !opts.events {
        eprintln!("--pace throttles the serve event stream; it requires --events");
        return ExitCode::FAILURE;
    }

    let trace: Trace = match &opts.scenario {
        Some(name) => match ScenarioSpec::parse_preset(name) {
            Ok(spec) => ScenarioPopulation::new(cfg, spec).generate_parallel(opts.threads),
            Err(e) => {
                eprintln!("{e}");
                usage();
                return ExitCode::FAILURE;
            }
        },
        None => cfg.generate_parallel(opts.threads),
    };
    let refresh = adpf_desim::SimDuration::from_millis(opts.refresh_ms);
    let stats = TraceStats::compute(&trace, refresh);
    eprintln!(
        "generated {} users x {} days: {} sessions, {} ad slots ({:.1} slots/user/day)",
        stats.users, stats.days, stats.sessions, stats.slots, stats.slots_per_user_day.mean
    );

    // Either format streams through a writer; the serve protocol emits
    // the slot stream a server would ingest, CSV emits the sessions.
    let emit = |mut w: &mut dyn Write| -> io::Result<()> {
        if let Some(rate) = opts.pace {
            adpf_serve::write_events_paced(&trace, refresh, rate, &mut w)?;
        } else if opts.events {
            adpf_serve::write_events(&trace, refresh, &mut w)?;
        } else {
            csv::write_trace(&trace, &mut w).map_err(io::Error::other)?;
        }
        w.flush()
    };
    let result = match opts.out {
        Some(path) => File::create(&path).and_then(|file| emit(&mut BufWriter::new(file))),
        None => {
            let stdout = io::stdout();
            emit(&mut BufWriter::new(stdout.lock()))
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
