//! Generates synthetic usage traces in the CSV trace format.
//!
//! Usage:
//!
//! ```text
//! tracegen --preset iphone --out trace.csv
//! tracegen --users 500 --days 14 --seed 7 --out trace.csv
//! tracegen --preset iphone --threads 4   # parallel generation, same bytes
//! tracegen --preset wp            # writes to stdout
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;

use adpf_traces::{csv, PopulationConfig, TraceStats};

fn usage() {
    eprintln!(
        "usage: tracegen [--preset iphone|wp|small] [--users N] [--days N] [--seed N]\n\
         \x20               [--threads N] [--out FILE]\n\
         Generates a synthetic app-usage trace in the adprefetch CSV format.\n\
         --threads parallelizes generation; the output is identical at any count."
    );
}

/// Parsed command line; `None` means print usage and fail.
struct Opts {
    preset: String,
    users: Option<u32>,
    days: Option<u32>,
    seed: u64,
    threads: usize,
    out: Option<String>,
}

fn parse(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        preset: "iphone".to_string(),
        users: None,
        days: None,
        seed: 42,
        threads: 1,
        out: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return None;
        }
        let value = args.get(i + 1)?;
        match flag {
            "--preset" => opts.preset = value.clone(),
            "--users" => opts.users = Some(value.parse().ok()?),
            "--days" => opts.days = Some(value.parse().ok()?),
            "--seed" => opts.seed = value.parse().ok()?,
            "--threads" => {
                opts.threads = value.parse().ok().filter(|&n| n >= 1)?;
            }
            "--out" => opts.out = Some(value.clone()),
            other => {
                eprintln!("unknown flag `{other}`");
                return None;
            }
        }
        i += 2;
    }
    Some(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse(&args) else {
        usage();
        return ExitCode::FAILURE;
    };

    let mut cfg = match opts.preset.as_str() {
        "iphone" => PopulationConfig::iphone_like(opts.seed),
        "wp" => PopulationConfig::windows_phone_like(opts.seed),
        "small" => PopulationConfig::small_test(opts.seed),
        other => {
            eprintln!("unknown preset `{other}` (expected iphone, wp, or small)");
            usage();
            return ExitCode::FAILURE;
        }
    };
    cfg.seed = opts.seed;
    if let Some(u) = opts.users {
        cfg.num_users = u;
    }
    if let Some(d) = opts.days {
        cfg.days = d;
    }
    if cfg.num_users == 0 || cfg.days == 0 {
        eprintln!("--users and --days must be positive");
        return ExitCode::FAILURE;
    }

    let trace = cfg.generate_parallel(opts.threads);
    let stats = TraceStats::compute(&trace, adpf_desim::SimDuration::from_secs(30));
    eprintln!(
        "generated {} users x {} days: {} sessions, {} ad slots ({:.1} slots/user/day)",
        stats.users, stats.days, stats.sessions, stats.slots, stats.slots_per_user_day.mean
    );

    let result = match opts.out {
        Some(path) => File::create(&path)
            .map_err(adpf_traces::csv::CsvError::from)
            .and_then(|file| {
                let mut w = BufWriter::new(file);
                csv::write_trace(&trace, &mut w)?;
                w.flush().map_err(Into::into)
            }),
        None => {
            let stdout = io::stdout();
            let mut w = BufWriter::new(stdout.lock());
            csv::write_trace(&trace, &mut w).and_then(|()| w.flush().map_err(Into::into))
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("write failed: {e}");
            ExitCode::FAILURE
        }
    }
}
