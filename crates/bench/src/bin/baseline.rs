//! Records fixed-seed throughput baselines into `BENCH_baseline.json`.
//!
//! Usage:
//!
//! ```text
//! baseline --label pre-change             # measure and append to BENCH_baseline.json
//! baseline --label post --threads-list 1,4
//! baseline --smoke                        # CI gate: print the smoke report hash
//! ```
//!
//! `--smoke` runs the small fixed-seed workload at 1 and 4 threads,
//! verifies the reports are bit-identical, and prints
//! `smoke-hash: <hex>`; ci.sh compares that hash against the committed
//! golden value to catch determinism regressions from perf work.

use std::process::ExitCode;

use adpf_bench::baseline::{append_to_file, measure, BaselineWorkload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("current");
    let mut out = String::from("BENCH_baseline.json");
    let mut threads_list = vec![1usize, 4];
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: baseline [--smoke] [--label NAME] [--out PATH] [--threads-list 1,4]"
                );
                return ExitCode::SUCCESS;
            }
            flag @ ("--label" | "--out" | "--threads-list") => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("flag `{flag}` is missing its value");
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--label" => label = value.clone(),
                    "--out" => out = value.clone(),
                    _ => {
                        let parsed: Result<Vec<usize>, _> =
                            value.split(',').map(str::parse).collect();
                        match parsed {
                            Ok(t) if !t.is_empty() && t.iter().all(|&n| n >= 1) => threads_list = t,
                            _ => {
                                eprintln!("--threads-list wants comma-separated positives");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke {
        let w = BaselineWorkload::smoke();
        let a = measure(&w, 1, "smoke");
        let b = measure(&w, 4, "smoke");
        if a.report_hash != b.report_hash {
            eprintln!(
                "smoke FAILED: 1-thread hash {:016x} != 4-thread hash {:016x}",
                a.report_hash, b.report_hash
            );
            return ExitCode::FAILURE;
        }
        println!("smoke-hash: {:016x}", a.report_hash);
        return ExitCode::SUCCESS;
    }

    let w = BaselineWorkload::e14_style();
    let mut measurements = Vec::new();
    for &threads in &threads_list {
        let m = measure(&w, threads, &label);
        println!(
            "{} [{}] threads={}: {:.3}s wall, {:.0} events/s, {:.0} ads/s (hash {:016x})",
            m.label,
            m.workload,
            m.threads,
            m.wall_s,
            m.events_per_sec,
            m.ads_placed_per_sec,
            m.report_hash
        );
        measurements.push(m);
    }
    if let Err(e) = append_to_file(&out, &measurements) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("recorded {} entries into {out}", measurements.len());
    ExitCode::SUCCESS
}
