//! Records fixed-seed throughput baselines into `BENCH_baseline.json`.
//!
//! Usage:
//!
//! ```text
//! baseline --label pre-change             # measure and append to BENCH_baseline.json
//! baseline --label post --threads-list 1,2,4,8
//! baseline --label scale --workload scale-100k --stream --threads-list 1
//! baseline --label serving --workload serve --threads-list 2  # adds requests/s + latency columns
//! baseline --label paced --workload serve-paced --threads-list 2  # sub-saturation serve row
//! baseline --label scale --workload scale-100k-mixed --stream --threads-list 2
//! baseline --smoke                        # CI gate: print the smoke report hash
//! baseline --scenario-check               # CI gate: scenario-off golden + mixed determinism
//! baseline --scaling-check                # CI gate: 4 threads must beat 1 thread
//! baseline --obs-check --metrics-out m.jsonl  # CI gate: metrics change nothing
//! baseline --mem-check                    # CI gate: streaming stays bounded-memory
//! baseline --perf-check                   # CI gate: smoke throughput holds its floor
//! ```
//!
//! `--smoke` runs the small fixed-seed workload at 1 and 4 threads,
//! verifies the reports are bit-identical, and prints
//! `smoke-hash: <hex>`; ci.sh compares that hash against the committed
//! golden value to catch determinism regressions from perf work.
//!
//! `--scaling-check` runs the quick workload at 1 and 4 threads and fails
//! unless the 4-thread events/s reaches 1.5× the 1-thread number (a
//! generous bound chosen to avoid flaky CI) with identical report hashes.
//! On hosts exposing fewer than 2 CPUs the check is skipped with exit
//! code 0 — thread scaling is unobservable there, not broken.
//!
//! `--obs-check` verifies that metric collection is a pure spectator: the
//! smoke workload must hash identically with metrics on and off (the
//! hash is printed first, in `--smoke` format, so ci.sh compares it to
//! the same golden), collection overhead must stay under 3%, and with
//! `--metrics-out PATH` the exported JSON lines must pass the schema
//! validator after a round trip through the filesystem.
//!
//! `--perf-check` replays the smoke workload single-threaded and fails
//! if the best-of-N events/s lands more than 10% below the committed
//! `batched-hotpath` smoke baseline in `BENCH_baseline.json` (`--out`
//! selects another file). Wall-clock throughput is meaningless on a
//! contended host, so the gate skips itself (exit 0) when the 1-minute
//! load average exceeds the CPU count by more than half a core — the
//! same spirit as `--scaling-check`'s skip on single-CPU hosts.
//!
//! `--scenario-check` guards the scenario layer's two contracts: with
//! the layer off, the smoke workload must keep reproducing the committed
//! golden hash at 1/2/8 threads (the "pay only when enabled" half,
//! printed in `--smoke` format for ci.sh); with the `mixed` scenario on,
//! the same population must hash identically at 1/2/8 threads and
//! through the streaming pipeline, with the user-cost counters actually
//! populated.
//!
//! `--mem-check` runs a mid-size workload through the streaming pipeline
//! and fails if the process's peak RSS exceeds a committed ceiling. The
//! streaming pipeline's contract is that peak memory is
//! O(users-per-shard × threads), not O(population); an accidental
//! re-materialization (e.g. a future change that generates the full
//! trace before sharding) blows straight through the ceiling. Skipped
//! with exit 0 on hosts without a readable `/proc/self/status`.

use std::process::ExitCode;

use adpf_bench::baseline::{
    append_to_file, host_cpus, measure, measure_obs_overhead, measure_serve, measure_serve_paced,
    measure_streaming, BaselineWorkload,
};
use adpf_core::Simulator;
use adpf_obs::{to_json_lines, validate_json_lines};
use adpf_scenario::{ScenarioPopulation, ScenarioSpec};

/// Minimum 4-thread / 1-thread events/s ratio `--scaling-check` accepts.
const SCALING_FLOOR: f64 = 1.5;

/// Fraction of the committed `batched-hotpath` smoke events/s that
/// `--perf-check` still accepts: regressions beyond 10% fail the gate.
const PERF_CHECK_FLOOR: f64 = 0.90;

/// Repetitions for `--perf-check`; the best events/s across reps is
/// compared, which suppresses scheduler noise on busy CI hosts.
const PERF_CHECK_REPS: usize = 5;

/// How far the 1-minute load average may exceed the CPU count before
/// `--perf-check` declares the host too contended to time anything.
const PERF_CHECK_LOAD_SLACK: f64 = 0.5;

/// Peak-RSS ceiling for `--mem-check`, in MiB. The gate workload
/// (100k users, one day) streams in roughly half of this on the CI
/// container — including the binary, in-flight shard state, and
/// allocator slack — while materializing its full trace first measures
/// well above it (~128 MiB for the trace alone, ~255 MiB for the
/// two-day variant, split copies included). Revisit only alongside a
/// deliberate change to the memory model.
const MEM_CHECK_CEILING_MB: f64 = 96.0;

/// Worker threads for `--mem-check`. Fixed (not host-derived) because
/// the committed ceiling assumes this many concurrently-resident
/// shards.
const MEM_CHECK_THREADS: usize = 2;

/// Offered event rate for the paced serving workload
/// (`--workload serve-paced`), in events per wall-clock second. Well
/// under the measured drain rate (hundreds of thousands per second), so
/// the recorded percentiles reflect per-decision cost, not queueing.
const SERVE_PACE_EVENTS_PER_SEC: f64 = 4_000.0;

/// Thread counts the `--scenario-check` gate sweeps; 8 exceeds the
/// smoke population's shard count, so the sweep also covers the
/// more-threads-than-shards regime.
const SCENARIO_CHECK_THREADS: [usize; 3] = [1, 2, 8];

/// Maximum metric-collection overhead `--obs-check` accepts, in percent.
const OBS_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Repetitions per mode when timing observation overhead; the minimum
/// wall time across reps is compared, which suppresses scheduler noise.
/// Nine reps keep the gate stable on busy single-CPU CI hosts.
const OBS_REPS: usize = 9;

/// The committed single-thread smoke throughput `--perf-check` gates
/// against: the `events_per_sec` of the last `batched-hotpath` smoke
/// entry at `threads: 1` in the baseline file.
fn committed_smoke_baseline(path: &str) -> Result<f64, String> {
    let contents = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut found = None;
    for line in contents.lines() {
        if line.contains("\"label\":\"batched-hotpath\"")
            && line.contains("\"workload\":\"smoke-small-777\"")
            && line.contains("\"threads\":1,")
        {
            if let Some(v) = extract_f64(line, "\"events_per_sec\":") {
                found = Some(v); // Last entry wins, like a log.
            }
        }
    }
    found.ok_or_else(|| format!("no batched-hotpath smoke row at threads=1 in {path}"))
}

/// The number right after `key` in a single JSON line (no parser needed
/// for the baseline file's flat schema).
fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Host 1-minute load average, when the platform exposes it.
fn load_1min() -> Option<f64> {
    std::fs::read_to_string("/proc/loadavg")
        .ok()?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = String::from("current");
    let mut out = String::from("BENCH_baseline.json");
    let mut threads_list = vec![1usize, 2, 4, 8];
    let mut smoke = false;
    let mut scaling_check = false;
    let mut perf_check = false;
    let mut obs_check = false;
    let mut mem_check = false;
    let mut scenario_check = false;
    let mut stream = false;
    let mut workload = String::from("e14");
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--scaling-check" => {
                scaling_check = true;
                i += 1;
            }
            "--perf-check" => {
                perf_check = true;
                i += 1;
            }
            "--obs-check" => {
                obs_check = true;
                i += 1;
            }
            "--mem-check" => {
                mem_check = true;
                i += 1;
            }
            "--scenario-check" => {
                scenario_check = true;
                i += 1;
            }
            "--stream" => {
                stream = true;
                i += 1;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: baseline [--smoke] [--scaling-check] [--perf-check] [--obs-check] \
                     [--mem-check] [--scenario-check] [--label NAME] [--out PATH] \
                     [--metrics-out PATH] \
                     [--workload e14|smoke|serve|serve-paced|memcheck|scale-100k|scale-100k-mixed|scale-1m] \
                     [--stream] [--threads-list 1,2,4,8]"
                );
                return ExitCode::SUCCESS;
            }
            flag @ ("--label" | "--out" | "--threads-list" | "--metrics-out" | "--workload") => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("flag `{flag}` is missing its value");
                    return ExitCode::FAILURE;
                };
                match flag {
                    "--label" => label = value.clone(),
                    "--out" => out = value.clone(),
                    "--metrics-out" => metrics_out = Some(value.clone()),
                    "--workload" => workload = value.clone(),
                    _ => {
                        let parsed: Result<Vec<usize>, _> =
                            value.split(',').map(str::parse).collect();
                        match parsed {
                            Ok(t) if !t.is_empty() && t.iter().all(|&n| n >= 1) => threads_list = t,
                            _ => {
                                eprintln!("--threads-list wants comma-separated positives");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if mem_check {
        if adpf_obs::peak_rss_kb().is_none() {
            println!("mem-check: SKIPPED (no readable /proc/self/status on this host)");
            return ExitCode::SUCCESS;
        }
        let w = BaselineWorkload::mem_check();
        let m = measure_streaming(&w, MEM_CHECK_THREADS, "mem-check");
        println!(
            "mem-check: [{}] {} users streamed, peak RSS {:.1} MiB \
             (ceiling {MEM_CHECK_CEILING_MB} MiB, {:.0} events/s, hash {:016x})",
            m.workload, w.users, m.peak_rss_mb, m.events_per_sec, m.report_hash
        );
        if m.peak_rss_mb > MEM_CHECK_CEILING_MB {
            eprintln!(
                "mem-check FAILED: peak RSS {:.1} MiB > {MEM_CHECK_CEILING_MB} MiB — did \
                 something re-materialize the full trace?",
                m.peak_rss_mb
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if scenario_check {
        // Half one: scenario-off runs must keep reproducing the smoke
        // golden at every thread count — the scenario layer's "pay only
        // when enabled" contract. Printed in `--smoke` format so ci.sh
        // holds it to the committed golden.
        let w = BaselineWorkload::smoke();
        let off: Vec<u64> = SCENARIO_CHECK_THREADS
            .iter()
            .map(|&t| measure(&w, t, "scenario-check").report_hash)
            .collect();
        if off.windows(2).any(|p| p[0] != p[1]) {
            eprintln!(
                "scenario-check FAILED: scenario-off hashes diverge across threads: {off:016x?}"
            );
            return ExitCode::FAILURE;
        }
        println!("smoke-hash: {:016x}", off[0]);

        // Half two: a quick mixed-population run must be thread-count
        // and streaming/materialized invariant, with the user-cost
        // counters actually populated.
        let base = adpf_traces::PopulationConfig::small_test(777);
        let users = base.num_users;
        let pop = ScenarioPopulation::new(base, ScenarioSpec::mixed());
        let mut cfg = w.config();
        pop.apply_to(&mut cfg);
        let trace = pop.generate();
        let mut reports: Vec<adpf_core::SimReport> = SCENARIO_CHECK_THREADS
            .iter()
            .map(|&t| Simulator::run_parallel(&cfg, &trace, t))
            .collect();
        let n_shards = adpf_core::default_shards(users);
        reports.push(Simulator::run_streaming(&cfg, users, n_shards, 2, |i| {
            pop.generate_shard(i, n_shards)
        }));
        let on: Vec<u64> = reports.iter().map(|r| r.stable_hash()).collect();
        if on.windows(2).any(|p| p[0] != p[1]) {
            eprintln!(
                "scenario-check FAILED: mixed-scenario hashes diverge \
                 (threads {SCENARIO_CHECK_THREADS:?} + streaming): {on:016x?}"
            );
            return ExitCode::FAILURE;
        }
        let sc = &reports[0].scenario;
        if sc.metered_bytes() == 0 || sc.display_latency_ms.count() == 0 {
            eprintln!(
                "scenario-check FAILED: mixed scenario left its counters empty \
                 (metered {} bytes, {} latency samples)",
                sc.metered_bytes(),
                sc.display_latency_ms.count()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "scenario-check: mixed hash {:016x} (threads {SCENARIO_CHECK_THREADS:?} + streaming), \
             metered {} bytes, wasted {} bytes, {} display-latency samples",
            on[0],
            sc.metered_bytes(),
            sc.prefetch_wasted_bytes,
            sc.display_latency_ms.count()
        );
        return ExitCode::SUCCESS;
    }

    if smoke {
        let w = BaselineWorkload::smoke();
        let a = measure(&w, 1, "smoke");
        let b = measure(&w, 4, "smoke");
        if a.report_hash != b.report_hash {
            eprintln!(
                "smoke FAILED: 1-thread hash {:016x} != 4-thread hash {:016x}",
                a.report_hash, b.report_hash
            );
            return ExitCode::FAILURE;
        }
        println!("smoke-hash: {:016x}", a.report_hash);
        return ExitCode::SUCCESS;
    }

    if obs_check {
        // Determinism first: metrics on vs off must hash identically.
        // The smoke hash is printed as the FIRST line in the exact
        // `--smoke` format so ci.sh can hold it to the same golden.
        let o = measure_obs_overhead(OBS_REPS);
        if o.plain_hash != o.observed_hash {
            eprintln!(
                "obs-check FAILED: plain hash {:016x} != observed hash {:016x}",
                o.plain_hash, o.observed_hash
            );
            return ExitCode::FAILURE;
        }
        println!("smoke-hash: {:016x}", o.plain_hash);
        println!(
            "obs-check: metric collection overhead {:.2}% (ceiling {OBS_OVERHEAD_CEILING_PCT}%)",
            o.overhead_pct
        );
        if let Some(path) = &metrics_out {
            let w = BaselineWorkload::smoke();
            let (_, reg) = Simulator::run_parallel_observed(&w.config(), &w.trace(), 1);
            if let Err(e) = std::fs::write(path, to_json_lines(&reg, "obs-check")) {
                eprintln!("obs-check FAILED: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            // Validate what actually landed on disk, not the in-memory
            // string: the file is what downstream tooling consumes.
            let on_disk = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("obs-check FAILED: cannot re-read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match validate_json_lines(&on_disk) {
                Ok(n) => println!("obs-check: {n} metric lines in {path} (schema ok)"),
                Err(e) => {
                    eprintln!("obs-check FAILED: {path} schema error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if o.overhead_pct > OBS_OVERHEAD_CEILING_PCT {
            eprintln!(
                "obs-check FAILED: overhead {:.2}% > {OBS_OVERHEAD_CEILING_PCT}%",
                o.overhead_pct
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if perf_check {
        let committed = match committed_smoke_baseline(&out) {
            Ok(v) => v,
            Err(why) => {
                eprintln!(
                    "perf-check FAILED: {why} — record one with \
                     `baseline --label batched-hotpath --workload smoke --threads-list 1`"
                );
                return ExitCode::FAILURE;
            }
        };
        let cpus = host_cpus();
        if let Some(load) = load_1min() {
            if load > cpus.max(1) as f64 + PERF_CHECK_LOAD_SLACK {
                println!(
                    "perf-check: SKIPPED (1-min load {load:.2} over {cpus} cpus; wall-clock \
                     throughput is not meaningful under contention)"
                );
                return ExitCode::SUCCESS;
            }
        }
        let w = BaselineWorkload::smoke();
        let mut best = 0.0f64;
        let mut hash = 0u64;
        for _ in 0..PERF_CHECK_REPS {
            let m = measure(&w, 1, "perf-check");
            best = best.max(m.events_per_sec);
            hash = m.report_hash;
        }
        let floor = committed * PERF_CHECK_FLOOR;
        println!(
            "perf-check: {best:.0} events/s best-of-{PERF_CHECK_REPS} vs committed {committed:.0} \
             (floor {floor:.0}, hash {hash:016x})"
        );
        if best < floor {
            eprintln!(
                "perf-check FAILED: {best:.0} events/s < {floor:.0} — the hot path regressed \
                 more than {:.0}% below the committed batched-hotpath baseline",
                (1.0 - PERF_CHECK_FLOOR) * 100.0
            );
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if scaling_check {
        let cpus = host_cpus();
        if cpus < 2 {
            println!(
                "scaling-check: SKIPPED (cpus={cpus}; thread scaling is unobservable on this \
                 host, determinism is still covered by --smoke)"
            );
            return ExitCode::SUCCESS;
        }
        let w = BaselineWorkload::e14_style();
        let one = measure(&w, 1, "scaling-check");
        let four = measure(&w, 4, "scaling-check");
        if one.report_hash != four.report_hash {
            eprintln!(
                "scaling-check FAILED: 1-thread hash {:016x} != 4-thread hash {:016x}",
                one.report_hash, four.report_hash
            );
            return ExitCode::FAILURE;
        }
        let ratio = four.events_per_sec / one.events_per_sec.max(1e-9);
        println!(
            "scaling-check: {:.0} events/s at 1 thread, {:.0} at 4 threads ({ratio:.2}x, \
             floor {SCALING_FLOOR}x)",
            one.events_per_sec, four.events_per_sec
        );
        if ratio < SCALING_FLOOR {
            eprintln!("scaling-check FAILED: {ratio:.2}x < {SCALING_FLOOR}x");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let w = match workload.as_str() {
        "e14" => BaselineWorkload::e14_style(),
        "smoke" => BaselineWorkload::smoke(),
        "serve" => BaselineWorkload::serve_smoke(),
        "serve-paced" => BaselineWorkload::serve_smoke_paced(),
        "memcheck" => BaselineWorkload::mem_check(),
        "scale-100k" => BaselineWorkload::scale_100k(),
        "scale-100k-mixed" => BaselineWorkload::scale_100k_mixed(),
        "scale-1m" => BaselineWorkload::scale_1m(),
        other => {
            eprintln!(
                "unknown workload `{other}` \
                 (e14|smoke|serve|serve-paced|memcheck|scale-100k|scale-100k-mixed|scale-1m)"
            );
            return ExitCode::FAILURE;
        }
    };
    let serve_mode = workload.starts_with("serve");
    if serve_mode && stream {
        eprintln!("--workload serve replays through the server; it has no --stream variant");
        return ExitCode::FAILURE;
    }
    // Stamp every recorded entry with the smoke-workload observation
    // overhead, so the perf trajectory tracks what metrics cost too.
    let obs_overhead = measure_obs_overhead(OBS_REPS);
    let mut measurements = Vec::new();
    for &threads in &threads_list {
        let mut m = if workload == "serve-paced" {
            measure_serve_paced(&w, threads, &label, SERVE_PACE_EVENTS_PER_SEC)
        } else if serve_mode {
            measure_serve(&w, threads, &label)
        } else if stream {
            measure_streaming(&w, threads, &label)
        } else {
            measure(&w, threads, &label)
        };
        m.obs_overhead_pct = obs_overhead.overhead_pct;
        println!(
            "{} [{}] threads={} cpus={}: {:.3}s sim + {:.3}s gen, {:.0} events/s, {:.0} ads/s, \
             peak RSS {:.1} MiB (hash {:016x})",
            m.label,
            m.workload,
            m.threads,
            m.cpus,
            m.wall_s,
            m.gen_wall_s,
            m.events_per_sec,
            m.ads_placed_per_sec,
            m.peak_rss_mb,
            m.report_hash
        );
        if let Some(s) = &m.serve {
            println!(
                "  serve: {:.0} requests/s over {} requests, latency_us p50={} p95={} p99={}",
                s.requests_per_sec, s.requests, s.p50_us, s.p95_us, s.p99_us
            );
        }
        measurements.push(m);
    }
    if let Err(e) = append_to_file(&out, &measurements) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("recorded {} entries into {out}", measurements.len());
    ExitCode::SUCCESS
}
