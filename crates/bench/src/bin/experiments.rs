//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all            # every experiment at quick scale
//! experiments e7 e10         # selected experiments
//! experiments all --full     # paper-scale populations (slow)
//! experiments e14 --threads 4  # sharded simulator on 4 worker threads
//! experiments all --metrics    # print per-experiment wall-time metrics
//! ```

use std::process::ExitCode;
use std::time::Instant;

use adpf_bench::{all_ids, run_experiment_threads, Scale};
use adpf_obs::{render_table, to_json_lines, MetricRegistry, ObsSink};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let metrics = args.iter().any(|a| a == "--metrics");
    let threads_pos = args.iter().position(|a| a == "--threads");
    let threads = match threads_pos {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(t) if t >= 1 => t,
            _ => {
                eprintln!("--threads requires a positive integer");
                return ExitCode::FAILURE;
            }
        },
        None => 1,
    };
    let metrics_out_pos = args.iter().position(|a| a == "--metrics-out");
    let metrics_out = match metrics_out_pos {
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(path.clone()),
            None => {
                eprintln!("--metrics-out requires a path");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let value_positions = [threads_pos.map(|p| p + 1), metrics_out_pos.map(|p| p + 1)];
    let mut ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && !value_positions.contains(&Some(i)))
        .map(|(_, a)| a.to_ascii_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
        // E9 is printed as part of E8.
        ids.retain(|i| i != "e9");
    }

    println!(
        "adprefetch experiment harness — scale: {:?} (pass --full for paper-scale populations)\n",
        scale
    );
    // Per-experiment wall-time metrics, keyed by the experiment's static
    // id so the registry stays allocation-free on names.
    let collect = metrics || metrics_out.is_some();
    let reg = MetricRegistry::new();
    for id in &ids {
        let t0 = Instant::now();
        match run_experiment_threads(id, scale, threads) {
            Some(tables) => {
                if collect {
                    if let Some(name) = all_ids().into_iter().find(|&s| s == id.as_str()) {
                        reg.add_time_ns(name, t0.elapsed().as_nanos() as u64);
                        reg.add(name, tables.len() as u64);
                    }
                }
                for table in tables {
                    println!("{table}");
                }
                println!("[{} done in {:.1}s]\n", id, t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {}", all_ids().join(", "));
                return ExitCode::FAILURE;
            }
        }
    }
    if metrics {
        println!("metrics (experiments):\n{}", render_table(&reg));
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, to_json_lines(&reg, "experiments")) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    ExitCode::SUCCESS
}
