//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all            # every experiment at quick scale
//! experiments e7 e10         # selected experiments
//! experiments all --full     # paper-scale populations (slow)
//! experiments e14 --threads 4  # sharded simulator on 4 worker threads
//! ```

use std::process::ExitCode;
use std::time::Instant;

use adpf_bench::{all_ids, run_experiment_threads, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let threads_pos = args.iter().position(|a| a == "--threads");
    let threads = match threads_pos {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(t) if t >= 1 => t,
            _ => {
                eprintln!("--threads requires a positive integer");
                return ExitCode::FAILURE;
            }
        },
        None => 1,
    };
    let mut ids: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && Some(i) != threads_pos.map(|p| p + 1))
        .map(|(_, a)| a.to_ascii_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
        // E9 is printed as part of E8.
        ids.retain(|i| i != "e9");
    }

    println!(
        "adprefetch experiment harness — scale: {:?} (pass --full for paper-scale populations)\n",
        scale
    );
    for id in &ids {
        let t0 = Instant::now();
        match run_experiment_threads(id, scale, threads) {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                }
                println!("[{} done in {:.1}s]\n", id, t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {}", all_ids().join(", "));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
