//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments all            # every experiment at quick scale
//! experiments e7 e10         # selected experiments
//! experiments all --full     # paper-scale populations (slow)
//! ```

use std::process::ExitCode;
use std::time::Instant;

use adpf_bench::{all_ids, run_experiment, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
        // E9 is printed as part of E8.
        ids.retain(|i| i != "e9");
    }

    println!(
        "adprefetch experiment harness — scale: {:?} (pass --full for paper-scale populations)\n",
        scale
    );
    for id in &ids {
        let t0 = Instant::now();
        match run_experiment(id, scale) {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                }
                println!("[{} done in {:.1}s]\n", id, t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment `{id}`; known: {}", all_ids().join(", "));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
